"""Pass 2 escape rules: executor captures (RPR011), shm lifetime (RPR012).

RPR011 looks at every ``.submit(...)`` call: captured arguments that the
submitting function keeps mutating race the worker (any backend), and
process-backend submissions additionally must pickle -- instances of
classes with no module-level definition and no ``__reduce__`` cannot.

RPR012 follows each ``SharedMemory(create=True)`` handle across function
boundaries: the handle is proven released when an enclosing ``finally``
unlinks it (directly or through a releaser helper), or when it is returned
and *every* call site's binding is proven released in turn.  This is the
cross-function proof that replaces the per-file RPR004 check (and its
suppression) for split-lifetime patterns like ``_ArrayPacker.pack()``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.repro_lint.engine import Violation
from tools.repro_lint.flow.callgraph import (CallGraph, LocalTypes,
                                             _annotation_dotted,
                                             resolve_call_target)
from tools.repro_lint.flow.locks import MUTATOR_METHODS, FunctionSummary
from tools.repro_lint.flow.symbols import (ClassModel, FunctionModel,
                                           ModuleModel, Program)

__all__ = ["check_executor_escape", "check_shm_lifetime"]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_MAX_PROOF_DEPTH = 5


def _sorted_modules(program: Program) -> list[ModuleModel]:
    return [program.modules_by_path[path]
            for path in sorted(program.modules_by_path)]


def _owned_walk(function: FunctionModel,
                module: ModuleModel) -> Iterator[ast.AST]:
    """Nodes of ``function`` excluding those owned by nested defs."""
    for node in ast.walk(function.node):
        if node is function.node:
            continue
        if module.owner.get(node) is function:
            yield node


# ----------------------------------------------------------------------
# RPR011 -- executor escape analysis
# ----------------------------------------------------------------------
def _is_process_executor(receiver: ast.AST, function: FunctionModel,
                         module: ModuleModel, program: Program,
                         types: LocalTypes | None) -> bool:
    try:
        text = ast.unparse(receiver).lower()
    except Exception:  # pragma: no cover - unparse is total on valid trees
        text = ""
    if "process" in text or "procpool" in text:
        return True
    if isinstance(receiver, ast.Name) and types is not None:
        type_name = types.type_name(receiver.id) or ""
        if "Process" in type_name:
            return True
        cls = types.classes.get(receiver.id)
        if cls is not None and "Process" in cls.name:
            return True
    if isinstance(receiver, ast.Call):
        target = resolve_call_target(receiver, function, module, program,
                                     types)
        if isinstance(target, ClassModel):
            return "Process" in target.name
        if isinstance(target, FunctionModel):
            returns = _annotation_dotted(
                target.node.returns,
                program.modules.get(target.module, module))
            return bool(returns and "Process" in returns)
    return False


def _loops_around(node: ast.AST, module: ModuleModel) -> set[ast.AST]:
    return {ancestor for ancestor in module.context.ancestors(node)
            if isinstance(ancestor, _LOOPS)}


def _mutations_of(name: str, function: FunctionModel,
                  module: ModuleModel) -> list[ast.AST]:
    """In-place mutations of local ``name`` (rebinding does not count)."""
    found: list[ast.AST] = []
    for node in _owned_walk(function, module):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATOR_METHODS \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == name:
            found.append(node)
        elif isinstance(node, (ast.Subscript, ast.Attribute)) \
                and isinstance(node.ctx, (ast.Store, ast.Del)) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == name:
            found.append(node)
    return found


def _captured_args(call: ast.Call) -> list[ast.expr]:
    captured = [arg for arg in call.args[1:]
                if not isinstance(arg, ast.Starred)]
    captured.extend(keyword.value for keyword in call.keywords
                    if keyword.value is not None)
    return captured


def check_executor_escape(program: Program, graph: CallGraph,
                          summaries: dict[str, FunctionSummary]
                          ) -> Iterator[Violation]:
    for module in _sorted_modules(program):
        for function in module.all_functions.values():
            types = graph.types.get(function.qualname)
            for node in _owned_walk(function, module):
                if not isinstance(node, ast.Call) \
                        or not isinstance(node.func, ast.Attribute) \
                        or node.func.attr != "submit" or not node.args:
                    continue
                submit_loops = _loops_around(node, module)
                for arg in _captured_args(node):
                    if isinstance(arg, ast.Name):
                        for mutation in _mutations_of(arg.id, function,
                                                      module):
                            after = mutation.lineno > node.lineno
                            shared_loop = bool(
                                submit_loops
                                & _loops_around(mutation, module))
                            if not (after or shared_loop):
                                continue
                            yield Violation(
                                path=module.path, line=node.lineno,
                                col=node.col_offset, rule="RPR011",
                                message=(
                                    f"'{arg.id}' is submitted to an "
                                    f"executor but mutated afterwards "
                                    f"(line {mutation.lineno}): the "
                                    f"worker races the mutation (thread "
                                    f"backend) or pickles a moving "
                                    f"target (process backend); "
                                    f"snapshot it first, e.g. "
                                    f"submit(task, tuple({arg.id}))"))
                            break
                if not _is_process_executor(node.func.value, function,
                                            module, program, types):
                    continue
                for arg in _captured_args(node):
                    cls: ClassModel | None = None
                    if isinstance(arg, ast.Name) and types is not None:
                        cls = types.classes.get(arg.id)
                    elif isinstance(arg, ast.Call):
                        target = resolve_call_target(arg, function, module,
                                                     program, types)
                        if isinstance(target, ClassModel):
                            cls = target
                    if cls is None or cls.module_level or cls.has_reduce:
                        continue
                    yield Violation(
                        path=module.path, line=node.lineno,
                        col=node.col_offset, rule="RPR011",
                        message=(
                            f"instance of {cls.name!r} (defined inside a "
                            f"function) is submitted to a process "
                            f"executor: the spawn backend pickles "
                            f"arguments and nested classes do not "
                            f"pickle; move {cls.name} to module level or "
                            f"give it __reduce__ (see "
                            f"tests/api/test_pickling.py)"))


# ----------------------------------------------------------------------
# RPR012 -- shared-memory lifetime dataflow
# ----------------------------------------------------------------------
def _is_shm_create(node: ast.Call, module: ModuleModel) -> bool:
    dotted = module.context.resolve_call(node)
    if dotted is None or not dotted.endswith("SharedMemory"):
        return False
    return any(keyword.arg == "create"
               and isinstance(keyword.value, ast.Constant)
               and keyword.value.value is True
               for keyword in node.keywords)


def _find_releasers(program: Program) -> dict[str, int]:
    """Functions that ``unlink()`` one of their parameters -> param index."""
    releasers: dict[str, int] = {}
    for module in program.modules.values():
        for function in module.all_functions.values():
            params = [arg.arg for arg in function.node.args.args]
            for node in _owned_walk(function, module):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "unlink" \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id in params:
                    releasers[function.qualname] = params.index(
                        node.func.value.id)
                    break
    return releasers


def _finally_releases(var: str, function: FunctionModel,
                      module: ModuleModel, program: Program,
                      graph: CallGraph, releasers: dict[str, int]) -> bool:
    types = graph.types.get(function.qualname)
    for node in _owned_walk(function, module):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for statement in node.finalbody:
            for child in ast.walk(statement):
                if not isinstance(child, ast.Call):
                    continue
                if isinstance(child.func, ast.Attribute) \
                        and child.func.attr == "unlink" \
                        and isinstance(child.func.value, ast.Name) \
                        and child.func.value.id == var:
                    return True
                target = resolve_call_target(child, function, module,
                                             program, types)
                if isinstance(target, FunctionModel):
                    index = releasers.get(target.qualname)
                    if index is not None and len(child.args) > index \
                            and isinstance(child.args[index], ast.Name) \
                            and child.args[index].id == var:
                        return True
    return False


def _returned_positions(var: str, function: FunctionModel,
                        module: ModuleModel) -> list[int | None]:
    """How ``var`` escapes via return: None = whole value, int = tuple slot."""
    positions: list[int | None] = []
    for node in _owned_walk(function, module):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if isinstance(node.value, ast.Name) and node.value.id == var:
            positions.append(None)
        elif isinstance(node.value, ast.Tuple):
            for index, element in enumerate(node.value.elts):
                if isinstance(element, ast.Name) and element.id == var:
                    positions.append(index)
    return positions


def _binding_at_call_site(call: ast.Call, position: int | None,
                          caller: FunctionModel,
                          module: ModuleModel) -> str | None:
    """Name the call's result (or tuple slot) is bound to at this site."""
    for node in _owned_walk(caller, module):
        if not isinstance(node, ast.Assign) or node.value is not call \
                or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if position is None:
            if isinstance(target, ast.Name):
                return target.id
        elif isinstance(target, ast.Tuple) \
                and position < len(target.elts) \
                and isinstance(target.elts[position], ast.Name):
            return target.elts[position].id
    return None


def _prove_released(var: str, function: FunctionModel, module: ModuleModel,
                    program: Program, graph: CallGraph,
                    releasers: dict[str, int], report: tuple[str, int],
                    depth: int, seen: frozenset[tuple[str, str]]
                    ) -> tuple[str, int, str] | None:
    """None if released on every path; else (path, line, reason)."""
    if (function.qualname, var) in seen:
        return None
    seen = seen | {(function.qualname, var)}
    if depth <= 0:
        return (*report, f"release of '{var}' could not be proven within "
                f"{_MAX_PROOF_DEPTH} call levels")
    if _finally_releases(var, function, module, program, graph, releasers):
        return None
    positions = _returned_positions(var, function, module)
    if not positions:
        return (*report,
                f"'{var}' neither reaches unlink() in a finally of "
                f"{function.name}() nor is returned to a caller that "
                f"could release it")
    callers = graph.callers_of.get(function.qualname, ())
    if not callers:
        return (*report,
                f"'{var}' escapes {function.name}() via return but no "
                f"call site was found to prove it is unlinked")
    for site in callers:
        caller = program.functions.get(site.caller)
        caller_module = program.modules_by_path.get(site.path)
        if caller is None or caller_module is None:
            return (*report, f"'{var}' is returned from {function.name}() "
                    f"to an unresolvable caller")
        for position in positions:
            bound = _binding_at_call_site(site.node, position, caller,
                                          caller_module)
            if bound is None:
                return (caller_module.path, site.node.lineno,
                        f"result of {function.name}() carries a live "
                        f"SharedMemory segment but is not bound to a "
                        f"name that reaches unlink()")
            failure = _prove_released(
                bound, caller, caller_module, program, graph, releasers,
                (caller_module.path, site.node.lineno), depth - 1, seen)
            if failure is not None:
                return failure
    return None


def check_shm_lifetime(program: Program, graph: CallGraph,
                       summaries: dict[str, FunctionSummary]
                       ) -> Iterator[Violation]:
    releasers = _find_releasers(program)
    for module in _sorted_modules(program):
        for function in module.all_functions.values():
            for node in _owned_walk(function, module):
                if not isinstance(node, ast.Call) \
                        or not _is_shm_create(node, module):
                    continue
                bound = _binding_at_call_site(node, None, function, module)
                report = (module.path, node.lineno)
                if bound is None:
                    failure = (*report,
                               "SharedMemory(create=True) result is not "
                               "bound to a simple name; the segment "
                               "cannot be proven to reach unlink()")
                else:
                    failure = _prove_released(
                        bound, function, module, program, graph, releasers,
                        report, _MAX_PROOF_DEPTH, frozenset())
                if failure is None:
                    continue
                path, line, reason = failure
                yield Violation(
                    path=path, line=line, col=0, rule="RPR012",
                    message=(
                        f"shared-memory segment may leak: {reason}; every "
                        f"path must unlink() the segment (directly or via "
                        f"a releaser helper in a finally, or by returning "
                        f"it to a caller that does -- see "
                        f"repro.api._procpool._release_segment)"))
