"""Pass 1, step 2: local type inference and the approximate call graph.

Types are inferred per function from three cheap, high-precision sources:

* parameter annotations that name a class in the scanned program (string
  annotations are accepted verbatim);
* ``v = SomeClass(...)`` constructor assignments;
* ``v = f(...)`` where ``f``'s return annotation names a program class.

Calls resolve to program functions through ``self.m()`` (own class),
``v.m()`` (inferred type), bare names (same module, then imports) and
dotted chains (import-alias resolved, suffix matched).  Anything else is
left unresolved: the flow rules treat unresolved calls conservatively and
the model's blind spots are documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.repro_lint.flow.symbols import (ClassModel, FunctionModel,
                                           ModuleModel, Program)

__all__ = ["CallGraph", "CallSite", "LocalTypes", "build_call_graph",
           "infer_local_types"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call: who calls whom, and the call expression."""

    caller: str
    callee: str
    node: ast.Call
    path: str


@dataclass
class LocalTypes:
    """Per-function variable typing: program classes plus external names."""

    #: Variable name -> class defined in the scanned program.
    classes: dict[str, ClassModel] = field(default_factory=dict)
    #: Variable name -> dotted type name we could not resolve to a program
    #: class (e.g. ``concurrent.futures.ProcessPoolExecutor``).
    extern: dict[str, str] = field(default_factory=dict)

    def type_name(self, name: str) -> str | None:
        cls = self.classes.get(name)
        if cls is not None:
            return cls.qualname
        return self.extern.get(name)


def _annotation_dotted(annotation: ast.AST | None,
                       module: ModuleModel) -> str | None:
    """Dotted name of a simple annotation (Name/Attribute/"string")."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        return annotation.value
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        return module.context.dotted_name(annotation)
    # ``Executor | None`` style optionals: take the non-None side.
    if isinstance(annotation, ast.BinOp) \
            and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            return _annotation_dotted(side, module)
    return None


def _bind(types: LocalTypes, name: str, dotted: str | None,
          program: Program, module: ModuleModel) -> None:
    if not dotted:
        return
    cls = program.resolve_class(dotted, module)
    if cls is not None:
        types.classes[name] = cls
    else:
        types.extern[name] = dotted


def _all_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    arguments = node.args
    collected = list(arguments.posonlyargs) + list(arguments.args)
    collected += list(arguments.kwonlyargs)
    for extra in (arguments.vararg, arguments.kwarg):
        if extra is not None:
            collected.append(extra)
    return collected


def infer_local_types(function: FunctionModel, module: ModuleModel,
                      program: Program) -> LocalTypes:
    """Infer variable types visible inside ``function`` (own nodes only)."""
    types = LocalTypes()
    if function.class_qualname:
        own = program.classes.get(function.class_qualname)
        if own is not None:
            types.classes["self"] = own
    for arg in _all_args(function.node):
        _bind(types, arg.arg, _annotation_dotted(arg.annotation, module),
              program, module)
    bindings: list[tuple[str, ast.Call]] = []
    for node in ast.walk(function.node):
        if module.owner.get(node) is not function:
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            bindings.append((node.targets[0].id, node.value))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name) \
                        and isinstance(item.context_expr, ast.Call):
                    bindings.append((item.optional_vars.id,
                                     item.context_expr))
    for name, call in bindings:
        callee = resolve_call_target(call, function, module, program, types)
        if isinstance(callee, ClassModel):
            types.classes[name] = callee
        elif isinstance(callee, FunctionModel):
            returns = _annotation_dotted(
                callee.node.returns,
                program.modules.get(callee.module, module))
            _bind(types, name, returns, program, module)
        else:
            # Not a program symbol: remember the dotted constructor name so
            # receivers like ``ProcessPoolExecutor()`` stay recognizable.
            dotted = module.context.dotted_name(call.func)
            if dotted and dotted.rsplit(".", 1)[-1][:1].isupper():
                types.extern.setdefault(name, dotted)
    return types


def resolve_call_target(call: ast.Call, function: FunctionModel | None,
                        module: ModuleModel, program: Program,
                        types: LocalTypes | None = None
                        ) -> ClassModel | FunctionModel | None:
    """Resolve a call to the program class or function it targets."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        # Module-local definitions shadow imports.
        target = (module.classes.get(name) if name in module.classes
                  else module.functions.get(name))
        if target is not None:
            return target
        dotted = module.context.dotted_name(func)
        return (program.resolve_class(dotted, module)
                or program.resolve_function(dotted, module))
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            receiver_cls: ClassModel | None = None
            if types is not None:
                receiver_cls = types.classes.get(base.id)
            if base.id == "self" and receiver_cls is None \
                    and function is not None and function.class_qualname:
                receiver_cls = program.classes.get(function.class_qualname)
            if receiver_cls is not None:
                return receiver_cls.methods.get(func.attr)
        dotted = module.context.dotted_name(func)
        if dotted:
            return (program.resolve_function(dotted, module)
                    or program.resolve_class(dotted, module))
    return None


@dataclass
class CallGraph:
    """Resolved call sites, indexed both ways."""

    calls_by_caller: dict[str, list[CallSite]] = field(default_factory=dict)
    callers_of: dict[str, list[CallSite]] = field(default_factory=dict)
    #: Cached per-function local types (shared by the flow rules).
    types: dict[str, LocalTypes] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        self.calls_by_caller.setdefault(site.caller, []).append(site)
        self.callers_of.setdefault(site.callee, []).append(site)


def build_call_graph(program: Program) -> CallGraph:
    """Resolve every call in every function of the program."""
    graph = CallGraph()
    for module in program.modules.values():
        for function in module.all_functions.values():
            types = infer_local_types(function, module, program)
            graph.types[function.qualname] = types
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                if module.owner.get(node) is not function:
                    continue
                target = resolve_call_target(node, function, module, program,
                                             types)
                if isinstance(target, FunctionModel):
                    graph.add(CallSite(caller=function.qualname,
                                       callee=target.qualname,
                                       node=node, path=module.path))
    return graph
