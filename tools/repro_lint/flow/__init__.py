"""Whole-program flow analysis for repro-lint (``--flow``, on by default).

Two passes over the scanned file set: pass 1 (``symbols`` + ``callgraph``)
builds the cross-file symbol table, the per-class attribute model and an
approximate call graph; pass 2 (``locks`` + ``escape``) runs the RPR009-012
rules on it.  Per-file rules see one file at a time; these see the program,
so they can follow a lock across methods, an ordering across classes, or a
shared-memory handle across function boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator

from tools.repro_lint.engine import Violation
from tools.repro_lint.flow.callgraph import CallGraph, build_call_graph
from tools.repro_lint.flow.escape import (check_executor_escape,
                                          check_shm_lifetime)
from tools.repro_lint.flow.locks import (FunctionSummary, build_summaries,
                                         check_guarded_by, check_lock_order)
from tools.repro_lint.flow.symbols import Program, build_program

__all__ = ["FLOW_RULES", "FLOW_RULE_IDS", "FlowRule", "run_flow"]

FlowCheck = Callable[
    [Program, CallGraph, dict[str, FunctionSummary]], Iterator[Violation]]


@dataclass(frozen=True)
class FlowRule:
    """One whole-program check: stable id, docs metadata, check callable."""

    id: str
    name: str
    summary: str
    motivation: str
    check: FlowCheck


FLOW_RULES: list[FlowRule] = [
    FlowRule(
        "RPR009", "guarded-by-violation",
        "attribute guarded by a lock (inferred or annotated) accessed "
        "without holding it, checked inter-procedurally",
        "PR 4: SteeringCache's get/move_to_end/evict sequence raced into "
        "KeyErrors; the per-file RPR003 only saw literal 'with self._lock' "
        "in the same function and missed every cross-method access",
        check_guarded_by),
    FlowRule(
        "RPR010", "lock-order-cycle",
        "cycle in the lock acquisition-order graph (nested 'with' blocks "
        "and calls made while holding a lock): potential deadlock",
        "ROADMAP item 1 adds per-AP ring buffers and a scheduler beside "
        "the existing cache locks; an A->B / B->A inversion between any "
        "two of them deadlocks only under load, never in tests",
        check_lock_order),
    FlowRule(
        "RPR011", "executor-capture-escape",
        "argument submitted to an executor then mutated, or (process "
        "backend) an unpicklable nested-class instance",
        "PR 6: the process backend pickles arguments at submit time; a "
        "post-submit mutation races the thread backend and ships a moving "
        "target to the spawn backend",
        check_executor_escape),
    FlowRule(
        "RPR012", "shm-lifetime-leak",
        "SharedMemory(create=True) handle not proven to reach unlink() "
        "on every path, followed across function boundaries",
        "PR 6/7: pack() creates the segment, _run()'s finally releases "
        "it; the per-file RPR004 cannot see that split lifetime and "
        "needed a reasoned suppression this analysis replaces",
        check_shm_lifetime),
]

FLOW_RULE_IDS = frozenset(rule.id for rule in FLOW_RULES)


def run_flow(files: Iterable[tuple[str, str]]) -> list[Violation]:
    """Run every flow rule over ``(path, source)`` pairs; sorted findings."""
    program = build_program(list(files))
    graph = build_call_graph(program)
    summaries = build_summaries(program, graph)
    violations: list[Violation] = []
    for rule in FLOW_RULES:
        violations.extend(rule.check(program, graph, summaries))
    violations.sort(key=Violation.sort_key)
    return violations
