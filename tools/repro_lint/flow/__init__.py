"""Whole-program flow analysis for repro-lint (``--flow``, on by default).

Two passes over the scanned file set: pass 1 (``symbols`` + ``callgraph``)
builds the cross-file symbol table, the per-class attribute model and an
approximate call graph; pass 2 runs the rules on it -- the concurrency
contracts (``locks`` + ``escape``, RPR009-012) and the numerics contracts
(``tools.repro_lint.numerics``, RPR013-017).  Per-file rules see one file
at a time; these see the program, so they can follow a lock across
methods, an ordering across classes, or a hard-coded dtype across the
public localization path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any
from collections.abc import Callable, Iterable, Iterator

from tools.repro_lint.engine import Violation
from tools.repro_lint.flow.callgraph import CallGraph, build_call_graph
from tools.repro_lint.flow.escape import (check_executor_escape,
                                          check_shm_lifetime)
from tools.repro_lint.flow.locks import (FunctionSummary, build_summaries,
                                         check_guarded_by, check_lock_order)
from tools.repro_lint.flow.symbols import Program, build_program
from tools.repro_lint.numerics import (build_dtype_surface,
                                       check_dtype_pinning,
                                       check_hot_loop_scalarization,
                                       check_mixed_precision,
                                       check_nondeterministic_rng,
                                       check_partial_init_and_axis)

__all__ = ["FLOW_RULES", "FLOW_RULE_IDS", "FlowReport", "FlowRule",
           "run_flow"]

FlowCheck = Callable[
    [Program, CallGraph, dict[str, FunctionSummary]], Iterator[Violation]]


@dataclass(frozen=True)
class FlowRule:
    """One whole-program check: stable id, docs metadata, check callable."""

    id: str
    name: str
    summary: str
    motivation: str
    check: FlowCheck


FLOW_RULES: list[FlowRule] = [
    FlowRule(
        "RPR009", "guarded-by-violation",
        "attribute guarded by a lock (inferred or annotated) accessed "
        "without holding it, checked inter-procedurally",
        "PR 4: SteeringCache's get/move_to_end/evict sequence raced into "
        "KeyErrors; the per-file RPR003 only saw literal 'with self._lock' "
        "in the same function and missed every cross-method access",
        check_guarded_by),
    FlowRule(
        "RPR010", "lock-order-cycle",
        "cycle in the lock acquisition-order graph (nested 'with' blocks "
        "and calls made while holding a lock): potential deadlock",
        "ROADMAP item 1 adds per-AP ring buffers and a scheduler beside "
        "the existing cache locks; an A->B / B->A inversion between any "
        "two of them deadlocks only under load, never in tests",
        check_lock_order),
    FlowRule(
        "RPR011", "executor-capture-escape",
        "argument submitted to an executor then mutated, or (process "
        "backend) an unpicklable nested-class instance",
        "PR 6: the process backend pickles arguments at submit time; a "
        "post-submit mutation races the thread backend and ships a moving "
        "target to the spawn backend",
        check_executor_escape),
    FlowRule(
        "RPR012", "shm-lifetime-leak",
        "SharedMemory(create=True) handle not proven to reach unlink() "
        "on every path, followed across function boundaries",
        "PR 6/7: pack() creates the segment, _run()'s finally releases "
        "it; the per-file RPR004 cannot see that split lifetime and "
        "needed a reasoned suppression this analysis replaces",
        check_shm_lifetime),
    FlowRule(
        "RPR013", "dtype-pinning-unaudited",
        "function reachable from the public localization path hard-codes "
        "a float/complex dtype without a '# dtype-pinned: <dtype> -- "
        "reason' annotation (input dtype not preserved)",
        "ROADMAP item 2's float32 fast path dies silently if one helper "
        "in the covariance/eigh/GEMM chain forces dtype=float64: the "
        "result upcasts, the bit-exact gates still pass, and the 2x "
        "bandwidth win never materializes",
        check_dtype_pinning),
    FlowRule(
        "RPR014", "mixed-precision-promotion",
        "float32/complex64 operand meets a float64/complex128 operand in "
        "arithmetic or GEMM: NumPy upcasts the whole expression silently",
        "the upcast is value-correct, so no test fails -- only the "
        "memory-bandwidth win disappears; this is the failure mode the "
        "float32 mode must prove absent before it can ship",
        check_mixed_precision),
    FlowRule(
        "RPR015", "hot-loop-scalarization",
        "Python loop in core/ calling NumPy per element (loop-variable "
        "indexing) or growing arrays via np.append/concatenate/"
        "np.array(list) inside the loop",
        "PR 3-6 replaced exactly these loops with batched einsum/eigh "
        "paths for the paper's multi-client throughput claims; a new "
        "per-element loop in core/ quietly undoes that work",
        check_hot_loop_scalarization),
    FlowRule(
        "RPR016", "nondeterministic-numerics",
        "legacy np.random.* global-state API anywhere; default_rng() "
        "without a seed in tests/benchmarks/eval",
        "the repo's equality gates compare runs bit-exactly (process "
        "backend vs serial, batched vs sequential); global or unseeded "
        "RNG state makes those gates flaky instead of meaningful",
        check_nondeterministic_rng),
    FlowRule(
        "RPR017", "partial-init-and-axis",
        "np.empty buffer read before any element is provably written; "
        "axis-less mean/sum/median on an array proven >= 2-D",
        "PR 4 shipped NaN-poisoned quantiles from exactly this class: "
        "uninitialized or axis-collapsed aggregates return plausible "
        "numbers, so only an analyzer (not a test oracle) catches them",
        check_partial_init_and_axis),
]

FLOW_RULE_IDS = frozenset(rule.id for rule in FLOW_RULES)


@dataclass
class FlowReport:
    """Findings plus the ``dtype_surface`` inventory of one flow run."""

    violations: list[Violation]
    dtype_surface: dict[str, Any] = field(default_factory=dict)


def run_flow(files: Iterable[tuple[str, str]]) -> FlowReport:
    """Run every flow rule over ``(path, source)`` pairs.

    Returns sorted findings plus the ``dtype_surface`` classification of
    the public ``repro.api``/``repro.core`` functions in the scanned set.
    """
    program = build_program(list(files))
    graph = build_call_graph(program)
    summaries = build_summaries(program, graph)
    violations: list[Violation] = []
    for rule in FLOW_RULES:
        violations.extend(rule.check(program, graph, summaries))
    violations.sort(key=Violation.sort_key)
    return FlowReport(violations=violations,
                      dtype_surface=build_dtype_surface(program, graph))
