"""Pass 1 of the whole-program analysis: the cross-file symbol table.

This module turns a set of parsed files into a :class:`Program`: per-module
models (classes, functions incl. nested ones, module-level locks, comments)
plus the per-class *attribute model* the flow rules build on -- which
attributes are locks, which are containers, and which carry an explicit
``# guarded-by:`` annotation.

Name resolution is deliberately approximate (and documented as such in
``docs/static_analysis.md``): modules are matched by dotted-suffix, so
``from repro.core.cache import SteeringCache`` resolves whether the file was
scanned as ``src/repro/core/cache.py`` or from an absolute path, and a
lookup that is not *unique* resolves to nothing rather than guessing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from tools.repro_lint.engine import ModuleContext

__all__ = [
    "ClassModel",
    "FunctionModel",
    "ModuleModel",
    "Program",
    "build_program",
    "module_name_for_path",
]

#: ``# guarded-by: <lock>`` attribute/method annotation.  ``none`` opts an
#: attribute out of guarded-by inference; on a ``def`` line the named lock
#: is declared to be held by every caller (same contract as a ``_locked``
#: name suffix).  Prose after the name is allowed and encouraged.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*|none)")

_LOCK_FACTORY_SUFFIXES = ("threading.Lock", "threading.RLock")
_CONTAINER_FACTORY_SUFFIXES = (
    "OrderedDict", "defaultdict", "deque", "dict", "list", "set", "Counter")
_CONTAINER_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp,
                       ast.SetComp, ast.DictComp)


@dataclass
class FunctionModel:
    """One function or method (including nested defs), with its contracts."""

    name: str
    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None = None
    #: Lock names declared held by the caller (``# guarded-by:`` on the
    #: ``def`` line); ``("*",)`` for a ``_locked``-suffixed name.
    declared_locks: tuple[str, ...] = ()


@dataclass
class ClassModel:
    """One class and the attribute model the lock rules reason over."""

    name: str
    qualname: str
    module: str
    node: ast.ClassDef
    methods: dict[str, FunctionModel] = field(default_factory=dict)
    #: Lock-typed ``self`` attributes: name -> ``"Lock"`` | ``"RLock"``.
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: ``self`` attributes assigned a mutable container in any method.
    container_attrs: set[str] = field(default_factory=set)
    #: Explicit ``# guarded-by:`` attribute annotations: attr -> lock name
    #: (or ``"none"`` to opt out of inference).
    annotations: dict[str, str] = field(default_factory=dict)
    #: False for classes defined inside a function (spawn cannot pickle
    #: their instances).
    module_level: bool = True
    has_reduce: bool = False


@dataclass
class ModuleModel:
    """Everything the flow pass knows about one parsed file."""

    path: str
    name: str
    context: ModuleContext
    #: All classes by bare name (module-level and nested; later defs win).
    classes: dict[str, ClassModel] = field(default_factory=dict)
    #: Module-level functions by bare name.
    functions: dict[str, FunctionModel] = field(default_factory=dict)
    #: Every function in the file by qualname (methods and nested defs too).
    all_functions: dict[str, FunctionModel] = field(default_factory=dict)
    #: Module-level names assigned ``threading.Lock()``/``RLock()``.
    module_locks: dict[str, str] = field(default_factory=dict)
    #: Comment text by line (for ``# guarded-by:`` annotations).
    comments: dict[int, str] = field(default_factory=dict)
    #: Innermost enclosing function of every node (nodes at class/module
    #: level are absent).
    owner: dict[ast.AST, FunctionModel] = field(default_factory=dict)


class Program:
    """The whole scanned file set, indexed for approximate resolution."""

    def __init__(self, modules: list[ModuleModel]) -> None:
        self.modules: dict[str, ModuleModel] = {
            module.name: module for module in modules}
        self.modules_by_path: dict[str, ModuleModel] = {
            module.path: module for module in modules}
        self.classes: dict[str, ClassModel] = {}
        self.functions: dict[str, FunctionModel] = {}
        for module in modules:
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
            self.functions.update(module.all_functions)

    # ------------------------------------------------------------------
    # Approximate, suffix-based resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _suffix_lookup(table: dict[str, object], dotted: str) -> object | None:
        entry = table.get(dotted)
        if entry is not None:
            return entry
        suffix = "." + dotted
        matches = [value for qualname, value in table.items()
                   if qualname.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def resolve_class(self, dotted: str | None,
                      module: ModuleModel | None = None) -> ClassModel | None:
        """Resolve a dotted (or bare, module-local) name to a class."""
        if not dotted:
            return None
        if "." not in dotted:
            return module.classes.get(dotted) if module is not None else None
        resolved = self._suffix_lookup(self.classes, dotted)
        return resolved if isinstance(resolved, ClassModel) else None

    def resolve_function(self, dotted: str | None,
                         module: ModuleModel | None = None
                         ) -> FunctionModel | None:
        """Resolve a dotted (or bare, module-local) name to a function."""
        if not dotted:
            return None
        if "." not in dotted:
            return module.functions.get(dotted) if module is not None else None
        resolved = self._suffix_lookup(self.functions, dotted)
        return resolved if isinstance(resolved, FunctionModel) else None


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a scanned path.

    Files under a ``src`` directory get their true import path (so
    ``src/repro/core/cache.py`` matches ``from repro.core.cache import``);
    everything else keeps its full path as a dotted name, which still
    supports the suffix-matched resolution above.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    cleaned = [part for part in parts if part not in ("/", "\\", "")]
    return ".".join(part.replace(".", "_") for part in cleaned) or "module"


def _collect_comments(source: str) -> dict[int, str]:
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return {token.start[0]: token.string
                for token in tokens if token.type == tokenize.COMMENT}
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}


def _line_annotation(comments: dict[int, str], line: int) -> str | None:
    match = GUARDED_BY_RE.search(comments.get(line, ""))
    return match.group(1) if match else None


def _is_lock_factory(context: ModuleContext, value: ast.AST) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    dotted = context.resolve_call(value)
    if dotted is None:
        return None
    for suffix in _LOCK_FACTORY_SUFFIXES:
        if dotted == suffix or dotted.endswith("." + suffix):
            return suffix.rsplit(".", 1)[-1]
    # ``from threading import Lock`` resolves to ``threading.Lock`` via the
    # import map already; a bare local name is not treated as a lock.
    return None


def _is_container_factory(context: ModuleContext, value: ast.AST) -> bool:
    if isinstance(value, _CONTAINER_LITERALS):
        return True
    if not isinstance(value, ast.Call):
        return False
    dotted = context.resolve_call(value)
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1]
    return tail in _CONTAINER_FACTORY_SUFFIXES


def _self_attr_targets(node: ast.stmt) -> list[tuple[str, ast.AST]]:
    """``(attr, value)`` pairs for ``self.<attr> = value`` statements."""
    pairs: list[tuple[str, ast.AST]] = []
    targets: list[ast.AST] = []
    value: ast.AST | None = None
    if isinstance(node, ast.Assign):
        targets, value = list(node.targets), node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets, value = [node.target], node.value
    if value is None:
        return pairs
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            pairs.append((target.attr, value))
    return pairs


def _declared_locks(name: str, comments: dict[int, str],
                    node: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> tuple[str, ...]:
    if name.endswith("_locked"):
        return ("*",)
    annotation = _line_annotation(comments, node.lineno)
    if annotation and annotation != "none":
        return (annotation,)
    return ()


class _ModuleBuilder(ast.NodeVisitor):
    """Single walk collecting functions, classes and node ownership.

    ``_scopes`` mirrors the lexical nesting: each entry is ``("class", cls)``
    or ``("function", fn)``, so a def whose innermost scope is a class is a
    method of exactly that class.
    """

    def __init__(self, model: ModuleModel) -> None:
        self.model = model
        self._scopes: list[tuple[str, ClassModel | FunctionModel]] = []
        self._qual_stack: list[str] = [model.name]

    # -- helpers -------------------------------------------------------
    def _qualname(self, name: str) -> str:
        return ".".join([*self._qual_stack, name])

    def _enclosing_function(self) -> FunctionModel | None:
        for kind, scope in reversed(self._scopes):
            if kind == "function":
                assert isinstance(scope, FunctionModel)
                return scope
        return None

    def _record_owner(self, node: ast.AST) -> None:
        owner = self._enclosing_function()
        if owner is not None:
            self.model.owner[node] = owner

    def generic_visit(self, node: ast.AST) -> None:
        self._record_owner(node)
        super().generic_visit(node)

    # -- definitions ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._record_owner(node)
        cls = ClassModel(
            name=node.name,
            qualname=self._qualname(node.name),
            module=self.model.name,
            node=node,
            module_level=not self._scopes,
        )
        self.model.classes[node.name] = cls
        self._scopes.append(("class", cls))
        self._qual_stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._qual_stack.pop()
        self._scopes.pop()

    def _visit_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._record_owner(node)
        owning_class = (self._scopes[-1][1]
                        if self._scopes and self._scopes[-1][0] == "class"
                        else None)
        function = FunctionModel(
            name=node.name,
            qualname=self._qualname(node.name),
            module=self.model.name,
            node=node,
            class_qualname=(owning_class.qualname
                            if isinstance(owning_class, ClassModel) else None),
            declared_locks=_declared_locks(node.name, self.model.comments,
                                           node),
        )
        self.model.all_functions[function.qualname] = function
        if isinstance(owning_class, ClassModel):
            owning_class.methods[node.name] = function
            if node.name in ("__reduce__", "__reduce_ex__", "__getstate__"):
                owning_class.has_reduce = True
        elif not self._scopes:
            self.model.functions[node.name] = function
        self._scopes.append(("function", function))
        self._qual_stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._qual_stack.pop()
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def _populate_class_attributes(model: ModuleModel) -> None:
    context = model.context
    for cls in model.classes.values():
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                # Only attribute assignments made directly in this class's
                # methods count (nested defs keep their own ``self``).
                if model.owner.get(node) is not method:
                    continue
                for attr, value in _self_attr_targets(node):
                    kind = _is_lock_factory(context, value)
                    if kind is not None:
                        cls.lock_attrs[attr] = kind
                    elif _is_container_factory(context, value):
                        cls.container_attrs.add(attr)
                    annotation = _line_annotation(model.comments, node.lineno)
                    if annotation is not None:
                        cls.annotations[attr] = annotation


def _populate_module_locks(model: ModuleModel) -> None:
    for node in model.context.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            kind = _is_lock_factory(model.context, node.value)
            if kind is not None:
                model.module_locks[node.targets[0].id] = kind


def build_module(path: str, source: str, tree: ast.Module) -> ModuleModel:
    """Build one file's model (already-parsed tree)."""
    context = ModuleContext(path, source, tree)
    model = ModuleModel(path=path, name=module_name_for_path(path),
                        context=context, comments=_collect_comments(source))
    _ModuleBuilder(model).visit(tree)
    _populate_class_attributes(model)
    _populate_module_locks(model)
    return model


def build_program(files: list[tuple[str, str]]) -> Program:
    """Parse ``(path, source)`` pairs into a :class:`Program`.

    Files that fail to parse are skipped here: the per-file pass already
    reported them (and drove the exit code to 2).
    """
    modules: list[ModuleModel] = []
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError):
            continue
        modules.append(build_module(path, source, tree))
    return Program(modules)
