"""Pass 2 lock rules: guarded-by inference (RPR009), lock order (RPR010).

Both rules share one lock-aware traversal (:func:`build_summaries`): every
function is walked once, tracking which lock identities are held at each
``self`` attribute access, each ``with``-acquire and each call.  A lock
identity is class-qualified (``repro.core.cache.SteeringCache._lock``) or
module-qualified for module-level locks, so two instances of the same class
share an identity -- a deliberate approximation documented in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterator

from tools.repro_lint.engine import Violation
from tools.repro_lint.flow.callgraph import (CallGraph, LocalTypes,
                                             resolve_call_target)
from tools.repro_lint.flow.symbols import (ClassModel, FunctionModel,
                                           ModuleModel, Program)

__all__ = [
    "FunctionSummary",
    "MUTATOR_METHODS",
    "build_summaries",
    "check_guarded_by",
    "check_lock_order",
]

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
    "remove", "rotate", "setdefault", "sort", "update",
})

_SCOPE_BOUNDARY = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
_CONSTRUCTORS = ("__init__", "__new__")


@dataclass(frozen=True)
class Access:
    """One read or write of a ``self.<attr>`` attribute."""

    attr: str
    write: bool
    node: ast.AST
    held: tuple[str, ...]


@dataclass(frozen=True)
class Acquire:
    """One lock acquisition (a ``with`` item), with the locks already held."""

    identity: str
    kind: str  # "Lock" | "RLock"
    node: ast.AST
    held: tuple[str, ...]


@dataclass(frozen=True)
class HeldCall:
    """One call site with the locks held at it (callee may be unresolved)."""

    node: ast.Call
    held: tuple[str, ...]
    callee: str | None


@dataclass
class FunctionSummary:
    """Lock-relevant events of one function, in source order."""

    function: FunctionModel
    module: ModuleModel
    accesses: list[Access] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    calls: list[HeldCall] = field(default_factory=list)


def _self_root(node: ast.AST) -> ast.Attribute | None:
    """The ``self.<attr>`` root of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if isinstance(current, ast.Attribute) \
                and isinstance(current.value, ast.Name) \
                and current.value.id == "self":
            return current
        current = current.value
    return None


def _lock_identity(expr: ast.AST, function: FunctionModel,
                   module: ModuleModel, program: Program,
                   types: LocalTypes | None) -> tuple[str, str] | None:
    """``(identity, kind)`` if ``expr`` names a known lock, else None."""
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        base = expr.value.id
        cls: ClassModel | None = None
        if base == "self" and function.class_qualname:
            cls = program.classes.get(function.class_qualname)
        elif types is not None:
            cls = types.classes.get(base)
        if cls is not None and expr.attr in cls.lock_attrs:
            return f"{cls.qualname}.{expr.attr}", cls.lock_attrs[expr.attr]
    if isinstance(expr, ast.Name):
        kind = module.module_locks.get(expr.id)
        if kind is not None:
            return f"{module.name}.{expr.id}", kind
    if isinstance(expr, (ast.Name, ast.Attribute)):
        dotted = module.context.dotted_name(expr)
        if dotted and "." in dotted:
            head, _, tail = dotted.rpartition(".")
            for other in program.modules.values():
                if tail in other.module_locks and (
                        other.name == head
                        or other.name.endswith("." + head)):
                    return f"{other.name}.{tail}", other.module_locks[tail]
    return None


class _FunctionWalker:
    """One-pass traversal of a function body tracking held locks."""

    def __init__(self, summary: FunctionSummary, program: Program,
                 types: LocalTypes | None) -> None:
        self.summary = summary
        self.program = program
        self.module = summary.module
        self.function = summary.function
        self.types = types
        #: ``self.<attr>`` nodes already counted as part of a larger write
        #: pattern (mutator call, subscript store) -- not re-counted as reads.
        self._claimed: set[ast.AST] = set()

    def walk(self) -> None:
        for statement in self.function.node.body:
            self._visit(statement, ())

    # ------------------------------------------------------------------
    def _visit(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, _SCOPE_BOUNDARY):
            return  # nested defs get their own summary
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node, held)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, held)
        elif isinstance(node, ast.Attribute):
            self._visit_attribute(node, held)
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            root = _self_root(node)
            if root is not None:
                self._record(root.attr, True, node, held)
                self._claimed.add(root)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _visit_with(self, node: ast.With | ast.AsyncWith,
                    held: tuple[str, ...]) -> None:
        inner = held
        for item in node.items:
            identity = _lock_identity(item.context_expr, self.function,
                                      self.module, self.program, self.types)
            self._visit(item.context_expr, inner)
            if item.optional_vars is not None:
                self._visit(item.optional_vars, inner)
            if identity is not None:
                name, kind = identity
                self.summary.acquires.append(
                    Acquire(name, kind, item.context_expr, inner))
                inner = (*inner, name)
        for statement in node.body:
            self._visit(statement, inner)

    def _visit_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        target = resolve_call_target(node, self.function, self.module,
                                     self.program, self.types)
        callee = target.qualname if isinstance(target, FunctionModel) else None
        self.summary.calls.append(HeldCall(node, held, callee))
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            root = _self_root(func.value)
            if root is not None:
                self._record(root.attr, True, node, held)
                self._claimed.add(root)

    def _visit_attribute(self, node: ast.Attribute,
                         held: tuple[str, ...]) -> None:
        if node in self._claimed:
            return
        root = _self_root(node)
        if root is None:
            return
        if root is node:
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            self._record(node.attr, write, node, held)
        elif isinstance(node.ctx, (ast.Store, ast.Del)):
            # ``self.stats.hits = ...`` mutates the object behind the root
            # attribute: count it as a write of ``stats``.
            self._record(root.attr, True, node, held)
            self._claimed.add(root)

    def _record(self, attr: str, write: bool, node: ast.AST,
                held: tuple[str, ...]) -> None:
        self.summary.accesses.append(Access(attr, write, node, held))


def build_summaries(program: Program,
                    graph: CallGraph) -> dict[str, FunctionSummary]:
    """Walk every function once; keyed by function qualname."""
    summaries: dict[str, FunctionSummary] = {}
    for module in program.modules.values():
        for function in module.all_functions.values():
            summary = FunctionSummary(function, module)
            _FunctionWalker(summary, program,
                            graph.types.get(function.qualname)).walk()
            summaries[function.qualname] = summary
    return summaries


def _sorted_modules(program: Program) -> list[ModuleModel]:
    return [program.modules_by_path[path]
            for path in sorted(program.modules_by_path)]


# ----------------------------------------------------------------------
# RPR009 -- guarded-by inference
# ----------------------------------------------------------------------
def _own_lock_held(cls: ClassModel, held: tuple[str, ...]) -> str | None:
    """Bare name of the innermost held lock belonging to ``cls``, if any."""
    prefix = cls.qualname + "."
    for identity in reversed(held):
        if identity.startswith(prefix):
            attr = identity[len(prefix):]
            if attr in cls.lock_attrs:
                return attr
    return None


def _guarded_map(cls: ClassModel,
                 summaries: dict[str, FunctionSummary]) -> dict[str, str]:
    """attr -> guarding lock name, from inference plus annotations."""
    guarded: dict[str, str] = {}
    for method in cls.methods.values():
        summary = summaries.get(method.qualname)
        if summary is None:
            continue
        for access in summary.accesses:
            if not access.write:
                continue
            lock = _own_lock_held(cls, access.held)
            if lock is not None:
                guarded.setdefault(access.attr, lock)
    if len(cls.lock_attrs) == 1:
        # A class that owns exactly one lock guards its mutable containers
        # by default -- even before any locked write exists to learn from.
        only = next(iter(cls.lock_attrs))
        for attr in sorted(cls.container_attrs):
            guarded.setdefault(attr, only)
    for attr, annotation in cls.annotations.items():
        if annotation == "none":
            guarded.pop(attr, None)
        elif annotation in cls.lock_attrs:
            guarded[attr] = annotation
    for lock in cls.lock_attrs:
        guarded.pop(lock, None)
    return guarded


def _declares(function: FunctionModel, lock: str) -> bool:
    return "*" in function.declared_locks or lock in function.declared_locks


def _runs_locked(qualname: str, identity: str, lock: str, graph: CallGraph,
                 summaries: dict[str, FunctionSummary],
                 stack: frozenset[str]) -> bool:
    """True if every resolved caller provably holds ``identity`` (>= 1)."""
    if qualname in stack:
        return True  # coinductive: a cycle of callers is consistent
    callers = graph.callers_of.get(qualname, ())
    if not callers:
        return False
    for site in callers:
        summary = summaries.get(site.caller)
        if summary is None:
            return False
        held_here: tuple[str, ...] | None = None
        for call in summary.calls:
            if call.node is site.node:
                held_here = call.held
                break
        if held_here is not None and identity in held_here:
            continue
        if _declares(summary.function, lock):
            continue
        if not _runs_locked(site.caller, identity, lock, graph, summaries,
                           stack | {qualname}):
            return False
    return True


def check_guarded_by(program: Program, graph: CallGraph,
                     summaries: dict[str, FunctionSummary]
                     ) -> Iterator[Violation]:
    for module in _sorted_modules(program):
        for cls in module.classes.values():
            if not cls.lock_attrs:
                continue
            guarded = _guarded_map(cls, summaries)
            if not guarded:
                continue
            for method in cls.methods.values():
                if method.name in _CONSTRUCTORS:
                    continue
                summary = summaries.get(method.qualname)
                if summary is None:
                    continue
                for access in summary.accesses:
                    lock = guarded.get(access.attr)
                    if lock is None:
                        continue
                    identity = f"{cls.qualname}.{lock}"
                    if identity in access.held:
                        continue
                    if _declares(method, lock):
                        continue
                    if _runs_locked(method.qualname, identity, lock, graph,
                                    summaries, frozenset()):
                        continue
                    action = "written" if access.write else "read"
                    yield Violation(
                        path=module.path,
                        line=getattr(access.node, "lineno", 1),
                        col=getattr(access.node, "col_offset", 0),
                        rule="RPR009",
                        message=(
                            f"'{cls.name}.{access.attr}' is guarded by "
                            f"'{lock}' but {action} in {method.name}() "
                            f"without it; wrap the access in 'with "
                            f"self.{lock}:', call it only with the lock "
                            f"held and rename the method with a '_locked' "
                            f"suffix, or annotate the def line with "
                            f"'# guarded-by: {lock}' (opt the attribute "
                            f"out with '# guarded-by: none' on its "
                            f"assignment)"))


# ----------------------------------------------------------------------
# RPR010 -- lock-order cycles
# ----------------------------------------------------------------------
def _transitive_acquires(qualname: str,
                         summaries: dict[str, FunctionSummary],
                         memo: dict[str, frozenset[str]],
                         stack: set[str]) -> frozenset[str]:
    cached = memo.get(qualname)
    if cached is not None:
        return cached
    if qualname in stack:
        return frozenset()
    stack.add(qualname)
    acquired: set[str] = set()
    summary = summaries.get(qualname)
    if summary is not None:
        acquired.update(acq.identity for acq in summary.acquires)
        for call in summary.calls:
            if call.callee is not None:
                acquired.update(_transitive_acquires(call.callee, summaries,
                                                     memo, stack))
    stack.discard(qualname)
    memo[qualname] = frozenset(acquired)
    return memo[qualname]


def _strongly_connected(nodes: list[str],
                        successors: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC over the lock-order graph (iterative, small graphs)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(successors.get(root, ()))))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (child, iter(sorted(successors.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def check_lock_order(program: Program, graph: CallGraph,
                     summaries: dict[str, FunctionSummary]
                     ) -> Iterator[Violation]:
    kinds: dict[str, str] = {}
    #: (held, acquired) -> first (path, line) where that ordering happened.
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    memo: dict[str, frozenset[str]] = {}

    for module in _sorted_modules(program):
        for function in module.all_functions.values():
            summary = summaries[function.qualname]
            for acquire in summary.acquires:
                kinds.setdefault(acquire.identity, acquire.kind)
                site = (module.path, getattr(acquire.node, "lineno", 1))
                if acquire.identity in acquire.held:
                    if acquire.kind == "Lock":
                        yield Violation(
                            path=site[0], line=site[1],
                            col=getattr(acquire.node, "col_offset", 0),
                            rule="RPR010",
                            message=(
                                f"'{acquire.identity}' is a "
                                f"non-reentrant threading.Lock acquired "
                                f"while already held ({function.name}() "
                                f"nests it): this self-deadlocks at "
                                f"runtime; use an RLock or restructure "
                                f"so the lock is taken once"))
                    continue
                for held in acquire.held:
                    edges.setdefault((held, acquire.identity), site)
            for call in summary.calls:
                if not call.held or call.callee is None:
                    continue
                site = (module.path, getattr(call.node, "lineno", 1))
                for acquired in sorted(
                        _transitive_acquires(call.callee, summaries, memo,
                                             set())):
                    for held in call.held:
                        if held != acquired:
                            edges.setdefault((held, acquired), site)

    successors: dict[str, set[str]] = {}
    for held, acquired in edges:
        successors.setdefault(held, set()).add(acquired)
    nodes = sorted(set(kinds) | set(successors))
    for component in _strongly_connected(nodes, successors):
        if len(component) < 2:
            continue
        members = set(component)
        cycle_edges = sorted(
            ((site, pair) for pair, site in edges.items()
             if pair[0] in members and pair[1] in members),
            key=lambda entry: entry[0])
        (path, line), _ = cycle_edges[0]
        ordering = " -> ".join(sorted(members))
        sites = "; ".join(
            f"{pair[1]} taken at {site[0]}:{site[1]} while holding {pair[0]}"
            for site, pair in cycle_edges[:4])
        yield Violation(
            path=path, line=line, col=0, rule="RPR010",
            message=(
                f"lock-order cycle (potential deadlock) between "
                f"{ordering}: {sites}; pick one global acquisition "
                f"order and take the locks in that order everywhere"))
