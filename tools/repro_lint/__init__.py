"""repro-lint: repo-specific static analysis for concurrency/determinism/numeric contracts.

Every rule encodes a bug class this codebase has actually shipped (and fixed
by hand) in PRs 1-6; the linter keeps those fixes from regressing.  See
``docs/static_analysis.md`` for the rule catalogue and
``tools/repro_lint/rules.py`` for the implementations.

Usage::

    python -m tools.repro_lint src tests benchmarks
    python -m tools.repro_lint --format=json src
    python -m tools.repro_lint --list-rules

Suppress a single finding inline, with a mandatory reason::

    risky_call()  # repro-lint: disable=RPR004 -- unlinked by caller's finally
"""

from tools.repro_lint.engine import (
    LintResult,
    Violation,
    check_source,
    iter_python_files,
    run_paths,
)
from tools.repro_lint.rules import RULES, Rule

__all__ = [
    "LintResult",
    "RULES",
    "Rule",
    "Violation",
    "check_source",
    "iter_python_files",
    "run_paths",
]

__version__ = "1.0.0"
