"""Core of repro-lint: per-file analysis, suppressions, file walking.

The engine parses each file once with the stdlib ``ast`` module, wraps the
tree in a :class:`ModuleContext` (parent links plus an import-alias map so
rules can resolve ``np.arange`` and friends to dotted names), runs every
per-file rule, and then filters the findings through the file's inline
suppression comments.  With ``flow`` enabled (the default) a second,
whole-program pass (``tools.repro_lint.flow``) runs the RPR009-017 rules
over the same file set; the per-file pass can fan out over worker
processes (``jobs``) while the flow pass always runs in the parent.

Suppression syntax (same line as the finding)::

    some_call()  # repro-lint: disable=RPR001 -- reason why this is safe

The reason after ``--`` is mandatory: a suppression without one is itself
reported as ``RPR000`` and does **not** silence anything, so every waiver in
the tree documents why the contract does not apply.
"""

from __future__ import annotations

import ast
import concurrent.futures
import io
import multiprocessing
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from collections.abc import Iterable, Iterator, Sequence

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "LintResult",
    "ModuleContext",
    "Violation",
    "check_source",
    "iter_python_files",
    "run_paths",
]

#: Directory names skipped while walking a directory argument.  ``fixtures``
#: is excluded because the linter's own test fixtures intentionally contain
#: violations; explicitly named files are always checked regardless.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", ".venv", "build", "dist", "fixtures"})

#: Rule id of engine-level findings (syntax errors, malformed suppressions).
ENGINE_RULE_ID = "RPR000"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--\s*(.*))?$")


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule fired, and what to do instead."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class _Suppression:
    line: int
    rules: tuple[str, ...]
    reason: str | None


@dataclass
class _FileOutcome:
    """Everything the per-file pass learned about one file (picklable, so
    ``--jobs`` workers can ship it back whole)."""

    path: str
    source: str | None
    violations: list[Violation]
    suppressions: list[_Suppression]
    parse_failed: bool = False

    @property
    def waiver_count(self) -> int:
        return len(self.suppressions)


@dataclass
class LintResult:
    """Aggregated outcome of one linter run."""

    violations: list[Violation]
    files_checked: int
    parse_failures: int = 0
    flow: bool = False
    #: Files with at least one ``# repro-lint: disable=`` waiver -> count
    #: (the CLI's suppression budget sums these per top-level directory).
    waivers_by_path: dict[str, int] = field(default_factory=dict)
    #: Honored-waiver counts per rule id (``RPR...`` suppression-budget
    #: keys compare against these).
    waivers_by_rule: dict[str, int] = field(default_factory=dict)
    #: The numerics pass's float32-readiness inventory (empty without
    #: ``flow``); see ``tools.repro_lint.numerics.surface``.
    dtype_surface: dict[str, object] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        if self.parse_failures:
            return 2  # usage/IO/parse error, same convention as ruff
        return 1 if self.violations else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


class ModuleContext:
    """Everything a rule needs about one parsed file.

    Attributes
    ----------
    path:
        Path of the file as given on the command line (posix separators).
    tree:
        The parsed module.
    parents:
        Child-to-parent node map over the whole tree.
    imports:
        Local name -> dotted origin, e.g. ``{"np": "numpy",
        "inv": "numpy.linalg.inv"}``; used by :meth:`resolve_call`.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.imports = _import_map(tree)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def dotted_name(self, node: ast.AST) -> str | None:
        """Flatten a ``Name``/``Attribute`` chain and resolve import aliases.

        ``np.linalg.inv`` becomes ``numpy.linalg.inv`` when ``np`` aliases
        ``numpy``; returns None for expressions that are not plain chains
        (calls, subscripts, ...).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        origin = self.imports.get(parts[0])
        if origin is not None:
            parts[0] = origin
        return ".".join(parts)

    def resolve_call(self, call: ast.Call) -> str | None:
        """Dotted name of a call's target, alias-resolved (or None)."""
        return self.dotted_name(call.func)

    # ------------------------------------------------------------------
    # Ancestry helpers
    # ------------------------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing(self, node: ast.AST,
                  kinds: tuple[type[ast.AST], ...]) -> ast.AST | None:
        """Nearest ancestor of one of ``kinds`` (None if there is none)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, kinds):
                return ancestor
        return None

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        return self.enclosing(
            node, (ast.FunctionDef, ast.AsyncFunctionDef))


def _import_map(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds the
                # full dotted path to ``c``.
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _known_rule_ids() -> set[str]:
    """Every valid suppression target: per-file rules plus flow rules.

    Flow ids are always valid (even under ``--no-flow``), so a file does
    not oscillate between "unknown rule" and "suppressed" across modes.
    """
    from tools.repro_lint.flow import FLOW_RULE_IDS
    from tools.repro_lint.rules import RULES

    return {rule.id for rule in RULES} | set(FLOW_RULE_IDS)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _parse_suppressions(source: str) -> tuple[list[_Suppression], list[tuple[int, str]]]:
    """Extract suppression comments; returns (suppressions, parse_errors)."""
    suppressions: list[_Suppression] = []
    errors: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(token.start[0], token.string)
                    for token in tokens if token.type == tokenize.COMMENT]
    except tokenize.TokenError:  # unterminated string etc.; ast will report
        comments = []
    for line, text in comments:
        # Only ``repro-lint:`` (with the colon) is directive syntax; prose
        # comments may freely mention rule ids ("... (repro-lint RPR001)").
        if re.search(r"repro-lint\s*:", text) is None:
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            errors.append((line, f"malformed repro-lint comment: {text.strip()!r}"))
            continue
        rules = tuple(rule.strip().upper()
                      for rule in match.group(1).split(",") if rule.strip())
        reason = (match.group(2) or "").strip() or None
        suppressions.append(_Suppression(line=line, rules=rules, reason=reason))
    return suppressions, errors


def _honored_by_line(suppressions: list[_Suppression],
                     known_rules: set[str]) -> dict[int, set[str]]:
    honored: dict[int, set[str]] = {}
    for suppression in suppressions:
        if suppression.reason is None:
            continue
        valid = {rule for rule in suppression.rules if rule in known_rules}
        if valid:
            honored.setdefault(suppression.line, set()).update(valid)
    return honored


def _apply_suppressions(path: str, violations: list[Violation],
                        suppressions: list[_Suppression],
                        known_rules: set[str]) -> list[Violation]:
    kept: list[Violation] = []
    for suppression in suppressions:
        if suppression.reason is None:
            kept.append(Violation(
                path=path, line=suppression.line, col=0, rule=ENGINE_RULE_ID,
                message=("suppression is missing its reason; write "
                         "'# repro-lint: disable=<RULE> -- <why this is "
                         "safe>' (an unexplained waiver is not honored)")))
            continue
        unknown = [rule for rule in suppression.rules
                   if rule not in known_rules]
        if unknown:
            kept.append(Violation(
                path=path, line=suppression.line, col=0, rule=ENGINE_RULE_ID,
                message=(f"suppression names unknown rule(s) "
                         f"{', '.join(unknown)}; known rules are "
                         f"{', '.join(sorted(known_rules))}")))
    honored = _honored_by_line(suppressions, known_rules)
    for violation in violations:
        if violation.rule in honored.get(violation.line, ()):
            continue
        kept.append(violation)
    return kept


def _silence(violations: Iterable[Violation],
             suppressions: list[_Suppression],
             known_rules: set[str]) -> list[Violation]:
    """Filter flow findings through a file's suppressions (no RPR000 here:
    the per-file pass already reported malformed/unknown waivers once)."""
    honored = _honored_by_line(suppressions, known_rules)
    return [violation for violation in violations
            if violation.rule not in honored.get(violation.line, ())]


# ----------------------------------------------------------------------
# Per-file / per-tree entry points
# ----------------------------------------------------------------------
def _analyze_source(path: str, source: str) -> _FileOutcome:
    """Run the per-file pass over one file's text."""
    from tools.repro_lint.rules import RULES

    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        # ValueError covers null bytes and other unparseable input.
        line = getattr(exc, "lineno", None) or 1
        offset = getattr(exc, "offset", None) or 1
        message = getattr(exc, "msg", None) or str(exc)
        return _FileOutcome(
            path=path, source=source, parse_failed=True, suppressions=[],
            violations=[Violation(path=path, line=line, col=offset - 1,
                                  rule=ENGINE_RULE_ID,
                                  message=f"syntax error: {message}")])
    context = ModuleContext(path, source, tree)
    violations: list[Violation] = []
    for rule in RULES:
        for line, col, message in rule.check(context):
            violations.append(Violation(path=path, line=line, col=col,
                                        rule=rule.id, message=message))
    suppressions, parse_errors = _parse_suppressions(source)
    for line, message in parse_errors:
        violations.append(Violation(path=path, line=line, col=0,
                                    rule=ENGINE_RULE_ID, message=message))
    violations = _apply_suppressions(path, violations, suppressions,
                                     _known_rule_ids())
    violations.sort(key=Violation.sort_key)
    return _FileOutcome(path=path, source=source, violations=violations,
                        suppressions=suppressions)


def check_source(path: str, source: str) -> list[Violation]:
    """Lint one file's source text; returns the surviving violations."""
    return _analyze_source(path, source).violations


def _lint_file(path: str) -> _FileOutcome:
    """Read and analyze one file; IO failures become reported findings."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return _FileOutcome(
            path=path, source=None, parse_failed=True, suppressions=[],
            violations=[Violation(path=path, line=1, col=0,
                                  rule=ENGINE_RULE_ID,
                                  message=f"cannot read file: {exc}")])
    return _analyze_source(path, source)


def iter_python_files(paths: Sequence[str],
                      excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS
                      ) -> list[Path]:
    """Expand path arguments into the sorted list of ``.py`` files to lint.

    Directories are walked recursively, skipping ``excluded_dirs`` by name;
    files named explicitly are always included (that is how the test suite
    lints the intentionally-bad fixtures).
    """
    excluded = set(excluded_dirs)
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if excluded.intersection(candidate.parts):
                    continue
                files.append(candidate)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    unique: list[Path] = []
    seen: set[Path] = set()
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _lint_files_parallel(paths: list[str], jobs: int) -> list[_FileOutcome]:
    """Fan the per-file pass out over worker processes, order-preserving."""
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: spawn works, just slower
        mp_context = multiprocessing.get_context()
    chunksize = max(1, len(paths) // (jobs * 4))
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=mp_context) as pool:
        return list(pool.map(_lint_file, paths, chunksize=chunksize))


def _read_for_flow(path: str) -> tuple[str, str] | None:
    """Source of a file the per-file pass skipped (``restrict``); the flow
    pass still needs the whole program for its symbol table."""
    try:
        return path, Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None


def run_paths(paths: Sequence[str],
              excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
              *, flow: bool = True, jobs: int = 1,
              restrict: Iterable[str] | None = None) -> LintResult:
    """Lint every python file under ``paths``; the CLI's workhorse.

    ``flow`` adds the whole-program RPR009-017 pass (and drops per-file
    RPR004 findings, which RPR012's cross-function proof subsumes).
    ``jobs`` > 1 runs the per-file pass in that many worker processes
    (0 = one per CPU); the flow pass always runs in the parent.
    ``restrict`` (``--changed-only``) limits the per-file pass and the
    *reported* findings to the given posix paths; the flow pass still
    analyzes the whole scanned set, so interprocedural proofs stay sound.
    """
    files = [path.as_posix() for path in
             iter_python_files(paths, excluded_dirs)]
    restricted = None if restrict is None \
        else {PurePath(path).as_posix() for path in restrict}
    lint_files = files if restricted is None \
        else [path for path in files if path in restricted]
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(lint_files) > 1:
        outcomes = _lint_files_parallel(lint_files,
                                        min(jobs, len(lint_files)))
    else:
        outcomes = [_lint_file(path) for path in lint_files]

    violations: list[Violation] = []
    for outcome in outcomes:
        violations.extend(outcome.violations)
    dtype_surface: dict[str, object] = {}
    if flow:
        # RPR012 proves (or refutes) the shm lifetime across functions;
        # the per-file RPR004 heuristic would double-report every site.
        violations = [violation for violation in violations
                      if violation.rule != "RPR004"]
        from tools.repro_lint.flow import run_flow

        known = _known_rule_ids()
        suppressions_by_path = {outcome.path: outcome.suppressions
                                for outcome in outcomes}
        flow_inputs = [(outcome.path, outcome.source)
                       for outcome in outcomes
                       if outcome.source is not None
                       and not outcome.parse_failed]
        outcome_paths = {outcome.path for outcome in outcomes}
        for path in files:
            if path not in outcome_paths:
                extra = _read_for_flow(path)
                if extra is not None:
                    flow_inputs.append(extra)
        report = run_flow(flow_inputs)
        dtype_surface = report.dtype_surface
        for violation in report.violations:
            if restricted is not None \
                    and violation.path not in restricted:
                continue
            kept = _silence(
                [violation],
                suppressions_by_path.get(violation.path, []), known)
            violations.extend(kept)
    violations.sort(key=Violation.sort_key)
    waivers_by_rule: dict[str, int] = {}
    for outcome in outcomes:
        for suppression in outcome.suppressions:
            if suppression.reason is None:
                continue
            for rule in suppression.rules:
                waivers_by_rule[rule] = waivers_by_rule.get(rule, 0) + 1
    return LintResult(
        violations=violations,
        files_checked=len(lint_files),
        parse_failures=sum(1 for outcome in outcomes if outcome.parse_failed),
        flow=flow,
        waivers_by_path={outcome.path: outcome.waiver_count
                        for outcome in outcomes if outcome.waiver_count},
        waivers_by_rule=dict(sorted(waivers_by_rule.items())),
        dtype_surface=dtype_surface)
