"""Core of repro-lint: per-file analysis context, suppressions, file walking.

The engine is deliberately small: it parses each file once with the stdlib
``ast`` module, wraps the tree in a :class:`ModuleContext` (parent links plus
an import-alias map so rules can resolve ``np.arange`` and friends to dotted
names), runs every registered rule, and then filters the findings through the
file's inline suppression comments.

Suppression syntax (same line as the finding)::

    some_call()  # repro-lint: disable=RPR001 -- reason why this is safe

The reason after ``--`` is mandatory: a suppression without one is itself
reported as ``RPR000`` and does **not** silence anything, so every waiver in
the tree documents why the contract does not apply.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "LintResult",
    "ModuleContext",
    "Violation",
    "check_source",
    "iter_python_files",
    "run_paths",
]

#: Directory names skipped while walking a directory argument.  ``fixtures``
#: is excluded because the linter's own test fixtures intentionally contain
#: violations; explicitly named files are always checked regardless.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", ".venv", "build", "dist", "fixtures"})

#: Rule id of engine-level findings (syntax errors, malformed suppressions).
ENGINE_RULE_ID = "RPR000"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--\s*(.*))?$")


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule fired, and what to do instead."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class _Suppression:
    line: int
    rules: tuple[str, ...]
    reason: str | None


@dataclass
class LintResult:
    """Aggregated outcome of one linter run."""

    violations: list[Violation]
    files_checked: int

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


class ModuleContext:
    """Everything a rule needs about one parsed file.

    Attributes
    ----------
    path:
        Path of the file as given on the command line (posix separators).
    tree:
        The parsed module.
    parents:
        Child-to-parent node map over the whole tree.
    imports:
        Local name -> dotted origin, e.g. ``{"np": "numpy",
        "inv": "numpy.linalg.inv"}``; used by :meth:`resolve_call`.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.imports = _import_map(tree)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def dotted_name(self, node: ast.AST) -> str | None:
        """Flatten a ``Name``/``Attribute`` chain and resolve import aliases.

        ``np.linalg.inv`` becomes ``numpy.linalg.inv`` when ``np`` aliases
        ``numpy``; returns None for expressions that are not plain chains
        (calls, subscripts, ...).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        origin = self.imports.get(parts[0])
        if origin is not None:
            parts[0] = origin
        return ".".join(parts)

    def resolve_call(self, call: ast.Call) -> str | None:
        """Dotted name of a call's target, alias-resolved (or None)."""
        return self.dotted_name(call.func)

    # ------------------------------------------------------------------
    # Ancestry helpers
    # ------------------------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing(self, node: ast.AST,
                  kinds: tuple[type[ast.AST], ...]) -> ast.AST | None:
        """Nearest ancestor of one of ``kinds`` (None if there is none)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, kinds):
                return ancestor
        return None

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        return self.enclosing(
            node, (ast.FunctionDef, ast.AsyncFunctionDef))


def _import_map(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds the
                # full dotted path to ``c``.
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _parse_suppressions(source: str) -> tuple[list[_Suppression], list[tuple[int, str]]]:
    """Extract suppression comments; returns (suppressions, parse_errors)."""
    suppressions: list[_Suppression] = []
    errors: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(token.start[0], token.string)
                    for token in tokens if token.type == tokenize.COMMENT]
    except tokenize.TokenError:  # unterminated string etc.; ast will report
        comments = []
    for line, text in comments:
        # Only ``repro-lint:`` (with the colon) is directive syntax; prose
        # comments may freely mention rule ids ("... (repro-lint RPR001)").
        if re.search(r"repro-lint\s*:", text) is None:
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            errors.append((line, f"malformed repro-lint comment: {text.strip()!r}"))
            continue
        rules = tuple(rule.strip().upper()
                      for rule in match.group(1).split(",") if rule.strip())
        reason = (match.group(2) or "").strip() or None
        suppressions.append(_Suppression(line=line, rules=rules, reason=reason))
    return suppressions, errors


def _apply_suppressions(path: str, violations: list[Violation],
                        suppressions: list[_Suppression],
                        known_rules: set[str]) -> list[Violation]:
    kept: list[Violation] = []
    suppressed_by_line: dict[int, set[str]] = {}
    for suppression in suppressions:
        if suppression.reason is None:
            kept.append(Violation(
                path=path, line=suppression.line, col=0, rule=ENGINE_RULE_ID,
                message=("suppression is missing its reason; write "
                         "'# repro-lint: disable=<RULE> -- <why this is "
                         "safe>' (an unexplained waiver is not honored)")))
            continue
        unknown = [rule for rule in suppression.rules
                   if rule not in known_rules]
        if unknown:
            kept.append(Violation(
                path=path, line=suppression.line, col=0, rule=ENGINE_RULE_ID,
                message=(f"suppression names unknown rule(s) "
                         f"{', '.join(unknown)}; known rules are "
                         f"{', '.join(sorted(known_rules))}")))
        valid = {rule for rule in suppression.rules if rule in known_rules}
        if valid:
            suppressed_by_line.setdefault(
                suppression.line, set()).update(valid)
    for violation in violations:
        if violation.rule in suppressed_by_line.get(violation.line, ()):
            continue
        kept.append(violation)
    return kept


# ----------------------------------------------------------------------
# Per-file / per-tree entry points
# ----------------------------------------------------------------------
def check_source(path: str, source: str) -> list[Violation]:
    """Lint one file's source text; returns the surviving violations."""
    from tools.repro_lint.rules import RULES

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 1,
                          col=(exc.offset or 1) - 1, rule=ENGINE_RULE_ID,
                          message=f"syntax error: {exc.msg}")]
    context = ModuleContext(path, source, tree)
    violations: list[Violation] = []
    for rule in RULES:
        for line, col, message in rule.check(context):
            violations.append(Violation(path=path, line=line, col=col,
                                        rule=rule.id, message=message))
    suppressions, parse_errors = _parse_suppressions(source)
    for line, message in parse_errors:
        violations.append(Violation(path=path, line=line, col=0,
                                    rule=ENGINE_RULE_ID, message=message))
    known = {rule.id for rule in RULES}
    violations = _apply_suppressions(path, violations, suppressions, known)
    violations.sort(key=Violation.sort_key)
    return violations


def iter_python_files(paths: Sequence[str],
                      excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS
                      ) -> list[Path]:
    """Expand path arguments into the sorted list of ``.py`` files to lint.

    Directories are walked recursively, skipping ``excluded_dirs`` by name;
    files named explicitly are always included (that is how the test suite
    lints the intentionally-bad fixtures).
    """
    excluded = set(excluded_dirs)
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if excluded.intersection(candidate.parts):
                    continue
                files.append(candidate)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    unique: list[Path] = []
    seen: set[Path] = set()
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def run_paths(paths: Sequence[str],
              excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS
              ) -> LintResult:
    """Lint every python file under ``paths``; the CLI's workhorse."""
    violations: list[Violation] = []
    files = iter_python_files(paths, excluded_dirs)
    for path in files:
        source = path.read_text(encoding="utf-8")
        violations.extend(check_source(path.as_posix(), source))
    violations.sort(key=Violation.sort_key)
    return LintResult(violations=violations, files_checked=len(files))
