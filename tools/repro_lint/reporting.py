"""Text and JSON reporters for repro-lint results.

The JSON payload is a stable machine interface (CI annotations, the
perf/quality dashboards of ROADMAP item 4 consume it): its top-level keys
and per-violation keys are asserted by ``tests/tools/test_repro_lint.py``,
so extend it by *adding* keys, never by renaming or removing them --
``schema_version`` only bumps on a breaking change.
"""

from __future__ import annotations

import json
from typing import Any

from tools.repro_lint.engine import LintResult

__all__ = ["SCHEMA_VERSION", "render_json", "render_text", "to_json_payload"]

SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per finding."""
    lines = [
        f"{violation.path}:{violation.line}:{violation.col}: "
        f"{violation.rule} {violation.message}"
        for violation in result.violations
    ]
    if result.violations:
        counts = ", ".join(f"{rule} x{count}" for rule, count
                           in result.counts_by_rule().items())
        lines.append(f"repro-lint: {len(result.violations)} violation(s) "
                     f"in {result.files_checked} file(s) checked ({counts})")
    else:
        lines.append(f"repro-lint: clean "
                     f"({result.files_checked} file(s) checked)")
    if result.parse_failures:
        lines.append(f"repro-lint: {result.parse_failures} file(s) could "
                     f"not be parsed (exit 2)")
    return "\n".join(lines)


def to_json_payload(result: LintResult) -> dict[str, Any]:
    """The dict behind ``--format=json``; see the module docstring contract."""
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_checked": result.files_checked,
        "exit_code": result.exit_code,
        "flow": result.flow,
        "parse_failures": result.parse_failures,
        "suppression_counts": dict(sorted(result.waivers_by_path.items())),
        "suppression_counts_by_rule": dict(
            sorted(result.waivers_by_rule.items())),
        "counts_by_rule": result.counts_by_rule(),
        # Float32-readiness inventory from the numerics pass (empty dict
        # under --no-flow); see docs/static_analysis.md for the schema.
        "dtype_surface": result.dtype_surface,
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule,
                "message": violation.message,
            }
            for violation in result.violations
        ],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json_payload(result), indent=2, sort_keys=True)
