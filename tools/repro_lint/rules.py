"""The repro-lint rule set: one rule per bug class this repo has shipped.

Each rule carries the PR that fixed the original bug (``motivation``), the
canonical replacement pattern (``message``), and a fixture pair under
``tests/tools/fixtures/`` demonstrating it firing and staying quiet.  The
catalogue with prose context lives in ``docs/static_analysis.md``.

Rules are intentionally repo-specific and low-noise: they resolve import
aliases (so ``np.arange`` and ``numpy.arange`` both match) and they encode
the *contract*, not a style preference -- every finding here is a latent
re-occurrence of a bug that has already cost a debugging session.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from collections.abc import Callable, Iterator, Sequence

from tools.repro_lint.engine import ModuleContext

__all__ = ["RULES", "Rule"]

#: ``(line, col, message)`` triples produced by a rule.
Finding = tuple[int, int, str]


class Rule:
    """One static check: stable id, docs metadata, and a ``check`` callable."""

    def __init__(self, rule_id: str, name: str, summary: str, motivation: str,
                 check: Callable[[ModuleContext], Iterator[Finding]]) -> None:
        self.id = rule_id
        self.name = name
        self.summary = summary
        self.motivation = motivation
        self._check = check

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        return self._check(context)


def _location(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))


def _contains(node: ast.AST, predicate: Callable[[ast.AST], bool]) -> bool:
    return any(predicate(child) for child in ast.walk(node))


# ----------------------------------------------------------------------
# RPR001 -- float-step np.arange grids
# ----------------------------------------------------------------------
def _is_float_tainted(node: ast.AST) -> bool:
    """True if the expression involves float literals or true division.

    Either one makes ``np.arange`` count/endpoint behaviour depend on float
    rounding: ``arange(0, 180 + res / 2, res)`` famously dropped or
    duplicated the 180-degree seam point for resolutions like 0.3.
    Integer-argument aranges (``np.arange(n)``) are exact and allowed.
    """
    def taints(child: ast.AST) -> bool:
        if isinstance(child, ast.Constant) and isinstance(child.value, float):
            return True
        return isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div)
    return _contains(node, taints)


def _check_float_arange(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = context.resolve_call(node)
        if dotted != "numpy.arange":
            continue
        arguments: list[ast.AST] = list(node.args)
        arguments.extend(keyword.value for keyword in node.keywords
                         if keyword.arg != "dtype")
        has_step = len(node.args) >= 3 or any(
            keyword.arg in ("step", "stop") for keyword in node.keywords)
        if len(node.args) < 2 and not has_step:
            # ``np.arange(n)`` / ``np.arange(3.0)``: a single stop argument
            # yields 0..ceil(stop)-1 with no accumulated step -- exact.
            continue
        if any(_is_float_tainted(argument) for argument in arguments):
            line, col = _location(node)
            yield (line, col,
                   "np.arange with float-valued start/stop/step accumulates "
                   "rounding error in the grid (count and endpoint both "
                   "drift); build grids on their exact point count with "
                   "np.linspace (see repro.core.spectrum.default_angle_grid "
                   "and repro.core.cache.grid_axes)")


# ----------------------------------------------------------------------
# RPR002 -- np.linalg.inv
# ----------------------------------------------------------------------
def _check_matrix_inverse(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = context.resolve_call(node)
        if dotted is None:
            continue
        if dotted.endswith("linalg.inv") or dotted == "numpy.linalg.inv":
            line, col = _location(node)
            yield (line, col,
                   "explicit matrix inversion is worse conditioned and one "
                   "more GEMM than solving the system; use np.linalg.solve "
                   "(see repro.core.music.capon_spectrum)")


# ----------------------------------------------------------------------
# RPR003 (retired) -- LRU cache mutated outside its lock
#
# The per-file check matched the literal ``with self._lock:`` pattern on
# OrderedDict attributes in the same function and nothing else.  It is
# superseded by RPR009 (tools/repro_lint/flow/locks.py): guarded-by
# inference over *any* lock-owning class, checked inter-procedurally, so a
# guarded read from a different method -- invisible here -- is now caught.
# The id stays reserved and is not reused.
# ----------------------------------------------------------------------


# ----------------------------------------------------------------------
# RPR004 -- SharedMemory(create=True) without a finally: unlink()
# ----------------------------------------------------------------------
def _finally_unlinks(scope: ast.AST) -> bool:
    def is_unlink_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return False
        name = name.lower()
        return "unlink" in name or "release" in name

    for node in ast.walk(scope):
        if isinstance(node, ast.Try) and node.finalbody:
            for statement in node.finalbody:
                if _contains(statement, is_unlink_call):
                    return True
    return False


def _check_shared_memory_leak(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = context.resolve_call(node)
        if dotted is None or not dotted.endswith("SharedMemory"):
            continue
        creates = any(keyword.arg == "create"
                      and isinstance(keyword.value, ast.Constant)
                      and keyword.value.value is True
                      for keyword in node.keywords)
        if not creates:
            continue
        scope = context.enclosing_function(node) or context.tree
        if _finally_unlinks(scope):
            continue
        line, col = _location(node)
        yield (line, col,
               "SharedMemory(create=True) with no unlink() reachable in a "
               "finally in this function: the segment outlives every error "
               "path and leaks in /dev/shm; close and unlink in a finally "
               "(see repro.api._procpool._release_segment)")


# ----------------------------------------------------------------------
# RPR005 -- lambdas/closures submitted to executors
# ----------------------------------------------------------------------
def _chain_parts(node: ast.AST) -> list[str]:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    parts.reverse()
    return parts


def _local_callables(function: ast.AST | None) -> set[str]:
    """Names bound to nested defs or lambdas inside ``function``."""
    if function is None:
        return set()
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not function:
            names.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _check_executor_pickling(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr not in {"submit", "map"}:
            continue
        receiver = " ".join(_chain_parts(node.func.value)).lower()
        if attr == "map" and not ("executor" in receiver or "pool" in receiver):
            continue  # plain .map() on non-executors is unrelated
        if not node.args:
            continue
        task = node.args[0]
        problem: str | None = None
        if isinstance(task, ast.Lambda):
            problem = "a lambda"
        elif isinstance(task, ast.Name):
            enclosing = context.enclosing_function(node)
            if task.id in _local_callables(enclosing):
                problem = f"the locally-defined callable {task.id!r}"
        if problem is None:
            continue
        line, col = _location(node)
        yield (line, col,
               f"{problem} is submitted to an executor: spawn-based process "
               f"pools pickle the task, and lambdas/closures do not pickle "
               f"(the thread backend silently masks this until the backend "
               f"flips to 'process'); submit a module-level function with "
               f"explicit arguments (see repro.api._procpool._localize_shard)")


# ----------------------------------------------------------------------
# RPR006 -- bare/swallowed exception handlers
# ----------------------------------------------------------------------
def _is_broad_type(node: ast.AST | None) -> bool:
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(_is_broad_type(element) for element in node.elts)
    parts = _chain_parts(node)
    return bool(parts) and parts[-1] in {"Exception", "BaseException"}


def _swallows(body: Sequence[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) \
                and isinstance(statement.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


def _check_swallowed_exceptions(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        line, col = _location(node)
        if node.type is None:
            yield (line, col,
                   "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                   "hides worker-pool failures as hangs; catch the specific "
                   "exception (or 'except Exception' with handling)")
        elif _is_broad_type(node.type) and _swallows(node.body):
            yield (line, col,
                   "broad exception handler with a pass-only body swallows "
                   "worker failures silently (a crashed shard looks like an "
                   "empty result); narrow the exception type or handle it "
                   "(log / re-raise / chain with 'raise ... from exc')")


# ----------------------------------------------------------------------
# RPR007 -- NaN-unguarded reductions in eval/
# ----------------------------------------------------------------------
_NAN_SENSITIVE = frozenset({"percentile", "quantile", "median"})
_GUARD_NAMES = frozenset({"isnan", "isfinite", "nan_to_num"})


def _has_nan_guard(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        parts = _chain_parts(node.func)
        if not parts:
            continue
        if parts[-1] in _GUARD_NAMES:
            return True
        if "summarize_errors" in parts[-1]:
            return True
    return False


def _check_nan_unguarded_reductions(context: ModuleContext) -> Iterator[Finding]:
    if "eval" not in PurePosixPath(context.path).parts:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = context.resolve_call(node)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if "numpy" not in parts or parts[-1] not in _NAN_SENSITIVE:
            continue
        scope = context.enclosing_function(node) or context.tree
        if _has_nan_guard(scope):
            continue
        line, col = _location(node)
        yield (line, col,
               f"np.{parts[-1]} in eval code without a NaN guard in the "
               f"same function: every comparison against NaN is False, so "
               f"one poisoned sample silently corrupts every quantile; "
               f"validate with np.isfinite first or go through "
               f"repro.eval.metrics.summarize_errors")


# ----------------------------------------------------------------------
# RPR008 -- deprecated entry points in non-shim code
# ----------------------------------------------------------------------
def _issues_deprecation_warning(context: ModuleContext) -> bool:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = context.resolve_call(node)
        if dotted is None or not dotted.endswith("warnings.warn"):
            continue
        values = list(node.args) + [keyword.value for keyword in node.keywords]
        for value in values:
            parts = _chain_parts(value)
            if parts and parts[-1] == "DeprecationWarning":
                return True
    return False


def _check_deprecated_entry_points(context: ModuleContext) -> Iterator[Finding]:
    # Files that themselves raise DeprecationWarning are the shims; the rule
    # exists to keep *new* code off the deprecated surface, not to flag the
    # shim implementations.
    if _issues_deprecation_warning(context):
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.quickstart" \
                        or alias.name.startswith("repro.quickstart."):
                    line, col = _location(node)
                    yield (line, col,
                           "repro.quickstart is a deprecated shim; build an "
                           "ArrayTrackService from ArrayTrackConfig instead "
                           "(see docs/api.md)")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            flagged = module == "repro.quickstart" \
                or module.startswith("repro.quickstart.")
            if module == "repro":
                flagged = flagged or any(alias.name == "quickstart"
                                         for alias in node.names)
            if flagged:
                line, col = _location(node)
                yield (line, col,
                       "repro.quickstart is a deprecated shim; build an "
                       "ArrayTrackService from ArrayTrackConfig instead "
                       "(see docs/api.md)")
        elif isinstance(node, ast.Call):
            parts = _chain_parts(node.func)
            if parts and parts[-1] == "localize_spectra":
                line, col = _location(node)
                yield (line, col,
                       "ArrayTrackServer.localize_spectra() is a deprecated "
                       "shim (it warns at runtime); use "
                       "ArrayTrackService.localize()/localize_many() "
                       "(see docs/api.md)")


# ----------------------------------------------------------------------
# RPR018 -- retry loops without bounded attempts and backoff
# ----------------------------------------------------------------------
_RETRY_BROAD_NAMES = frozenset({"Exception", "BaseException", "OSError"})
_COUNTER_HINTS = ("attempt", "retr", "tries")
_BACKOFF_HINTS = ("sleep", "backoff", "delay")


def _catches_retryable(node: ast.AST | None) -> bool:
    """True for handlers broad enough to absorb infrastructure failures."""
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(_catches_retryable(element) for element in node.elts)
    parts = _chain_parts(node)
    if not parts:
        return False
    return parts[-1] in _RETRY_BROAD_NAMES or parts[-1].endswith("Error")


def _always_exits(body: Sequence[ast.stmt]) -> bool:
    """True when every path through ``body`` leaves the loop iteration
    (raise/return/break) -- such a handler cannot drive a retry."""
    for statement in body:
        if isinstance(statement, (ast.Raise, ast.Return, ast.Break)):
            return True
        if isinstance(statement, ast.If) and statement.orelse \
                and _always_exits(statement.body) \
                and _always_exits(statement.orelse):
            return True
    return False


def _retry_handlers(loop: ast.While) -> list[ast.ExceptHandler]:
    """Handlers inside the loop that catch broadly and loop again."""
    handlers = []
    for node in ast.walk(loop):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if _catches_retryable(handler.type) \
                    and not _always_exits(handler.body):
                handlers.append(handler)
    return handlers


def _names_mention(node: ast.AST, hints: Sequence[str]) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            text = child.id.lower()
        elif isinstance(child, ast.Attribute):
            text = child.attr.lower()
        else:
            continue
        if any(hint in text for hint in hints):
            return True
    return False


def _has_attempt_bound(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Compare) \
                and _names_mention(node, _COUNTER_HINTS):
            return True
    return False


def _has_backoff(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if not isinstance(node, ast.Call):
            continue
        parts = _chain_parts(node.func)
        if parts and any(hint in parts[-1].lower()
                         for hint in _BACKOFF_HINTS):
            return True
    return False


def _check_unbounded_retry_loop(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.While):
            continue
        if not _retry_handlers(node):
            continue
        missing = []
        if not _has_attempt_bound(node):
            missing.append("a bounded attempt count (compare against "
                           "max_retries/attempts)")
        if not _has_backoff(node):
            missing.append("a backoff sleep between attempts")
        if missing:
            line, col = _location(node)
            yield (line, col,
                   "retry loop catches a broad exception and loops again "
                   f"without {' or '.join(missing)}; a persistent failure "
                   "must exhaust a bounded budget with exponential backoff "
                   "(see ResilienceConfig.max_retries/backoff_base_s), not "
                   "spin or hammer forever")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
RULES: list[Rule] = [
    Rule("RPR001", "float-arange-grid",
         "float-step np.arange used where an exact-count grid is required",
         "PRs 4-5: float accumulation dropped/duplicated the 180-degree "
         "seam point of the angle grid for resolutions like 0.3",
         _check_float_arange),
    Rule("RPR002", "explicit-matrix-inverse",
         "np.linalg.inv where np.linalg.solve is the contract",
         "PR 5: the Capon quadratic form via inv() was worse conditioned "
         "and one GEMM slower than solve()",
         _check_matrix_inverse),
    Rule("RPR004", "shared-memory-leak",
         "SharedMemory(create=True) without unlink() in a finally "
         "(per-file heuristic; RPR012's cross-function proof replaces "
         "it when --flow is on)",
         "PR 6: a segment not unlinked on the error path outlives the "
         "process and leaks /dev/shm until reboot",
         _check_shared_memory_leak),
    Rule("RPR005", "executor-pickling-hazard",
         "lambda/closure/local function submitted to an executor",
         "PR 6: spawn-based process pools pickle the task; closures that "
         "work on the thread backend crash the process backend",
         _check_executor_pickling),
    Rule("RPR006", "swallowed-exception",
         "bare except, or broad except with a pass-only body",
         "PR 6: swallowed worker exceptions turn shard crashes into "
         "silent wrong answers or hangs; failures must surface chained",
         _check_swallowed_exceptions),
    Rule("RPR007", "nan-unguarded-reduction",
         "np.percentile/quantile/median in eval/ without a NaN guard",
         "PR 4: the old 'errors < 0' guard admitted NaN and silently "
         "poisoned every quantile of the accuracy evaluation",
         _check_nan_unguarded_reductions),
    Rule("RPR008", "deprecated-entry-point",
         "deprecated quickstart/localize_spectra surface used in new code",
         "PR 2: the facade replaced these; new call sites re-grow the "
         "legacy surface the deprecation is trying to retire",
         _check_deprecated_entry_points),
    Rule("RPR018", "unbounded-retry-loop",
         "retry loop without a bounded attempt count and backoff",
         "PR 7: pool supervision retries broken/stalled shards; a retry "
         "loop without a budget and backoff turns one persistent "
         "infrastructure failure into a spin or a thundering herd",
         _check_unbounded_retry_loop),
]
