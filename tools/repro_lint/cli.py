"""Command-line entry point: ``python -m tools.repro_lint [paths...]``.

Exit codes: 0 clean, 1 violations found (or suppression budget exceeded),
2 usage/IO/parse error (the same convention ruff uses, so CI treats the
two linters identically).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from collections.abc import Sequence

from tools.repro_lint.engine import LintResult, run_paths
from tools.repro_lint.flow import FLOW_RULES
from tools.repro_lint.reporting import render_json, render_text
from tools.repro_lint.rules import RULES

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=("repo-specific static analysis: concurrency, "
                     "determinism and numeric contracts the test suite "
                     "cannot see (see docs/static_analysis.md)"))
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is schema-stable; default: text)")
    parser.add_argument(
        "--flow", action=argparse.BooleanOptionalAction, default=True,
        help=("run the whole-program flow pass (RPR009-017) over the "
              "scanned set; --no-flow restores the per-file rules alone "
              "(RPR004 included)"))
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=("worker processes for the per-file pass "
              "(0 = one per CPU; default: 1)"))
    parser.add_argument(
        "--suppression-budget", metavar="FILE",
        help=("JSON file mapping path prefixes to the allowed number of "
              "'# repro-lint: disable=' waivers beneath them; exceeding a "
              "budget fails the run (update the file in the same PR to "
              "raise it deliberately)"))
    parser.add_argument(
        "--changed-only", action="store_true",
        help=("lint only files that differ from "
              "'git merge-base HEAD origin/main' (falls back to 'main', "
              "then HEAD); the flow pass still analyzes the whole scanned "
              "set so interprocedural findings stay sound, but only "
              "changed files are reported -- the fast pre-push mode"))
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (per-file and flow) and exit")
    return parser


def _git_lines(*args: str) -> list[str]:
    completed = subprocess.run(
        ["git", *args], capture_output=True, text=True, check=True)
    return [line for line in completed.stdout.splitlines() if line.strip()]


def _changed_files() -> set[str]:
    """Paths changed vs the merge base with the main branch (plus any
    uncommitted changes), for ``--changed-only``."""
    base = "HEAD"
    for upstream in ("origin/main", "main"):
        try:
            base = _git_lines("merge-base", "HEAD", upstream)[0]
            break
        except (subprocess.CalledProcessError, IndexError, OSError):
            continue
    changed = _git_lines("diff", "--name-only", base)
    changed += _git_lines("ls-files", "--others", "--exclude-standard")
    return set(changed)


def _list_rules() -> str:
    lines: list[str] = []
    for rule in [*RULES, *FLOW_RULES]:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    motivation: {rule.motivation}")
    return "\n".join(lines)


def _budget_overruns(result: LintResult, budget_path: str) -> list[str]:
    """Human-readable overrun messages (empty if within budget).

    Keys are path prefixes (``"src"``) or rule-id prefixes (``"RPR013"``,
    ``"RPR01"``); a rule key caps the honored waivers naming any matching
    rule, anywhere in the tree.
    """
    with open(budget_path, encoding="utf-8") as handle:
        budget = json.load(handle)
    overruns: list[str] = []
    for prefix in sorted(budget):
        allowed = int(budget[prefix])
        if prefix.startswith("RPR"):
            actual = sum(
                count for rule, count in result.waivers_by_rule.items()
                if rule.startswith(prefix))
            subject = f"for rule prefix {prefix!r}"
        else:
            normalized = prefix.rstrip("/")
            actual = sum(
                count for path, count in result.waivers_by_path.items()
                if path == normalized or path.startswith(normalized + "/"))
            subject = f"under {normalized!r}"
        if actual > allowed:
            overruns.append(
                f"suppression budget exceeded {subject}: "
                f"{actual} waiver(s), budget allows {allowed}; remove the "
                f"new '# repro-lint: disable=' comments or update "
                f"{budget_path} in the same PR with the rationale")
    return overruns


def main(argv: Sequence[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.list_rules:
        print(_list_rules())
        return 0
    if arguments.jobs < 0:
        print("repro-lint: error: --jobs must be >= 0", file=sys.stderr)
        return 2
    restrict = None
    if arguments.changed_only:
        try:
            restrict = _changed_files()
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"repro-lint: error: --changed-only needs a git "
                  f"checkout: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_paths(arguments.paths, flow=arguments.flow,
                           jobs=arguments.jobs, restrict=restrict)
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    exit_code = result.exit_code
    if arguments.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    if arguments.suppression_budget:
        try:
            overruns = _budget_overruns(result, arguments.suppression_budget)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: error: cannot read suppression budget: "
                  f"{exc}", file=sys.stderr)
            return 2
        for message in overruns:
            print(f"repro-lint: {message}", file=sys.stderr)
        if overruns:
            exit_code = max(exit_code, 1)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
