"""Command-line entry point: ``python -m tools.repro_lint [paths...]``.

Exit codes: 0 clean, 1 violations found (or suppression budget exceeded),
2 usage/IO/parse error (the same convention ruff uses, so CI treats the
two linters identically).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from tools.repro_lint.engine import LintResult, run_paths
from tools.repro_lint.flow import FLOW_RULES
from tools.repro_lint.reporting import render_json, render_text
from tools.repro_lint.rules import RULES

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=("repo-specific static analysis: concurrency, "
                     "determinism and numeric contracts the test suite "
                     "cannot see (see docs/static_analysis.md)"))
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is schema-stable; default: text)")
    parser.add_argument(
        "--flow", action=argparse.BooleanOptionalAction, default=True,
        help=("run the whole-program flow pass (RPR009-012) over the "
              "scanned set; --no-flow restores the per-file rules alone "
              "(RPR004 included)"))
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=("worker processes for the per-file pass "
              "(0 = one per CPU; default: 1)"))
    parser.add_argument(
        "--suppression-budget", metavar="FILE",
        help=("JSON file mapping path prefixes to the allowed number of "
              "'# repro-lint: disable=' waivers beneath them; exceeding a "
              "budget fails the run (update the file in the same PR to "
              "raise it deliberately)"))
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (per-file and flow) and exit")
    return parser


def _list_rules() -> str:
    lines: list[str] = []
    for rule in [*RULES, *FLOW_RULES]:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    motivation: {rule.motivation}")
    return "\n".join(lines)


def _budget_overruns(result: LintResult, budget_path: str) -> list[str]:
    """Human-readable overrun messages (empty if within budget)."""
    with open(budget_path, encoding="utf-8") as handle:
        budget = json.load(handle)
    overruns: list[str] = []
    for prefix in sorted(budget):
        allowed = int(budget[prefix])
        normalized = prefix.rstrip("/")
        actual = sum(
            count for path, count in result.waivers_by_path.items()
            if path == normalized or path.startswith(normalized + "/"))
        if actual > allowed:
            overruns.append(
                f"suppression budget exceeded under {normalized!r}: "
                f"{actual} waiver(s), budget allows {allowed}; remove the "
                f"new '# repro-lint: disable=' comments or update "
                f"{budget_path} in the same PR with the rationale")
    return overruns


def main(argv: Sequence[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.list_rules:
        print(_list_rules())
        return 0
    if arguments.jobs < 0:
        print("repro-lint: error: --jobs must be >= 0", file=sys.stderr)
        return 2
    try:
        result = run_paths(arguments.paths, flow=arguments.flow,
                           jobs=arguments.jobs)
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    exit_code = result.exit_code
    if arguments.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    if arguments.suppression_budget:
        try:
            overruns = _budget_overruns(result, arguments.suppression_budget)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: error: cannot read suppression budget: "
                  f"{exc}", file=sys.stderr)
            return 2
        for message in overruns:
            print(f"repro-lint: {message}", file=sys.stderr)
        if overruns:
            exit_code = max(exit_code, 1)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
