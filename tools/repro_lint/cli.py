"""Command-line entry point: ``python -m tools.repro_lint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage/IO error (the same
convention ruff uses, so CI treats the two linters identically).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from tools.repro_lint.engine import run_paths
from tools.repro_lint.reporting import render_json, render_text
from tools.repro_lint.rules import RULES

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=("repo-specific static analysis: concurrency, "
                     "determinism and numeric contracts the test suite "
                     "cannot see (see docs/static_analysis.md)"))
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is schema-stable; default: text)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> str:
    lines: list[str] = []
    for rule in RULES:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    motivation: {rule.motivation}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.list_rules:
        print(_list_rules())
        return 0
    try:
        result = run_paths(arguments.paths)
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if arguments.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
