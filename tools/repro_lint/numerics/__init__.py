"""The numerics flow pass: dtype/shape contracts as lint rules.

Layout mirrors ``tools/repro_lint/flow``:

``domain``
    The abstract dtype lattice, NumPy promotion, and the
    ``# dtype-pinned:`` annotation syntax.
``transfer``
    Transfer functions over the NumPy surface the repo uses (constructor
    pins, per-function dtype/rank environments, expression evaluation).
``rules``
    The RPR013-017 checks, driven by the flow pass's symbol table and
    call graph.
``surface``
    The add-only ``dtype_surface`` JSON section: per public
    ``repro.api``/``repro.core`` function, proven-polymorphic /
    pinned-annotated / unproven.
"""

from tools.repro_lint.numerics.domain import DTYPE_PINNED_RE
from tools.repro_lint.numerics.rules import (check_dtype_pinning,
                                             check_hot_loop_scalarization,
                                             check_mixed_precision,
                                             check_nondeterministic_rng,
                                             check_partial_init_and_axis)
from tools.repro_lint.numerics.surface import build_dtype_surface

__all__ = [
    "DTYPE_PINNED_RE",
    "build_dtype_surface",
    "check_dtype_pinning",
    "check_hot_loop_scalarization",
    "check_mixed_precision",
    "check_nondeterministic_rng",
    "check_partial_init_and_axis",
]
