"""Transfer functions over the NumPy surface this repo actually uses.

Three per-function analyses feed the RPR013-017 rules and the
``dtype_surface`` report:

* :func:`collect_pins` -- every constructor call that hard-codes a float or
  complex dtype (``np.asarray(x, dtype=float)``,
  ``np.zeros(..., dtype=np.complex128)``), together with whether the site
  or its enclosing ``def`` carries a ``# dtype-pinned:`` annotation;
* :func:`infer_env` -- a one-pass, source-order abstract interpretation of
  a function body binding local names to abstract dtypes and (where a
  literal shape tuple makes it certain) array ranks;
* :func:`infer_expr_dtype` / :func:`infer_expr_rank` -- the expression
  evaluators behind it, shared with the mixed-precision and reduction-axis
  rules.

Everything here under-approximates: an expression that cannot be resolved
evaluates to *unknown*, and unknown never fires a rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from tools.repro_lint.engine import ModuleContext
from tools.repro_lint.numerics.domain import (DTYPE_PINNED_RE, is_pinnable,
                                              promote, resolve_dtype_expr)

if TYPE_CHECKING:  # flow imports numerics; keep the cycle annotation-only
    from tools.repro_lint.flow.symbols import FunctionModel, ModuleModel

__all__ = [
    "DTYPE_PRESERVING_HELPERS",
    "LocalEnv",
    "Pin",
    "collect_pins",
    "def_line_annotation",
    "infer_env",
    "infer_expr_dtype",
    "infer_expr_rank",
    "pin_of_call",
]

#: numpy constructor -> positional index of its ``dtype`` argument.
_DTYPE_POSITION = {
    "asarray": 1, "array": 1, "ascontiguousarray": 1, "asfortranarray": 1,
    "zeros": 1, "ones": 1, "empty": 1, "fromiter": 1, "full": 2,
    "zeros_like": 1, "ones_like": 1, "empty_like": 1, "full_like": 2,
    # dtype is keyword-only in spirit for these; position None = kw only.
    "arange": None, "linspace": None, "eye": None, "identity": None,
    "frombuffer": None, "fromstring": None, "geomspace": None,
    "logspace": None, "ndarray": None,
}

#: Constructors whose result, absent an explicit dtype, is float64.
_FLOAT64_DEFAULT = frozenset({"zeros", "ones", "empty", "linspace", "eye",
                              "identity", "geomspace", "logspace", "rand",
                              "randn", "random"})

#: Constructors that preserve their first argument's dtype when no dtype
#: is given.
_PRESERVING = frozenset({"asarray", "array", "ascontiguousarray",
                         "asfortranarray", "atleast_1d", "atleast_2d",
                         "copy", "abs", "conj", "conjugate", "sort",
                         "ravel", "reshape", "transpose", "squeeze",
                         "zeros_like", "ones_like", "empty_like"})

#: Program helpers the analyzer models as dtype-preserving intrinsics: the
#: audited promotion boundary of the repo (``repro/dtypes.py``).  Pins
#: inside them are by contract and excluded from RPR013 / the surface;
#: calls to them behave like ``np.asarray(x)`` (input dtype preserved).
DTYPE_PRESERVING_HELPERS = ("as_float_array", "as_complex_array")


@dataclass(frozen=True)
class Pin:
    """One hard-coded float/complex dtype at a constructor call site."""

    node: ast.Call
    dtype: str
    #: Honored ``# dtype-pinned: <dtype> -- reason`` on the call line or
    #: the enclosing ``def`` line.
    annotated: bool
    #: A ``# dtype-pinned:`` comment exists but its reason is missing.
    missing_reason: bool


@dataclass
class LocalEnv:
    """Abstract state of one function's locals."""

    dtypes: dict[str, str] = field(default_factory=dict)
    ranks: dict[str, int] = field(default_factory=dict)


def _numpy_tail(dotted: str | None) -> str | None:
    """``"zeros"`` for ``numpy.zeros`` / ``numpy.ma.zeros``; else None."""
    if dotted is None or not dotted.startswith("numpy."):
        return None
    return dotted.rsplit(".", 1)[-1]


def _call_argument(call: ast.Call, name: str, position: int | None
                   ) -> ast.AST | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    if position is not None and len(call.args) > position:
        return call.args[position]
    return None


def pin_of_call(call: ast.Call, context: ModuleContext
                ) -> tuple[str, ast.AST] | None:
    """``(dtype, dtype_node)`` when ``call`` pins a float/complex dtype."""
    tail = _numpy_tail(context.resolve_call(call))
    if tail not in _DTYPE_POSITION:
        return None
    dtype_node = _call_argument(call, "dtype", _DTYPE_POSITION[tail])
    if dtype_node is None:
        return None
    dtype = resolve_dtype_expr(dtype_node, context)
    if not is_pinnable(dtype):
        return None
    assert dtype is not None
    return dtype, dtype_node


def _annotation_state(comments: dict[int, str],
                      lines: tuple[int, ...]) -> tuple[bool, bool]:
    """``(annotated, missing_reason)`` over the candidate comment lines."""
    missing = False
    for line in lines:
        match = DTYPE_PINNED_RE.search(comments.get(line, ""))
        if match is None:
            continue
        if match.group(2):
            return True, False
        missing = True
    return False, missing


def def_line_annotation(function: FunctionModel,
                        module: ModuleModel) -> bool:
    """True when the ``def`` line carries a reasoned ``# dtype-pinned:``."""
    annotated, _ = _annotation_state(module.comments,
                                     (function.node.lineno,))
    return annotated


def collect_pins(module: ModuleModel) -> dict[str, list[Pin]]:
    """Pin sites of every function in ``module``, keyed by qualname.

    A pin is *annotated* when its own line, the line directly above it
    (the standalone-comment style), or the enclosing ``def`` line carries
    a reasoned ``# dtype-pinned:`` comment.  Module-level
    constructor calls (constants) have no enclosing function and are not
    collected -- a documented approximation: constants are built once at
    import, not per data batch.
    """
    pins: dict[str, list[Pin]] = {}
    context = module.context
    for function in module.all_functions.values():
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            if module.owner.get(node) is not function:
                continue
            pinned = pin_of_call(node, context)
            if pinned is None:
                continue
            dtype, _ = pinned
            annotated, missing = _annotation_state(
                module.comments,
                (node.lineno, node.lineno - 1, function.node.lineno))
            pins.setdefault(function.qualname, []).append(
                Pin(node=node, dtype=dtype, annotated=annotated,
                    missing_reason=missing and not annotated))
    return pins


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
def infer_expr_dtype(expr: ast.AST, context: ModuleContext,
                     env: LocalEnv) -> str | None:
    """Abstract dtype of an expression (None = unknown)."""
    if isinstance(expr, ast.Name):
        return env.dtypes.get(expr.id)
    if isinstance(expr, ast.Call):
        return _infer_call_dtype(expr, context, env)
    if isinstance(expr, ast.BinOp):
        left = infer_expr_dtype(expr.left, context, env)
        right = infer_expr_dtype(expr.right, context, env)
        if left is not None and right is not None:
            return promote(left, right)
        # NEP 50: a Python scalar literal is weak -- it adopts the array
        # operand's precision instead of upcasting it.
        if isinstance(expr.left, ast.Constant):
            return right
        if isinstance(expr.right, ast.Constant):
            return left
        return None
    if isinstance(expr, ast.UnaryOp):
        return infer_expr_dtype(expr.operand, context, env)
    if isinstance(expr, ast.Subscript):
        return infer_expr_dtype(expr.value, context, env)
    return None


def _infer_call_dtype(call: ast.Call, context: ModuleContext,
                      env: LocalEnv) -> str | None:
    dotted = context.resolve_call(call)
    if dotted is not None and dotted.rsplit(".", 1)[-1] \
            in DTYPE_PRESERVING_HELPERS:
        if call.args:
            return infer_expr_dtype(call.args[0], context, env)
        return None
    tail = _numpy_tail(dotted)
    if tail is None:
        # numpy scalar constructors double as dtype names (np.float32(x)).
        if dotted is not None:
            scalar = resolve_dtype_expr(call.func, context)
            if scalar is not None:
                return scalar
        return None
    dtype_node = _call_argument(call, "dtype",
                                _DTYPE_POSITION.get(tail))
    if dtype_node is not None:
        return resolve_dtype_expr(dtype_node, context)
    if tail in _PRESERVING and call.args:
        return infer_expr_dtype(call.args[0], context, env)
    if tail in _FLOAT64_DEFAULT:
        return "float64"
    if tail in ("dot", "matmul", "einsum"):
        operands = [argument for argument in call.args
                    if not (isinstance(argument, ast.Constant)
                            and isinstance(argument.value, str))]
        dtype: str | None = None
        for argument in operands:
            inferred = infer_expr_dtype(argument, context, env)
            if inferred is None:
                return None
            dtype = inferred if dtype is None else promote(dtype, inferred)
        return dtype
    return None


def infer_expr_rank(expr: ast.AST, context: ModuleContext,
                    env: LocalEnv) -> int | None:
    """Array rank of an expression, only when provable (literal shapes)."""
    if isinstance(expr, ast.Name):
        return env.ranks.get(expr.id)
    if not isinstance(expr, ast.Call):
        return None
    tail = _numpy_tail(context.resolve_call(expr))
    if tail in ("zeros", "ones", "empty", "full") and expr.args:
        shape = expr.args[0]
        if isinstance(shape, ast.Tuple):
            return len(shape.elts)
        if isinstance(shape, (ast.Constant, ast.Name, ast.BinOp)):
            return 1
    return None


def infer_env(function: FunctionModel, module: ModuleModel) -> LocalEnv:
    """Source-order abstract interpretation of one function's bindings.

    Only single-target ``name = expr`` assignments bind state; a rebinding
    with an unknown dtype/rank *clears* the previous binding rather than
    keeping a stale one.
    """
    env = LocalEnv()
    context = module.context
    assignments: list[tuple[str, ast.AST]] = []
    for node in ast.walk(function.node):
        if module.owner.get(node) is not function:
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            assignments.append((node.targets[0].id, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            assignments.append((node.target.id, node.value))
    assignments.sort(key=lambda entry: (entry[1].lineno,
                                        entry[1].col_offset))
    for name, value in assignments:
        dtype = infer_expr_dtype(value, context, env)
        if dtype is not None:
            env.dtypes[name] = dtype
        else:
            env.dtypes.pop(name, None)
        rank = infer_expr_rank(value, context, env)
        if rank is not None:
            env.ranks[name] = rank
        else:
            env.ranks.pop(name, None)
    return env
