"""The abstract dtype domain of the numerics pass.

Dtypes are abstracted to a small lattice of named elements (``"bool"``,
``"int"``, ``"float32"``, ``"float64"``, ``"complex64"``, ``"complex128"``,
plus ``None`` for *unknown*).  Promotion follows NumPy's value-independent
rules for array/array operations: category (bool < int < float < complex)
and width both take the maximum.  Python scalar literals are deliberately
*not* modeled as ``float64`` -- under NEP 50 a Python float is a weak
scalar that adopts the array's precision, so ``f32 * 2.0`` stays float32
and must not be reported as a mixed-precision meeting point.

The module also owns the ``# dtype-pinned:`` annotation syntax shared by
RPR013 and the ``dtype_surface`` report::

    samples = np.asarray(samples, dtype=np.complex128)  # dtype-pinned: complex128 -- synthesized waveforms are full-precision by contract

As with lint suppressions, the reason after ``--`` is mandatory: an
annotation without one does not count as an audit.
"""

from __future__ import annotations

import ast
import re

from tools.repro_lint.engine import ModuleContext

__all__ = [
    "DTYPE_PINNED_RE",
    "FLOAT_DTYPES",
    "NARROW_DTYPES",
    "WIDE_DTYPES",
    "is_complex",
    "is_float",
    "is_pinnable",
    "promote",
    "resolve_dtype_expr",
]

#: ``# dtype-pinned: <dtype> -- reason`` (reason optional in the regex so a
#: missing one can be reported specifically rather than silently ignored).
DTYPE_PINNED_RE = re.compile(
    r"#\s*dtype-pinned:\s*([A-Za-z0-9_]+)\s*(?:--\s*(.*\S))?")

FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})
COMPLEX_DTYPES = frozenset({"complex64", "complex128"})

#: The reduced-precision side of a mixed-precision meeting point (RPR014).
NARROW_DTYPES = frozenset({"float16", "float32", "complex64"})
#: The full-precision side; meeting NARROW silently upcasts the result.
WIDE_DTYPES = frozenset({"float64", "complex128"})

#: Dotted-name suffix (after alias resolution) -> abstract dtype.  Builtins
#: ``float``/``complex`` are how the historical pins in this repo were
#: written (``np.asarray(x, dtype=float)``).
_DTYPE_NAMES = {
    "float": "float64",
    "numpy.float64": "float64",
    "numpy.double": "float64",
    "numpy.float_": "float64",
    "numpy.float32": "float32",
    "numpy.single": "float32",
    "numpy.float16": "float16",
    "numpy.half": "float16",
    "complex": "complex128",
    "numpy.complex128": "complex128",
    "numpy.cdouble": "complex128",
    "numpy.complex_": "complex128",
    "numpy.complex64": "complex64",
    "numpy.csingle": "complex64",
    "int": "int",
    "bool": "bool",
    "numpy.bool_": "bool",
}
_INT_PREFIXES = ("numpy.int", "numpy.uint")

_CATEGORY = {"bool": 0, "int": 1, "float16": 2, "float32": 2, "float64": 2,
             "complex64": 3, "complex128": 3}
_WIDTH = {"bool": 8, "int": 64, "float16": 16, "float32": 32, "float64": 64,
          "complex64": 32, "complex128": 64}


def is_float(dtype: str | None) -> bool:
    return dtype in FLOAT_DTYPES


def is_complex(dtype: str | None) -> bool:
    return dtype in COMPLEX_DTYPES


def is_pinnable(dtype: str | None) -> bool:
    """True for dtypes whose explicit forcing RPR013 audits.

    Integer and boolean buffers (index maps, masks, source counts) are not
    data-path precision decisions: pinning them is fine and unreported.
    """
    return dtype in FLOAT_DTYPES or dtype in COMPLEX_DTYPES


def promote(left: str | None, right: str | None) -> str | None:
    """NumPy array/array promotion over the abstract lattice.

    Unknown absorbs: if either side is unknown the result is unknown (the
    rules never guess).
    """
    if left is None or right is None:
        return None
    category = max(_CATEGORY[left], _CATEGORY[right])
    width = max(_WIDTH[left], _WIDTH[right])
    if category <= 1:
        return "int" if category == 1 else "bool"
    if category == 2:
        return {16: "float16", 32: "float32", 64: "float64"}[max(width, 16)]
    return "complex64" if width <= 32 else "complex128"


def resolve_dtype_expr(node: ast.AST | None,
                       context: ModuleContext) -> str | None:
    """Abstract dtype of a ``dtype=...`` argument expression.

    Returns None for *dynamic* dtype expressions (``dtype=x.dtype``,
    ``dtype=np.result_type(a, b)``, a variable): those preserve or derive
    the dtype from data and are exactly what the pinning rule wants to see
    instead of a hard-coded name.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.lower()
        resolved = _DTYPE_NAMES.get("numpy." + name, _DTYPE_NAMES.get(name))
        if resolved is not None:
            return resolved
        if name.startswith(("int", "uint")):
            return "int"
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = context.dotted_name(node)
        if dotted is None:
            return None
        resolved = _DTYPE_NAMES.get(dotted)
        if resolved is not None:
            return resolved
        if dotted.startswith(_INT_PREFIXES):
            return "int"
    return None
