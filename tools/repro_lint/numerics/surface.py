"""The ``dtype_surface`` report: the float32-readiness inventory.

For every public ``repro.api`` / ``repro.core`` function the report says
whether the float32 fast path (ROADMAP item 2) can flow a narrow dtype
through it today:

``proven-polymorphic``
    No hard-coded float/complex dtype is reachable from the function
    (through the approximate call graph): input precision is preserved.
``pinned-annotated``
    Every reachable pin carries a reasoned ``# dtype-pinned:`` annotation:
    the precision is forced *on purpose* and the reason is on the line.
``unproven``
    At least one reachable pin has no annotation.  RPR013 reports each such
    pin, so a clean lint run implies zero ``unproven`` entries.

The section is add-only in the JSON report (new key, existing keys
untouched) and is uploaded by CI with the rest of the payload, so the PR
implementing the float32 mode starts from a machine-checked worklist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from tools.repro_lint.numerics.rules import (_DTYPE_BOUNDARY_MODULE,
                                             public_functions)
from tools.repro_lint.numerics.transfer import Pin, collect_pins

if TYPE_CHECKING:  # flow imports numerics; keep the cycle annotation-only
    from tools.repro_lint.flow.callgraph import CallGraph
    from tools.repro_lint.flow.symbols import Program

__all__ = ["SURFACE_PREFIXES", "build_dtype_surface"]

#: Modules whose public functions the report inventories.
SURFACE_PREFIXES = ("repro.api", "repro.core")


def _pin_index(program: Program) -> dict[str, list[tuple[str, Pin]]]:
    """``qualname -> [(path, pin), ...]`` over the whole program, minus the
    audited promotion boundary (``repro.dtypes``)."""
    index: dict[str, list[tuple[str, Pin]]] = {}
    for module in program.modules_by_path.values():
        if module.name == _DTYPE_BOUNDARY_MODULE:
            continue
        for qualname, pins in collect_pins(module).items():
            index.setdefault(qualname, []).extend(
                (module.path, pin) for pin in pins)
    return index


def build_dtype_surface(program: Program, graph: CallGraph
                        ) -> dict[str, object]:
    """Classify every public ``repro.api``/``repro.core`` function."""
    pins = _pin_index(program)
    functions: dict[str, dict[str, object]] = {}
    counts = {"proven-polymorphic": 0, "pinned-annotated": 0, "unproven": 0}
    for function in public_functions(program, SURFACE_PREFIXES):
        frontier = [function.qualname]
        reachable = {function.qualname}
        while frontier:
            current = frontier.pop()
            for site in graph.calls_by_caller.get(current, ()):
                if site.callee not in reachable:
                    reachable.add(site.callee)
                    frontier.append(site.callee)
        annotated: list[dict[str, object]] = []
        unannotated: list[dict[str, object]] = []
        for qualname in sorted(reachable):
            for path, pin in pins.get(qualname, ()):
                entry = {"path": path, "line": pin.node.lineno,
                         "function": qualname, "dtype": pin.dtype}
                (annotated if pin.annotated else unannotated).append(entry)
        if unannotated:
            status = "unproven"
        elif annotated:
            status = "pinned-annotated"
        else:
            status = "proven-polymorphic"
        counts[status] += 1
        record: dict[str, object] = {"module": function.module,
                                     "status": status}
        if annotated:
            record["pinned"] = annotated
        if unannotated:
            record["unproven_pins"] = unannotated
        functions[function.qualname] = record
    return {"counts": counts,
            "functions": dict(sorted(functions.items()))}
