"""The RPR013-017 numerics rules over the whole-program model.

Each check shares the flow pass's symbol table and call graph (pass 1 of
``tools/repro_lint/flow``) and the transfer functions of
``tools.repro_lint.numerics.transfer``.  The rules encode the numerical
bug classes this repo has shipped -- float-step grid seams (PR 4/5),
NaN-poisoned metrics (PR 4) -- plus the contracts the ROADMAP's float32
fast path needs proven *before* it can land: no silent float64 pinning on
the data path (RPR013) and no silent mixed-precision upcasts (RPR014).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from collections.abc import Iterator
from typing import TYPE_CHECKING

from tools.repro_lint.engine import ModuleContext, Violation
from tools.repro_lint.numerics.domain import NARROW_DTYPES, WIDE_DTYPES

if TYPE_CHECKING:  # flow imports numerics; keep the cycle annotation-only
    from tools.repro_lint.flow.callgraph import CallGraph
    from tools.repro_lint.flow.locks import FunctionSummary
    from tools.repro_lint.flow.symbols import (FunctionModel, ModuleModel,
                                               Program)
from tools.repro_lint.numerics.transfer import (collect_pins, infer_env,
                                                infer_expr_dtype,
                                                infer_expr_rank)

__all__ = [
    "check_dtype_pinning",
    "check_hot_loop_scalarization",
    "check_mixed_precision",
    "check_nondeterministic_rng",
    "check_partial_init_and_axis",
    "public_functions",
    "reachable_from_public",
]

#: Module whose internal promotion pins are the audited contract itself.
_DTYPE_BOUNDARY_MODULE = "repro.dtypes"


def _parts(module: ModuleModel) -> tuple[str, ...]:
    return PurePosixPath(module.path).parts


def _sorted_modules(program: Program) -> list[ModuleModel]:
    return [program.modules_by_path[path]
            for path in sorted(program.modules_by_path)]


def _in_repro_scope(module: ModuleModel) -> bool:
    """Library code (and the fixture mirror ``fixtures/repro/``)."""
    return "repro" in _parts(module)


def public_functions(program: Program,
                     prefixes: tuple[str, ...] | None = None
                     ) -> list[FunctionModel]:
    """Public surface: module-level defs and methods of module-level
    classes whose names do not start with ``_``.

    ``prefixes`` filters by dotted module name (``("repro.api",
    "repro.core")`` for the dtype_surface report); None keeps every
    in-scope library module (the RPR013 reachability roots).
    """
    selected: list[FunctionModel] = []
    for module in _sorted_modules(program):
        if prefixes is None:
            if not _in_repro_scope(module):
                continue
        elif not any(module.name == prefix
                     or module.name.startswith(prefix + ".")
                     for prefix in prefixes):
            continue
        for function in module.functions.values():
            if not function.name.startswith("_"):
                selected.append(function)
        for cls in module.classes.values():
            if cls.name.startswith("_") or not cls.module_level:
                continue
            for method in cls.methods.values():
                if not method.name.startswith("_"):
                    selected.append(method)
    return selected


def reachable_from_public(program: Program, graph: CallGraph
                          ) -> set[str]:
    """Qualnames reachable from any public library function."""
    frontier = [function.qualname
                for function in public_functions(program)]
    reachable = set(frontier)
    while frontier:
        current = frontier.pop()
        for site in graph.calls_by_caller.get(current, ()):
            if site.callee not in reachable:
                reachable.add(site.callee)
                frontier.append(site.callee)
    return reachable


# ----------------------------------------------------------------------
# RPR013 -- dtype pinning without an audit annotation
# ----------------------------------------------------------------------
def check_dtype_pinning(program: Program, graph: CallGraph,
                        summaries: dict[str, FunctionSummary]
                        ) -> Iterator[Violation]:
    reachable = reachable_from_public(program, graph)
    for module in _sorted_modules(program):
        if not _in_repro_scope(module) \
                or module.name == _DTYPE_BOUNDARY_MODULE:
            continue
        for qualname, pins in sorted(collect_pins(module).items()):
            if qualname not in reachable:
                continue
            for pin in pins:
                if pin.annotated:
                    continue
                if pin.missing_reason:
                    detail = ("its '# dtype-pinned:' annotation is missing "
                              "the mandatory reason; write '# dtype-pinned: "
                              f"{pin.dtype} -- <why this precision is the "
                              "contract>'")
                else:
                    detail = ("preserve the caller's dtype instead "
                              "(repro.dtypes.as_float_array / "
                              "as_complex_array, or dtype=<input>.dtype), "
                              f"or annotate the line with '# dtype-pinned: "
                              f"{pin.dtype} -- <reason>' if this precision "
                              "really is the contract")
                yield Violation(
                    path=module.path, line=pin.node.lineno,
                    col=pin.node.col_offset, rule="RPR013",
                    message=(
                        f"hard-coded dtype={pin.dtype} on the public data "
                        f"path silently upcasts every caller and blocks "
                        f"the float32 fast path; {detail}"))


# ----------------------------------------------------------------------
# RPR014 -- mixed-precision meeting points
# ----------------------------------------------------------------------
_ARITH_GEMMS = frozenset({"dot", "matmul", "einsum", "inner", "outer",
                          "tensordot", "vdot"})


def _mixed(left: str | None, right: str | None) -> bool:
    return (left in NARROW_DTYPES and right in WIDE_DTYPES) \
        or (left in WIDE_DTYPES and right in NARROW_DTYPES)


def check_mixed_precision(program: Program, graph: CallGraph,
                          summaries: dict[str, FunctionSummary]
                          ) -> Iterator[Violation]:
    for module in _sorted_modules(program):
        context = module.context
        for function in module.all_functions.values():
            env = infer_env(function, module)
            for node in ast.walk(function.node):
                if module.owner.get(node) is not function:
                    continue
                pair: tuple[str | None, str | None] | None = None
                if isinstance(node, ast.BinOp):
                    pair = (infer_expr_dtype(node.left, context, env),
                            infer_expr_dtype(node.right, context, env))
                elif isinstance(node, ast.Call):
                    dotted = context.resolve_call(node)
                    if dotted is None or not dotted.startswith("numpy."):
                        continue
                    if dotted.rsplit(".", 1)[-1] not in _ARITH_GEMMS:
                        continue
                    dtypes = [infer_expr_dtype(argument, context, env)
                              for argument in node.args
                              if not (isinstance(argument, ast.Constant)
                                      and isinstance(argument.value, str))]
                    known = [dtype for dtype in dtypes if dtype is not None]
                    narrow = [d for d in known if d in NARROW_DTYPES]
                    wide = [d for d in known if d in WIDE_DTYPES]
                    if narrow and wide:
                        pair = (narrow[0], wide[0])
                if pair is None or not _mixed(*pair):
                    continue
                narrow_side = pair[0] if pair[0] in NARROW_DTYPES else pair[1]
                wide_side = pair[1] if pair[0] in NARROW_DTYPES else pair[0]
                yield Violation(
                    path=module.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0), rule="RPR014",
                    message=(
                        f"{narrow_side} operand meets a {wide_side} operand "
                        f"here: NumPy silently upcasts the whole "
                        f"expression, so the 2x bandwidth/memory win of the "
                        f"narrow path evaporates without any test failing; "
                        f"coerce one side explicitly (astype, or build the "
                        f"wide operand in the narrow dtype)"))


# ----------------------------------------------------------------------
# RPR015 -- hot-loop scalarization in core/
# ----------------------------------------------------------------------
_GROWTH_CALLS = frozenset({"append", "concatenate", "vstack", "hstack"})


def _loop_target_names(node: ast.For) -> set[str]:
    names: set[str] = set()
    targets = [node.target]
    while targets:
        target = targets.pop()
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            targets.extend(target.elts)
    return names


def _scalar_index_uses(expr: ast.AST, loop_vars: set[str]) -> bool:
    """True if ``expr`` contains ``a[i]``-style (non-slice) indexing by a
    loop variable -- the per-element access pattern."""
    for node in ast.walk(expr):
        if not isinstance(node, ast.Subscript):
            continue
        indices = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        for index in indices:
            if isinstance(index, ast.Slice):
                continue
            for leaf in ast.walk(index):
                if isinstance(leaf, ast.Name) and leaf.id in loop_vars:
                    return True
    return False


def _list_append_targets(body: list[ast.stmt]) -> set[str]:
    names: set[str] = set()
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "append" \
                    and isinstance(node.func.value, ast.Name):
                names.add(node.func.value.id)
    return names


def _enclosing_loops(context: ModuleContext, node: ast.AST
                     ) -> list[ast.For | ast.While]:
    """Loops lexically enclosing ``node`` up to the nearest ``def``/lambda
    boundary (a function defined inside a loop is its own iteration unit)."""
    loops: list[ast.For | ast.While] = []
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            break
        if isinstance(ancestor, (ast.For, ast.While)):
            loops.append(ancestor)
    return loops


def check_hot_loop_scalarization(program: Program, graph: CallGraph,
                                 summaries: dict[str, FunctionSummary]
                                 ) -> Iterator[Violation]:
    for module in _sorted_modules(program):
        # The hot-path scope: src/repro/core (and the fixture mirror
        # fixtures/repro/core).  Test loops calling NumPy per case are
        # fine -- they are not the throughput claim.
        parts = _parts(module)
        if "core" not in parts or "repro" not in parts:
            continue
        context = module.context
        for child in ast.walk(context.tree):
            if not isinstance(child, ast.Call):
                continue
            loops = _enclosing_loops(context, child)
            if not loops:
                continue
            loop_vars: set[str] = set()
            grown_lists: set[str] = set()
            for loop in loops:
                if isinstance(loop, ast.For):
                    loop_vars |= _loop_target_names(loop)
                grown_lists |= _list_append_targets(loop.body)
            dotted = context.resolve_call(child)
            if dotted is None or not dotted.startswith("numpy."):
                continue
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "append":
                yield Violation(
                    path=module.path, line=child.lineno,
                    col=child.col_offset, rule="RPR015",
                    message=(
                        "np.append inside a loop reallocates and "
                        "copies the whole array every iteration "
                        "(quadratic); append to a Python list and "
                        "convert once after the loop, or preallocate "
                        "with np.empty and fill slices"))
                continue
            if tail in _GROWTH_CALLS:
                assign = context.enclosing(child, (ast.Assign,))
                target_names = set()
                if isinstance(assign, ast.Assign):
                    for target in assign.targets:
                        if isinstance(target, ast.Name):
                            target_names.add(target.id)
                operand_names = {leaf.id for argument in child.args
                                 for leaf in ast.walk(argument)
                                 if isinstance(leaf, ast.Name)}
                if target_names & operand_names:
                    yield Violation(
                        path=module.path, line=child.lineno,
                        col=child.col_offset, rule="RPR015",
                        message=(
                            f"np.{tail} accumulates into its own "
                            f"operand inside a loop: every iteration "
                            f"copies everything accumulated so far "
                            f"(quadratic); collect pieces in a list "
                            f"and concatenate once after the loop"))
                continue
            if tail in ("array", "asarray") and child.args \
                    and isinstance(child.args[0], ast.Name) \
                    and child.args[0].id in grown_lists:
                yield Violation(
                    path=module.path, line=child.lineno,
                    col=child.col_offset, rule="RPR015",
                    message=(
                        f"np.{tail}({child.args[0].id}) runs inside "
                        f"the same loop that grows "
                        f"'{child.args[0].id}': the list is "
                        f"re-converted from scratch every iteration; "
                        f"move the conversion after the loop"))
                continue
            if loop_vars and any(
                    _scalar_index_uses(argument, loop_vars)
                    for argument in child.args):
                yield Violation(
                    path=module.path, line=child.lineno,
                    col=child.col_offset, rule="RPR015",
                    message=(
                        f"np.{tail} is called once per element "
                        f"(argument indexed by the loop variable): "
                        f"per-element NumPy calls are ~100x slower "
                        f"than one vectorized call over the stacked "
                        f"axis; batch the loop away (see the "
                        f"compute_many / refine_many patterns)"))


# ----------------------------------------------------------------------
# RPR016 -- nondeterministic numerics
# ----------------------------------------------------------------------
_MODERN_RNG = frozenset({"default_rng", "Generator", "SeedSequence",
                         "BitGenerator", "PCG64", "PCG64DXSM", "Philox",
                         "SFC64", "MT19937"})
_SEED_SCOPES = ("tests", "benchmarks", "eval")


def check_nondeterministic_rng(program: Program, graph: CallGraph,
                               summaries: dict[str, FunctionSummary]
                               ) -> Iterator[Violation]:
    for module in _sorted_modules(program):
        context = module.context
        seed_scoped = any(part in _SEED_SCOPES for part in _parts(module))
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.resolve_call(node)
            if dotted is None or not dotted.startswith("numpy.random."):
                continue
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "default_rng":
                if seed_scoped and not node.args and not node.keywords:
                    yield Violation(
                        path=module.path, line=node.lineno,
                        col=node.col_offset, rule="RPR016",
                        message=(
                            "default_rng() without a seed in test/"
                            "benchmark/eval code: these feed bit-exact "
                            "equality gates and baseline comparisons, so "
                            "an unseeded stream makes failures "
                            "unreproducible; pass an explicit seed "
                            "(np.random.default_rng(0))"))
                continue
            if tail in _MODERN_RNG:
                continue
            yield Violation(
                path=module.path, line=node.lineno,
                col=node.col_offset, rule="RPR016",
                message=(
                    f"np.random.{tail} uses the legacy global-state RNG: "
                    f"any import or thread touching np.random reorders "
                    f"the stream, so runs are only reproducible by "
                    f"accident; thread an explicit "
                    f"np.random.default_rng(seed) Generator through "
                    f"instead (every simulation entry point accepts "
                    f"rng=)"))


# ----------------------------------------------------------------------
# RPR017 -- partial initialization and reduction-axis hazards
# ----------------------------------------------------------------------
_AXIS_REDUCTIONS = frozenset({"mean", "sum", "median", "average", "prod",
                              "std", "var", "nanmean", "nansum",
                              "nanmedian"})


def _is_zero_size(call: ast.Call) -> bool:
    if not call.args:
        return False
    shape = call.args[0]
    elements = shape.elts if isinstance(shape, ast.Tuple) else [shape]
    return any(isinstance(element, ast.Constant) and element.value == 0
               for element in elements)


def _empty_allocations(function: FunctionModel, module: ModuleModel
                       ) -> list[tuple[str, ast.Call]]:
    found: list[tuple[str, ast.Call]] = []
    for node in ast.walk(function.node):
        if module.owner.get(node) is not function:
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            tail = module.context.resolve_call(node.value)
            if tail == "numpy.empty" and not _is_zero_size(node.value):
                found.append((node.targets[0].id, node.value))
    return found


def _first_use_is_read(name: str, allocation: ast.Call,
                       function: FunctionModel,
                       module: ModuleModel) -> ast.AST | None:
    """The first textual use of ``name`` after allocation when it is a
    *read*; None when it is a write (subscript store, ``out=``, ``.fill``)
    or when there are no further uses."""
    events: list[tuple[int, int, bool, ast.AST]] = []  # (line, col, read?)

    def position(node: ast.AST) -> tuple[int, int]:
        return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))

    claimed: set[ast.AST] = set()
    for node in ast.walk(function.node):
        if module.owner.get(node) is not function:
            continue
        if isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, (ast.Store, ast.Del)) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == name:
            events.append((*position(node), False, node))
            claimed.add(node.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "fill" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == name:
                events.append((*position(node), False, node))
                claimed.add(func.value)
            for keyword in node.keywords:
                if keyword.arg != "out":
                    continue
                value = keyword.value
                root = value.value if isinstance(value, ast.Subscript) \
                    else value
                if isinstance(root, ast.Name) and root.id == name:
                    events.append((*position(value), False, value))
                    for leaf in ast.walk(value):
                        claimed.add(leaf)
    for node in ast.walk(function.node):
        if module.owner.get(node) is not function:
            continue
        if isinstance(node, ast.Name) and node.id == name \
                and node not in claimed \
                and isinstance(node.ctx, ast.Load):
            events.append((*position(node), True, node))
    threshold = (allocation.lineno, allocation.col_offset)
    events = [event for event in events if event[:2] > threshold]
    events.sort(key=lambda event: event[:2])
    if events and events[0][2]:
        return events[0][3]
    return None


def check_partial_init_and_axis(program: Program, graph: CallGraph,
                                summaries: dict[str, FunctionSummary]
                                ) -> Iterator[Violation]:
    for module in _sorted_modules(program):
        context = module.context
        for function in module.all_functions.values():
            for name, allocation in _empty_allocations(function, module):
                read = _first_use_is_read(name, allocation, function,
                                          module)
                if read is None:
                    continue
                yield Violation(
                    path=module.path, line=allocation.lineno,
                    col=allocation.col_offset, rule="RPR017",
                    message=(
                        f"np.empty buffer '{name}' is read (line "
                        f"{getattr(read, 'lineno', '?')}) before any "
                        f"element is written: uninitialized memory flows "
                        f"into results nondeterministically; write every "
                        f"element first (slice assignment, out=), or "
                        f"allocate with np.zeros/np.full if a fill value "
                        f"is meaningful"))
            env = infer_env(function, module)
            for node in ast.walk(function.node):
                if module.owner.get(node) is not function \
                        or not isinstance(node, ast.Call):
                    continue
                dotted = context.resolve_call(node)
                if dotted is None or not dotted.startswith("numpy."):
                    continue
                tail = dotted.rsplit(".", 1)[-1]
                if tail not in _AXIS_REDUCTIONS or not node.args:
                    continue
                if len(node.args) > 1 or any(keyword.arg == "axis"
                                             for keyword in node.keywords):
                    continue
                rank = infer_expr_rank(node.args[0], context, env)
                if rank is None or rank < 2:
                    continue
                yield Violation(
                    path=module.path, line=node.lineno,
                    col=node.col_offset, rule="RPR017",
                    message=(
                        f"np.{tail} without an axis on a {rank}-D array "
                        f"collapses the batch and the feature axes "
                        f"together -- in batched code this averages "
                        f"*across clients/frames* and still returns a "
                        f"plausible scalar; pass axis= explicitly "
                        f"(axis=None spelled out is accepted as "
                        f"deliberate)"))
