"""Developer tooling that ships with the repo (not part of ``repro``).

``tools.repro_lint`` is the repo-specific static-analysis pass; run it as
``python -m tools.repro_lint src tests benchmarks``.
"""
