"""Setuptools shim for environments without the `wheel` package.

The canonical project metadata lives in pyproject.toml; this file only
exists so that `pip install -e . --no-use-pep517` (legacy editable install)
works on machines where PEP 660 editable wheels cannot be built offline.
"""
from setuptools import setup

setup()
