#!/usr/bin/env bash
# Run the repo's three static-analysis gates in the same order CI does:
#
#   1. ruff        (generic defects: F/E4/E7/E9 + bugbear + pyupgrade)
#   2. repro-lint  (repo-specific per-file rules + whole-program flow
#                   pass, concurrency RPR009-012 + numerics RPR013-017,
#                   + suppression budget; pure stdlib, always runs)
#   3. mypy        (strict-ish typing on repro.api + repro.core)
#
# ruff and mypy are optional locally (the dev container may not ship
# them); a missing tool is skipped with a warning instead of failing,
# since CI still enforces it.  repro-lint has no dependencies and is
# never skipped.  See docs/static_analysis.md.
set -u
cd "$(dirname "$0")/.."

failures=0

run_gate() {
    local name="$1"; shift
    echo "==> ${name}: $*"
    if "$@"; then
        echo "==> ${name}: OK"
    else
        echo "==> ${name}: FAILED"
        failures=$((failures + 1))
    fi
    echo
}

if command -v ruff >/dev/null 2>&1; then
    run_gate "ruff" ruff check src tests benchmarks
else
    echo "==> ruff: not installed locally, skipping (CI enforces it)"
    echo
fi

run_gate "repro-lint" python -m tools.repro_lint --flow --jobs 0 \
    --suppression-budget tools/repro_lint/suppression_budget.json \
    src tests benchmarks

if python -c "import mypy" >/dev/null 2>&1; then
    run_gate "mypy" python -m mypy --config-file mypy.ini
else
    echo "==> mypy: not installed locally, skipping (CI enforces it)"
    echo
fi

if [ "${failures}" -ne 0 ]; then
    echo "lint: ${failures} gate(s) failed"
    exit 1
fi
echo "lint: all available gates passed"
