"""Benchmark: streaming client tracking (E-ROAM, the roaming mobility scenario).

Regenerates the roaming scenario of ``repro.eval.roaming_tracking``: several
clients walk corridor tracks at the edge of coverage (three APs, 8 dB SNR)
while every captured frame streams into ``ArrayTrackService`` sessions and
``tick`` drains each burst through the one-pass batched synthesis -- once
with the Section 2.4 multipath-suppression stage enabled and once without,
over identical captures.

Reported: tracked-clients-per-second of the service side of the loop
(ingest + tick, excluding the channel simulation) and the median/mean
localization error of both variants.

Asserted: the streaming pipeline emits one fix per client and step in both
variants, the throughput counter is live, and -- at the full problem size --
the suppression stage improves the median error on this multipath/noise-
limited scenario (at high SNR with dense AP coverage the synthesis is
already robust and suppression is deliberately left off by default).

Results are also written to ``BENCH_tracking.json`` (per-variant error and
throughput scalars) so the accuracy trajectory is machine-readable across
PRs.  Run with ``--bench-smoke`` for an untimed single-repetition pipeline
canary at a reduced problem size (the accuracy margin is only asserted at
the full size).
"""

from __future__ import annotations

import json
import os

from repro.eval import format_table, roaming_tracking_comparison

from conftest import run_once

#: Reduced problem size for the --bench-smoke CI canary.
SMOKE_SIZES = {"num_clients": 2, "num_steps": 4}
#: Machine-readable results for cross-PR perf tracking.
RESULTS_PATH = os.path.join(os.environ.get("BENCH_OUTPUT_DIR", "."),
                            "BENCH_tracking.json")


def _write_results(results, bench_smoke: bool) -> None:
    payload = {
        "smoke": bench_smoke,
        "variants": {
            name: {
                "num_clients": result.num_clients,
                "num_fixes": result.num_fixes,
                "median_error_cm": result.median_error_cm,
                "mean_error_cm": result.mean_error_cm,
                "fixes_per_s": result.fixes_per_s,
            }
            for name, result in results.items()
        },
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_roaming_tracking_with_and_without_suppression(benchmark, bench_smoke):
    sizes = SMOKE_SIZES if bench_smoke else {}
    results = run_once(benchmark, roaming_tracking_comparison, **sizes)
    _write_results(results, bench_smoke)
    suppressed = results["suppressed"]
    unsuppressed = results["unsuppressed"]

    print()
    print(format_table(
        ["variant", "clients", "fixes", "median err (cm)", "mean err (cm)",
         "tracked clients/s"],
        [[name, result.num_clients, result.num_fixes,
          result.median_error_cm, result.mean_error_cm, result.fixes_per_s]
         for name, result in results.items()],
        title="Roaming tracking: multipath suppression on/off "
              "(identical captures)"))
    print(f"results written to {RESULTS_PATH}")

    # The streaming pipeline emitted one fix per client and step...
    expected = suppressed.num_clients * (4 if bench_smoke else 8)
    for result in (suppressed, unsuppressed):
        assert result.num_fixes == expected
        assert len(result.errors_cm) == result.num_fixes
        # ...and the tracked-clients-per-second counter is live.
        assert result.fixes_per_s > 0
        assert all(length >= 0.0 for length in result.path_length_m.values())

    if not bench_smoke:
        # The point of the scenario: suppression improves the median error
        # versus the unsuppressed baseline on the same captures (3.6x at
        # the default seed; asserted without a margin so a regression to
        # parity still fails).
        assert suppressed.median_error_cm < unsuppressed.median_error_cm
