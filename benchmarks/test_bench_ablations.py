"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation re-runs a reduced localization campaign with one design knob
changed, quantifying how much that component of ArrayTrack's pipeline is
worth on the simulated testbed.
"""

from repro.api import get_estimator
from repro.core import SpectrumConfig
from repro.eval import format_error_statistics, run_localization_sweep
from repro.testbed import ScenarioConfig

from conftest import run_once

#: Reduced campaign size so the whole ablation suite stays fast.
NUM_CLIENTS = 20
GRID_M = 0.3


def _sweep(scenario=None, ap_counts=(6,), suppression=True, subsets=1):
    return run_localization_sweep(scenario=scenario, ap_counts=ap_counts,
                                  num_clients=NUM_CLIENTS,
                                  max_subsets_per_count=subsets,
                                  grid_resolution_m=GRID_M,
                                  enable_multipath_suppression=suppression)


def test_ablation_smoothing_groups(benchmark):
    """A-SMOOTH: the NG = 2 choice of Section 2.3.2 versus no smoothing."""
    def run():
        results = {}
        for groups in (1, 2, 3):
            scenario = ScenarioConfig(
                frames_per_client=3, seed=2013,
                spectrum=SpectrumConfig(smoothing_groups=groups))
            results[f"NG={groups}"] = _sweep(scenario).statistics[6]
        return results

    results = run_once(benchmark, run)
    print()
    print(format_error_statistics(results, label="smoothing",
                                  title="Ablation: spatial smoothing groups"))
    # Smoothing (NG >= 2) should not be worse than no smoothing by much; the
    # paper picks NG = 2 as the accuracy compromise.
    assert results["NG=2"].median_cm <= results["NG=1"].median_cm * 1.5 + 10.0


def test_ablation_geometry_weighting(benchmark):
    """A-WEIGHT: the array-geometry window W(theta) of Section 2.3.3."""
    def run():
        with_weighting = _sweep(ScenarioConfig(
            frames_per_client=3, seed=2013,
            spectrum=SpectrumConfig(apply_weighting=True)))
        without_weighting = _sweep(ScenarioConfig(
            frames_per_client=3, seed=2013,
            spectrum=SpectrumConfig(apply_weighting=False)))
        return {"with W(theta)": with_weighting.statistics[6],
                "without W(theta)": without_weighting.statistics[6]}

    results = run_once(benchmark, run)
    print()
    print(format_error_statistics(results, label="configuration",
                                  title="Ablation: array geometry weighting"))
    assert (results["with W(theta)"].mean_cm
            <= results["without W(theta)"].mean_cm * 1.25 + 10.0)


def test_ablation_multipath_suppression(benchmark):
    """A-SUPPRESS: multipath suppression across frames (Section 2.4)."""
    def run():
        scenario = ScenarioConfig(frames_per_client=3, seed=2013)
        with_suppression = _sweep(scenario, ap_counts=(3, 6), suppression=True,
                                  subsets=2)
        without_suppression = _sweep(
            ScenarioConfig(frames_per_client=3, seed=2013),
            ap_counts=(3, 6), suppression=False, subsets=2)
        return {
            "suppression, 3 APs": with_suppression.statistics[3],
            "no suppression, 3 APs": without_suppression.statistics[3],
            "suppression, 6 APs": with_suppression.statistics[6],
            "no suppression, 6 APs": without_suppression.statistics[6],
        }

    results = run_once(benchmark, run)
    print()
    print(format_error_statistics(results, label="configuration",
                                  title="Ablation: multipath suppression"))
    assert (results["suppression, 6 APs"].mean_cm
            <= results["no suppression, 6 APs"].mean_cm * 1.25 + 10.0)


def test_ablation_symmetry_removal(benchmark):
    """A-SYMMETRY: the ninth-antenna symmetry removal matters most at 3 APs."""
    def run():
        with_ninth = _sweep(ScenarioConfig(frames_per_client=3, seed=2013,
                                           use_symmetry_antenna=True),
                            ap_counts=(3,), subsets=3)
        without_ninth = _sweep(ScenarioConfig(frames_per_client=3, seed=2013,
                                              use_symmetry_antenna=False),
                               ap_counts=(3,), subsets=3)
        return {"with symmetry removal": with_ninth.statistics[3],
                "without symmetry removal": without_ninth.statistics[3]}

    results = run_once(benchmark, run)
    print()
    print(format_error_statistics(results, label="configuration",
                                  title="Ablation: array symmetry removal (3 APs)"))
    # Removing the mirror ghosts should help (or at least not hurt) the mean
    # error at 3 APs, where ghost intersections create false positives.
    assert (results["with symmetry removal"].mean_cm
            <= results["without symmetry removal"].mean_cm * 1.1 + 10.0)


def test_ablation_estimator_choice(benchmark):
    """A-ESTIMATOR: MUSIC versus the Bartlett and Capon beamformers.

    Estimators are selected by name through the facade's registry
    (:func:`repro.api.get_estimator`); ``specialize`` yields exactly the
    ``SpectrumConfig(method=...)`` this ablation always hardcoded, so the
    registry path reproduces the historical results verbatim.
    """
    def run():
        results = {}
        for name in ("music", "bartlett", "capon"):
            spectrum = get_estimator(name).specialize(SpectrumConfig())
            assert spectrum == SpectrumConfig(method=name)
            scenario = ScenarioConfig(
                frames_per_client=3, seed=2013, spectrum=spectrum)
            results[name] = _sweep(scenario).statistics[6]
        return results

    results = run_once(benchmark, run)
    print()
    print(format_error_statistics(results, label="estimator",
                                  title="Ablation: spectrum estimator"))
    # MUSIC (the paper's choice) should be at least as accurate as the
    # conventional beamformer.
    assert results["music"].median_cm <= results["bartlett"].median_cm * 1.2 + 10.0
