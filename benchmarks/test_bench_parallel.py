"""Benchmark: vectorized refinement + sharded parallel service throughput.

The Section 2.5 refinement used to be the scaling cliff of the batched
engine: grid synthesis ran in stacked NumPy passes, then hill climbing fell
back to one Python likelihood call per candidate point per climber.  This
benchmark measures end-to-end ``ArrayTrackService.localize_many`` over the
office testbed with refinement *enabled*, three ways:

* ``serial seed`` -- the pre-optimization path:
  ``server.localizer.vectorized_refinement=False`` and no parallel backend
  (per-candidate Python hill climbing, one thread);
* ``vectorized`` -- the batched refiner
  (:func:`repro.core.optimizer.refine_many`): every round evaluates the
  stacked candidates of all clients' climbers in one Equation 8 pass per AP;
* ``vectorized + threads`` -- the same, plus ``parallel.backend=thread``
  sharding the batch across 4 workers.

Asserted: the full configuration beats the serial seed path by >= 3x at 256
clients / 4 workers, and both new paths produce fixes bit-for-bit identical
to the serial seed path (the refinement replay and the shard merge preserve
every tie-break).

Run with ``--bench-smoke`` for an untimed single-repetition equality canary
at a reduced client count (the speedup ratio is only asserted at full size,
where it is not noise-bound).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.eval import format_table
from repro.geometry.vector import Point2D, bearing_deg
from repro.testbed.office import OfficeTestbed

from conftest import run_once

GRID_RESOLUTION_M = 0.25
NUM_CLIENTS = 256
NUM_WORKERS = 4
REPETITIONS = 3
SPEEDUP_FLOOR = 3.0
#: Reduced problem size for the --bench-smoke CI canary.
SMOKE_CLIENTS = 24


def _synthesize_clients(testbed: OfficeTestbed, count: int,
                        rng: np.random.Generator
                        ) -> Dict[str, Dict[str, List[AoASpectrum]]]:
    """Build per-AP spectra for ``count`` clients at random positions."""
    angles = default_angle_grid(1.0)
    sites = [(site.ap_id, site.position, site.orientation_deg)
             for site in testbed.ap_sites]
    xmin, ymin, xmax, ymax = testbed.bounds
    clients: Dict[str, Dict[str, List[AoASpectrum]]] = {}
    for index in range(count):
        position = Point2D(rng.uniform(xmin + 1.0, xmax - 1.0),
                           rng.uniform(ymin + 1.0, ymax - 1.0))
        per_ap: Dict[str, List[AoASpectrum]] = {}
        for ap_id, ap_position, orientation_deg in sites:
            bearing = bearing_deg(ap_position, position)
            local = (angles - (bearing - orientation_deg) + 180.0) % 360.0 - 180.0
            power = np.exp(-0.5 * (local / 8.0) ** 2) \
                + 0.02 * rng.random(angles.shape[0])
            per_ap[ap_id] = [AoASpectrum(
                angles, power, ap_position=ap_position,
                ap_orientation_deg=orientation_deg, ap_id=ap_id)]
        clients[f"client-{index}"] = per_ap
    return clients


def _service(testbed: OfficeTestbed, vectorized: bool,
             backend: str) -> ArrayTrackService:
    config = ArrayTrackConfig(bounds=testbed.bounds).updated({
        "server.localizer.grid_resolution_m": GRID_RESOLUTION_M,
        "server.localizer.vectorized_refinement": vectorized,
        "parallel.backend": backend,
        "parallel.num_workers": NUM_WORKERS,
        "parallel.min_clients_per_worker": 2,
    })
    return ArrayTrackService(config)


def measure_parallel(num_clients: int = NUM_CLIENTS) -> Dict[str, object]:
    """Time the three refinement/sharding configurations over one batch."""
    testbed = OfficeTestbed()
    rng = np.random.default_rng(2026)
    clients = _synthesize_clients(testbed, num_clients, rng)
    services = {
        "serial seed": _service(testbed, vectorized=False, backend="none"),
        "vectorized": _service(testbed, vectorized=True, backend="none"),
        "vectorized + threads": _service(testbed, vectorized=True,
                                         backend="thread"),
    }
    estimates: Dict[str, Dict[str, object]] = {}
    timings: Dict[str, float] = {}
    for name, service in services.items():
        estimates[name] = service.localize_many(clients)   # warm the caches
        samples = []
        for _ in range(REPETITIONS):
            start = time.perf_counter()
            estimates[name] = service.localize_many(clients)
            samples.append(time.perf_counter() - start)
        timings[name] = float(np.median(samples))
        service.close()
    reference = estimates["serial seed"]
    for name in ("vectorized", "vectorized + threads"):
        assert list(estimates[name]) == list(reference), (
            f"{name} returned clients out of order")
        for client_id, expected in reference.items():
            actual = estimates[name][client_id]
            assert (actual.position.x, actual.position.y) \
                == (expected.position.x, expected.position.y), (
                f"{name} fix for {client_id} diverged from the serial path")
            assert actual.likelihood == expected.likelihood, (
                f"{name} likelihood for {client_id} diverged")
    return {"timings": timings, "num_clients": num_clients}


def test_parallel_localization_speedup(benchmark, bench_smoke):
    """E-PARALLEL: vectorized + sharded refinement >= 3x the serial seed path.

    The serial seed path re-enters the Equation 8 likelihood once per
    candidate point of every climber; the vectorized refiner folds each
    round's candidates in stacked passes and the thread backend shards the
    batch across workers.  Both are asserted bit-identical to the serial
    fixes at any size; the 3x bar applies at 256 clients / 4 workers.
    """
    num_clients = SMOKE_CLIENTS if bench_smoke else NUM_CLIENTS
    results = run_once(benchmark, measure_parallel, num_clients)
    timings: Dict[str, float] = results["timings"]
    count = results["num_clients"]
    rows = [[name, f"{seconds * 1e3:.0f}",
             f"{count / seconds:.0f}",
             f"{timings['serial seed'] / seconds:.1f}x"]
            for name, seconds in timings.items()]
    print()
    print(format_table(
        ["configuration", "batch (ms)", "fixes/s", "vs serial seed"],
        rows,
        title=f"Refined localize_many, office testbed, {count} clients, "
              f"{NUM_WORKERS} workers"))
    if not bench_smoke:
        speedup = timings["serial seed"] / timings["vectorized + threads"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized + sharded refinement must be >= {SPEEDUP_FLOOR}x "
            f"the serial seed path, got {speedup:.2f}x")
        assert timings["vectorized + threads"] <= timings["serial seed"], (
            "the parallel path must not lose to the serial seed path")
