"""Benchmark: vectorized refinement + sharded parallel service throughput.

The Section 2.5 refinement used to be the scaling cliff of the batched
engine: grid synthesis ran in stacked NumPy passes, then hill climbing fell
back to one Python likelihood call per candidate point per climber.  This
benchmark measures end-to-end ``ArrayTrackService.localize_many`` over the
office testbed with refinement *enabled*, four ways:

* ``serial seed`` -- the pre-optimization path:
  ``server.localizer.vectorized_refinement=False`` and no parallel backend
  (per-candidate Python hill climbing, one thread);
* ``vectorized`` -- the batched refiner
  (:func:`repro.core.optimizer.refine_many`): every round evaluates the
  stacked candidates of all clients' climbers in one Equation 8 pass per AP;
* ``vectorized + threads`` -- the same, plus ``parallel.backend=thread``
  sharding the batch across 4 workers (GIL-releasing NumPy overlap only);
* ``vectorized + processes`` -- the same, plus ``parallel.backend=process``
  sharding across 4 spawned worker processes with shared-memory spectra
  (no interpreter lock shared between shards).

Asserted: the thread configuration beats the serial seed path by >= 3x at
256 clients / 4 workers, the process configuration additionally beats the
thread backend by >= 2x *on a multi-core runner* (the bar is skipped, and
recorded in the JSON, when fewer than 4 CPUs are visible -- process
sharding cannot beat threads on one core), and every configuration produces
fixes bit-for-bit identical to the serial seed path (the refinement replay
and the shard merge preserve every tie-break).

Timings are emitted to ``BENCH_parallel.json`` (same schema style as
``BENCH_frontend.json``) so the perf trajectory covers parallel scale-out.

Run with ``--bench-smoke`` for an untimed single-repetition equality canary
at a reduced client count: the cross-backend bit-equality (process backend
included) is still asserted there, the speedup bars only at full size.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.eval import format_table
from repro.geometry.vector import Point2D, bearing_deg
from repro.testbed.office import OfficeTestbed

from conftest import run_once

GRID_RESOLUTION_M = 0.25
NUM_CLIENTS = 256
NUM_WORKERS = 4
REPETITIONS = 3
SPEEDUP_FLOOR = 3.0
#: Process-over-thread bar; only meaningful with real cores to spread over.
PROCESS_VS_THREAD_FLOOR = 2.0
MIN_CPUS_FOR_PROCESS_BAR = 4
#: Reduced problem size for the --bench-smoke CI canary.
SMOKE_CLIENTS = 24
#: Machine-readable results for cross-PR perf tracking.
RESULTS_PATH = os.path.join(os.environ.get("BENCH_OUTPUT_DIR", "."),
                            "BENCH_parallel.json")


def _synthesize_clients(testbed: OfficeTestbed, count: int,
                        rng: np.random.Generator
                        ) -> dict[str, dict[str, list[AoASpectrum]]]:
    """Build per-AP spectra for ``count`` clients at random positions."""
    angles = default_angle_grid(1.0)
    sites = [(site.ap_id, site.position, site.orientation_deg)
             for site in testbed.ap_sites]
    xmin, ymin, xmax, ymax = testbed.bounds
    clients: dict[str, dict[str, list[AoASpectrum]]] = {}
    for index in range(count):
        position = Point2D(rng.uniform(xmin + 1.0, xmax - 1.0),
                           rng.uniform(ymin + 1.0, ymax - 1.0))
        per_ap: dict[str, list[AoASpectrum]] = {}
        for ap_id, ap_position, orientation_deg in sites:
            bearing = bearing_deg(ap_position, position)
            local = (angles - (bearing - orientation_deg) + 180.0) % 360.0 - 180.0
            power = np.exp(-0.5 * (local / 8.0) ** 2) \
                + 0.02 * rng.random(angles.shape[0])
            per_ap[ap_id] = [AoASpectrum(
                angles, power, ap_position=ap_position,
                ap_orientation_deg=orientation_deg, ap_id=ap_id)]
        clients[f"client-{index}"] = per_ap
    return clients


def _service(testbed: OfficeTestbed, vectorized: bool,
             backend: str) -> ArrayTrackService:
    config = ArrayTrackConfig(bounds=testbed.bounds).updated({
        "server.localizer.grid_resolution_m": GRID_RESOLUTION_M,
        "server.localizer.vectorized_refinement": vectorized,
        "parallel.backend": backend,
        "parallel.num_workers": NUM_WORKERS,
        "parallel.min_clients_per_worker": 2,
    })
    return ArrayTrackService(config)


def measure_parallel(num_clients: int = NUM_CLIENTS) -> dict[str, object]:
    """Time the four refinement/sharding configurations over one batch.

    Every configuration gets one untimed warm-up pass (cache warm-up, and
    for the process backend the worker spawn + per-worker cache warm-up)
    before its timed repetitions, then is closed; bit-equality against the
    serial seed fixes is asserted for every other configuration.  Results
    are written to :data:`RESULTS_PATH`.
    """
    testbed = OfficeTestbed()
    rng = np.random.default_rng(2026)
    clients = _synthesize_clients(testbed, num_clients, rng)
    services = {
        "serial seed": _service(testbed, vectorized=False, backend="none"),
        "vectorized": _service(testbed, vectorized=True, backend="none"),
        "vectorized + threads": _service(testbed, vectorized=True,
                                         backend="thread"),
        "vectorized + processes": _service(testbed, vectorized=True,
                                           backend="process"),
    }
    estimates: dict[str, dict[str, object]] = {}
    timings: dict[str, float] = {}
    for name, service in services.items():
        estimates[name] = service.localize_many(clients)   # warm the caches
        samples = []
        for _ in range(REPETITIONS):
            start = time.perf_counter()
            estimates[name] = service.localize_many(clients)
            samples.append(time.perf_counter() - start)
        timings[name] = float(np.median(samples))
        service.close()
    reference = estimates["serial seed"]
    for name in ("vectorized", "vectorized + threads",
                 "vectorized + processes"):
        assert list(estimates[name]) == list(reference), (
            f"{name} returned clients out of order")
        for client_id, expected in reference.items():
            actual = estimates[name][client_id]
            assert (actual.position.x, actual.position.y) \
                == (expected.position.x, expected.position.y), (
                f"{name} fix for {client_id} diverged from the serial path")
            assert actual.likelihood == expected.likelihood, (
                f"{name} likelihood for {client_id} diverged")
    serial_s = timings["serial seed"]
    results: dict[str, object] = {
        "num_clients": num_clients,
        "num_workers": NUM_WORKERS,
        "cpu_count": os.cpu_count(),
        "configs": {
            name: {
                "seconds": seconds,
                "fixes_per_s": num_clients / seconds,
                "speedup_vs_serial": serial_s / seconds,
            }
            for name, seconds in timings.items()},
        "process_vs_thread": (timings["vectorized + threads"]
                              / timings["vectorized + processes"]),
        "process_bar_applies": (os.cpu_count() or 1)
        >= MIN_CPUS_FOR_PROCESS_BAR,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    return results


def test_parallel_localization_speedup(benchmark, bench_smoke):
    """E-PARALLEL: sharded refinement speedups, bit-identical to serial.

    The serial seed path re-enters the Equation 8 likelihood once per
    candidate point of every climber; the vectorized refiner folds each
    round's candidates in stacked passes, the thread backend shards the
    batch across workers, and the process backend spreads the shards over
    worker processes.  All are asserted bit-identical to the serial fixes
    at any size; the speedup bars apply at 256 clients / 4 workers (the
    process-over-thread bar additionally needs >= 4 visible CPUs).
    """
    num_clients = SMOKE_CLIENTS if bench_smoke else NUM_CLIENTS
    results = run_once(benchmark, measure_parallel, num_clients)
    configs: dict[str, dict[str, float]] = results["configs"]
    count = results["num_clients"]
    rows = [[name, f"{entry['seconds'] * 1e3:.0f}",
             f"{entry['fixes_per_s']:.0f}",
             f"{entry['speedup_vs_serial']:.1f}x"]
            for name, entry in configs.items()]
    print()
    print(format_table(
        ["configuration", "batch (ms)", "fixes/s", "vs serial seed"],
        rows,
        title=f"Refined localize_many, office testbed, {count} clients, "
              f"{NUM_WORKERS} workers, {results['cpu_count']} cpus"))
    bar_note = "applies" if results["process_bar_applies"] \
        else "skipped: fewer than 4 visible CPUs"
    print(f"process vs thread: {results['process_vs_thread']:.2f}x "
          f"(bar {bar_note})")
    print(f"results written to {RESULTS_PATH}")
    if not bench_smoke:
        speedup = configs["vectorized + threads"]["speedup_vs_serial"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized + sharded refinement must be >= {SPEEDUP_FLOOR}x "
            f"the serial seed path, got {speedup:.2f}x")
        assert configs["vectorized + threads"]["seconds"] \
            <= configs["serial seed"]["seconds"], (
            "the parallel path must not lose to the serial seed path")
        if results["process_bar_applies"]:
            process_speedup = \
                configs["vectorized + processes"]["speedup_vs_serial"]
            assert process_speedup >= SPEEDUP_FLOOR, (
                f"process sharding must be >= {SPEEDUP_FLOOR}x the serial "
                f"seed path on a multi-core runner, "
                f"got {process_speedup:.2f}x")
            assert results["process_vs_thread"] \
                >= PROCESS_VS_THREAD_FLOOR, (
                f"process sharding must be >= {PROCESS_VS_THREAD_FLOOR}x "
                f"the thread backend on a multi-core runner, "
                f"got {results['process_vs_thread']:.2f}x")


if __name__ == "__main__":
    print(json.dumps(measure_parallel(NUM_CLIENTS), indent=2))
