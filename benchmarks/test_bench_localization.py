"""Benchmarks regenerating the localization accuracy results (Figures 13-16).

These are the paper's headline results: localization error CDFs across the
41-client testbed for different AP counts, with and without ArrayTrack's
optimizations, and for different antenna counts.
"""


from repro.eval import (
    fig13_static_localization,
    fig14_heatmaps,
    fig15_arraytrack_localization,
    fig16_antenna_count,
    format_cdf_series,
    format_error_statistics,
    format_key_values,
)

from conftest import run_once

#: Full 41-client campaigns; AP subsets per count are capped to keep each
#: benchmark to a few minutes (the paper evaluates every combination; raise
#: SUBSETS_PER_COUNT to None to do the same).
NUM_CLIENTS = 41
SUBSETS_PER_COUNT = 2
GRID_M = 0.25


def test_fig13_static_cdf(benchmark):
    """E-FIG13: raw (unoptimized) spectra synthesis, 3-6 APs."""
    sweep = run_once(benchmark, fig13_static_localization,
                     NUM_CLIENTS, SUBSETS_PER_COUNT, GRID_M)
    print()
    print(format_error_statistics(sweep.statistics, label="APs",
                                  title="Figure 13: unoptimized location error"))
    print(format_cdf_series(sweep.cdfs, title="Figure 13: CDF summary"))
    # Shape: more APs help; the paper reports median 75 cm (3 APs) down to
    # 26 cm (6 APs) and a large mean at 3 APs driven by mirror ghosts.
    assert sweep.statistics[6].median_cm < sweep.statistics[3].median_cm
    assert sweep.statistics[3].mean_cm > sweep.statistics[3].median_cm


def test_fig14_heatmaps(benchmark):
    """E-FIG14: heatmap peak converges to the client as APs are added."""
    errors = run_once(benchmark, fig14_heatmaps)
    print()
    print(format_key_values({f"{k} AP(s)": f"{v:.0f} cm" for k, v in errors.items()},
                            title="Figure 14: heatmap-peak error vs number of APs"))
    assert errors[6] <= errors[1]
    assert errors[6] < 150.0


def test_fig15_arraytrack_cdf(benchmark):
    """E-FIG15: full ArrayTrack vs unoptimized, 3-6 APs."""
    results = run_once(benchmark, fig15_arraytrack_localization,
                       NUM_CLIENTS, SUBSETS_PER_COUNT, GRID_M)
    arraytrack = results["arraytrack"]
    unoptimized = results["unoptimized"]
    print()
    print(format_error_statistics(arraytrack.statistics, label="APs",
                                  title="Figure 15: ArrayTrack location error"))
    print(format_error_statistics(unoptimized.statistics, label="APs",
                                  title="Figure 15: unoptimized location error"))
    # Shape assertions.  In the paper ArrayTrack's refinements cut the mean
    # error sharply (3 APs: 317 cm -> 107 cm), mostly by removing mirror-ghost
    # false positives.  In this simulated testbed the wall-mounted APs face
    # the room, so most ghosts already fall outside the floor and the raw
    # synthesis is comparatively strong; the refinements are therefore close
    # to neutral here rather than a large win (see EXPERIMENTS.md).  What must
    # hold: the full pipeline stays in the same accuracy class as the raw one
    # and keeps improving as APs are added.
    for count in (3, 4, 5, 6):
        assert (arraytrack.statistics[count].median_cm
                <= unoptimized.statistics[count].median_cm * 1.6 + 10.0)
    assert arraytrack.statistics[6].median_cm <= arraytrack.statistics[3].median_cm
    assert arraytrack.statistics[6].median_cm < 100.0


def test_fig16_antenna_count(benchmark):
    """E-FIG16: accuracy improves with 4 -> 6 -> 8 antennas."""
    results = run_once(benchmark, fig16_antenna_count, (4, 6, 8), NUM_CLIENTS, GRID_M)
    print()
    print(format_error_statistics(results, label="antennas",
                                  title="Figure 16: location error vs antennas"))
    assert results[8].median_cm <= results[4].median_cm
    assert results[6].median_cm <= results[4].median_cm * 1.2
    # Diminishing returns: the 4 -> 6 improvement exceeds the 6 -> 8 one.
    assert (results[4].median_cm - results[6].median_cm) >= (
        results[6].median_cm - results[8].median_cm) - 5.0


def test_headline_numbers(benchmark):
    """E-SEC42: the headline medians (paper: 23 cm @ 6 APs, 57 cm @ 3 APs)."""
    results = run_once(benchmark, fig15_arraytrack_localization,
                       NUM_CLIENTS, SUBSETS_PER_COUNT, GRID_M)
    arraytrack = results["arraytrack"].statistics
    print()
    print(format_key_values({
        "median error, 6 APs": f"{arraytrack[6].median_cm:.0f} cm (paper: 23 cm)",
        "mean error, 6 APs": f"{arraytrack[6].mean_cm:.0f} cm (paper: 31 cm)",
        "95th percentile, 6 APs": f"{arraytrack[6].p95_cm:.0f} cm (paper: 90 cm)",
        "median error, 3 APs": f"{arraytrack[3].median_cm:.0f} cm (paper: 57 cm)",
    }, title="Headline accuracy (Section 4.2)"))
    # Sub-metre median accuracy with six APs; 3-AP median within a few x of it.
    assert arraytrack[6].median_cm < 100.0
    assert arraytrack[3].median_cm < 250.0
