"""Benchmarks regenerating the spectrum-level figures (Figures 3, 7, 9, 17)."""


from repro.eval import (
    fig3_example_spectrum,
    fig7_spatial_smoothing,
    fig9_multipath_suppression,
    fig17_pillar_blocking,
    format_key_values,
)

from conftest import run_once


def test_fig3_example_spectrum(benchmark):
    """E-FIG3: a representative AoA spectrum with an identifiable direct peak."""
    result = run_once(benchmark, fig3_example_spectrum)
    print()
    print(format_key_values(result.summary, title="Figure 3: example AoA spectrum"))
    assert result.summary["num_peaks"] >= 1
    assert result.summary["closest_peak_offset_deg"] < 10.0


def test_fig7_spatial_smoothing(benchmark):
    """E-FIG7: spatial smoothing with NG = 1..4 sub-array groups."""
    result = run_once(benchmark, fig7_spatial_smoothing, (1, 2, 3, 4))
    print()
    print(format_key_values(result.summary,
                            title="Figure 7: peaks vs smoothing groups"))
    # More smoothing reduces (or keeps) the number of spurious peaks, at the
    # cost of aperture -- the paper's reason for settling on NG = 2.
    assert (result.summary["num_peaks_NG4"]
            <= result.summary["num_peaks_NG1"] + 1)


def test_fig9_multipath_suppression(benchmark):
    """E-FIG9: the multipath suppression algorithm on grouped spectra."""
    result = run_once(benchmark, fig9_multipath_suppression)
    print()
    print(format_key_values(result.summary,
                            title="Figure 9: multipath suppression"))
    assert result.summary["peaks_after"] <= result.summary["peaks_before"]
    assert result.summary["peaks_after"] >= 1


def test_fig17_pillar_blocking(benchmark):
    """E-FIG17: the direct-path peak survives pillar blocking."""
    result = run_once(benchmark, fig17_pillar_blocking)
    print()
    print(format_key_values(result.summary, title="Figure 17: pillar blocking"))
    assert result.summary["direct_peak_rank [no blocking]"] == 1
    for label in ("blocked by 1 pillar", "blocked by 2 pillars"):
        assert result.summary[f"direct_peak_rank [{label}]"] >= 1
