"""Benchmark: multi-client localization throughput (fixes per second).

The paper localizes one client at a time; the ROADMAP's production target is
a server tracking hundreds of clients against a static AP deployment.  This
benchmark measures end-to-end fixes/sec over the office testbed geometry for
1, 16 and 256 concurrent clients, three ways:

* ``naive loop`` -- the seed implementation's behaviour: every fix rebuilds
  the AP bearing tables and interpolation indices from scratch (cold caches
  per fix), exactly the per-client cost the batched engine amortizes away;
* ``cached loop`` -- ``ArrayTrackService.localize`` per client on a
  long-lived service, so the shared bearing/steering caches and per-AP
  interpolation plans are warm (the single-client path *is* the batch path
  with a batch of one);
* ``batched`` -- one ``ArrayTrackService.localize_many`` call covering all
  clients.

Asserted: the batched engine beats the naive loop by >= 5x at 256 clients,
does not lose to the cached loop, and produces positions identical to the
looped single-client fixes (the batch path is bit-for-bit the single path).

Spectra are synthesized directly (a Gaussian lobe towards each client's true
bearing plus noise) so the benchmark times the server synthesis stage, not
the channel simulation.

Results are also written to ``BENCH_throughput.json`` (fixes/sec per mode
and client count) so the perf trajectory is machine-readable across PRs.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.core.batch import BatchLocalizer
from repro.core.cache import BearingGridCache
from repro.core.localizer import LocalizerConfig
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.eval import format_table
from repro.geometry.vector import Point2D, bearing_deg
from repro.server.backend import ServerConfig
from repro.testbed.office import OfficeTestbed

from conftest import run_once

GRID_RESOLUTION_M = 0.25
CLIENT_COUNTS = (1, 16, 256)
REPETITIONS = 3
#: Machine-readable results for cross-PR perf tracking.
RESULTS_PATH = os.path.join(os.environ.get("BENCH_OUTPUT_DIR", "."),
                            "BENCH_throughput.json")


def _localizer_config() -> LocalizerConfig:
    """Grid-only estimator configuration (the throughput-serving mode)."""
    return LocalizerConfig(grid_resolution_m=GRID_RESOLUTION_M,
                           refine_with_hill_climbing=False)


def _synthesize_clients(testbed: OfficeTestbed, count: int,
                        rng: np.random.Generator
                        ) -> dict[str, dict[str, list[AoASpectrum]]]:
    """Build per-AP spectra for ``count`` clients at random positions."""
    angles = default_angle_grid(1.0)
    sites = [(site.ap_id, site.position, site.orientation_deg)
             for site in testbed.ap_sites]
    xmin, ymin, xmax, ymax = testbed.bounds
    clients: dict[str, dict[str, list[AoASpectrum]]] = {}
    for index in range(count):
        position = Point2D(rng.uniform(xmin + 1.0, xmax - 1.0),
                           rng.uniform(ymin + 1.0, ymax - 1.0))
        per_ap: dict[str, list[AoASpectrum]] = {}
        for ap_id, ap_position, orientation_deg in sites:
            bearing = bearing_deg(ap_position, position)
            local = (angles - (bearing - orientation_deg) + 180.0) % 360.0 - 180.0
            power = np.exp(-0.5 * (local / 8.0) ** 2) \
                + 0.02 * rng.random(angles.shape[0])
            per_ap[ap_id] = [AoASpectrum(
                angles, power, ap_position=ap_position,
                ap_orientation_deg=orientation_deg, ap_id=ap_id)]
        clients[f"client-{index}"] = per_ap
    return clients


def _naive_fix(spectra_by_ap: dict[str, list[AoASpectrum]],
               bounds) -> None:
    """One seed-style fix: fresh localizer, cold caches, tables rebuilt."""
    localizer = BatchLocalizer(bounds, _localizer_config(),
                               bearing_cache=BearingGridCache())
    flat = [spectra[0] for spectra in spectra_by_ap.values()]
    localizer.estimate_batch({"client": flat})


def measure_throughput() -> dict[int, dict[str, float]]:
    """Return fixes/sec per client count for all three execution modes.

    Each mode is timed ``REPETITIONS`` times and the median kept, so one
    scheduler hiccup cannot sink (or inflate) a ratio.
    """
    testbed = OfficeTestbed()
    rng = np.random.default_rng(2026)
    results: dict[int, dict[str, float]] = {}
    for count in CLIENT_COUNTS:
        service = ArrayTrackService(ArrayTrackConfig(
            bounds=testbed.bounds,
            server=ServerConfig(localizer=_localizer_config())))
        clients = _synthesize_clients(testbed, count, rng)
        batch_estimates = service.localize_many(clients)   # warm the caches
        naive_s, cached_s, batched_s = [], [], []
        for _ in range(REPETITIONS):
            start = time.perf_counter()
            for spectra_by_ap in clients.values():
                _naive_fix(spectra_by_ap, testbed.bounds)
            naive_s.append(time.perf_counter() - start)

            start = time.perf_counter()
            looped = {client_id: service.localize(spectra_by_ap, client_id)
                      for client_id, spectra_by_ap in clients.items()}
            cached_s.append(time.perf_counter() - start)

            start = time.perf_counter()
            batch_estimates = service.localize_many(clients)
            batched_s.append(time.perf_counter() - start)
        for client_id, estimate in looped.items():
            divergence = estimate.position.distance_to(
                batch_estimates[client_id].position)
            assert divergence <= 1e-9, (
                f"batched fix for {client_id} diverged by {divergence} m")
        results[count] = {
            "naive": count / float(np.median(naive_s)),
            "cached": count / float(np.median(cached_s)),
            "batched": count / float(np.median(batched_s)),
        }
    payload = {
        str(count): dict(rates, speedup_vs_naive=rates["batched"]
                         / rates["naive"])
        for count, rates in results.items()
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return results


def test_throughput_batched_vs_looped(benchmark):
    """E-THROUGHPUT: batched synthesis >= 5x the seed's naive loop.

    The seed recomputed every AP-to-grid bearing table and interpolation
    index on each fix; the batched engine computes them once per deployment
    and evaluates Equation 8 for all clients in stacked passes.  The 5x
    acceptance bar is checked at 256 concurrent clients against the
    seed-style naive loop; the batched engine must also not lose to looping
    the (already cache-accelerated) single-client path, and batched
    positions must match looped positions exactly.
    """
    results = run_once(benchmark, measure_throughput)
    rows = []
    for count in CLIENT_COUNTS:
        rates = results[count]
        rows.append([count,
                     f"{rates['naive']:.0f}",
                     f"{rates['cached']:.0f}",
                     f"{rates['batched']:.0f}",
                     f"{rates['batched'] / rates['naive']:.1f}x",
                     f"{rates['batched'] / rates['cached']:.2f}x"])
    print()
    print(format_table(
        ["Clients", "Naive loop (fix/s)", "Cached loop (fix/s)",
         "Batched (fix/s)", "vs naive", "vs cached"],
        rows, title="Localization throughput, office testbed, 25 cm grid"))
    print(f"results written to {RESULTS_PATH}")
    at_capacity = results[CLIENT_COUNTS[-1]]
    assert at_capacity["batched"] >= 5.0 * at_capacity["naive"], (
        "batched localization must be at least 5x the naive per-client loop")
    assert at_capacity["batched"] >= 0.75 * at_capacity["cached"], (
        "batched localization must not regress against the cached loop")
