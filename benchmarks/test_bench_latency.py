"""Benchmark regenerating Figure 21 / Section 4.4: the latency breakdown."""

import pytest

from repro.eval import fig21_latency, format_table

from conftest import run_once


def test_fig21_latency_breakdown(benchmark):
    """E-FIG21: detection + transfer + processing adds roughly 100 ms."""
    results = run_once(benchmark, fig21_latency)
    rows = []
    for label, breakdown in results.items():
        rows.append([
            label,
            f"{breakdown['air_time_s'] * 1e3:.2f}",
            f"{breakdown['detection_s'] * 1e6:.0f}",
            f"{breakdown['transfer_s'] * 1e3:.2f}",
            f"{breakdown['processing_s'] * 1e3:.1f}",
            f"{breakdown['added_after_frame_end_s'] * 1e3:.1f}",
        ])
    print()
    print(format_table(
        ["configuration", "air time (ms)", "Td (us)", "Tt (ms)", "Tp (ms)",
         "added latency (ms)"],
        rows, title="Figure 21 / Section 4.4: latency breakdown"))
    paper = results["paper model"]
    # The paper's accounting: Td + Tt + Tp - T ~= 100 ms for a fast frame.
    assert paper["added_after_frame_end_s"] == pytest.approx(0.1, abs=0.02)
    assert paper["transfer_s"] == pytest.approx(2.56e-3, rel=0.01)
    assert paper["detection_s"] == pytest.approx(16e-6, rel=0.01)
    # Our Python synthesis step is measured live and stays within the same
    # order of magnitude as the paper's 100 ms Matlab implementation.
    measured = results["54 Mbit/s"]
    assert measured["processing_s"] < 1.0
