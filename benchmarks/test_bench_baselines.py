"""Benchmark comparing ArrayTrack with the RSSI baselines (Section 5 context)."""

from repro.eval import baseline_comparison, format_error_statistics

from conftest import run_once


def test_baseline_comparison(benchmark):
    """E-BASE: ArrayTrack is far finer-grained than RSS-based localization.

    The related-work systems the paper positions itself against (RADAR-style
    fingerprinting, model-based trilateration) land in the metre range on the
    same simulated testbed, while ArrayTrack stays in the tens of centimetres.
    """
    results = run_once(benchmark, baseline_comparison, 25)
    print()
    print(format_error_statistics(results, label="system",
                                  title="ArrayTrack vs RSSI baselines"))
    arraytrack = results["arraytrack"].median_cm
    assert arraytrack < results["rss fingerprinting"].median_cm
    assert arraytrack < results["rss model"].median_cm
    assert arraytrack < results["weighted centroid"].median_cm
    # RSS systems are metre-scale; ArrayTrack is sub-metre.
    assert results["rss model"].median_cm > 100.0
    assert arraytrack < 100.0
