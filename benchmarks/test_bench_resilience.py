"""Benchmark: supervised process-pool throughput under injected crashes.

PR 7's resilience layer promises that worker crashes are absorbed -- the
pool is rebuilt, failed shards are retried with backoff, and the batch's
fixes stay bit-for-bit identical to the serial path.  That promise has a
price: every crash costs one spawn-pool rebuild plus a backoff sleep.
This benchmark quantifies the price and pins a floor under it.

Two configurations run the same ``localize_many`` batch repeatedly on the
``parallel.backend="process"`` service:

* ``fault-free`` -- no injected faults (the PR-6 happy path);
* ``10% crash rate`` -- a :class:`repro.testing.faults.FaultSpec` killing
  a worker mid-shard (``os._exit`` after shm attach) with seeded
  probability 0.1 per shard execution, so roughly one batch in five loses
  a worker and must rebuild + retry.

Asserted, at any size: every batch of both configurations is bit-identical
to the serial fixes -- crashes must never change answers.  At full size
the **degraded-throughput bound** applies: with a 10% per-shard crash rate
the supervised pool must retain at least ``DEGRADED_THROUGHPUT_FLOOR``
(10%) of its fault-free throughput.  The bound is deliberately loose --
each crash costs a full spawn-pool rebuild (~1 s class on CI) -- it exists
to catch pathological regressions (retry storms, unbounded backoff,
rebuild-per-shard instead of rebuild-per-failure), not to promise crashes
are cheap.

Median and p99 per-batch latency plus fixes/s for both configurations are
emitted to ``BENCH_resilience.json``.  Run with ``--bench-smoke`` for the
untimed CI canary: fewer batches, equality still asserted, the throughput
bound skipped (and recorded as skipped in the JSON).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.eval import format_table
from repro.geometry.vector import Point2D, bearing_deg
from repro.testbed.office import OfficeTestbed
from repro.testing import faults

from conftest import run_once

GRID_RESOLUTION_M = 0.25
CLIENTS_PER_BATCH = 16
NUM_WORKERS = 2
NUM_BATCHES = 25
CRASH_PROBABILITY = 0.1
#: Seed of the per-worker crash schedule: the first sub-0.1 draw sits at a
#: worker's 7th shard, so fresh (rebuilt) workers always survive the retry.
CRASH_SEED = 5
#: Faulty throughput must stay above this fraction of fault-free.
DEGRADED_THROUGHPUT_FLOOR = 0.1
#: Reduced batch count for the --bench-smoke CI canary.
SMOKE_BATCHES = 4
RESULTS_PATH = os.path.join(os.environ.get("BENCH_OUTPUT_DIR", "."),
                            "BENCH_resilience.json")


def _synthesize_clients(testbed: OfficeTestbed, count: int,
                        rng: np.random.Generator
                        ) -> dict[str, dict[str, list[AoASpectrum]]]:
    angles = default_angle_grid(1.0)
    sites = [(site.ap_id, site.position, site.orientation_deg)
             for site in testbed.ap_sites]
    xmin, ymin, xmax, ymax = testbed.bounds
    clients: dict[str, dict[str, list[AoASpectrum]]] = {}
    for index in range(count):
        position = Point2D(rng.uniform(xmin + 1.0, xmax - 1.0),
                           rng.uniform(ymin + 1.0, ymax - 1.0))
        per_ap: dict[str, list[AoASpectrum]] = {}
        for ap_id, ap_position, orientation_deg in sites:
            bearing = bearing_deg(ap_position, position)
            local = (angles - (bearing - orientation_deg) + 180.0) % 360.0 \
                - 180.0
            power = np.exp(-0.5 * (local / 8.0) ** 2) \
                + 0.02 * rng.random(angles.shape[0])
            per_ap[ap_id] = [AoASpectrum(
                angles, power, ap_position=ap_position,
                ap_orientation_deg=orientation_deg, ap_id=ap_id)]
        clients[f"client-{index}"] = per_ap
    return clients


def _service(testbed: OfficeTestbed, backend: str) -> ArrayTrackService:
    config = ArrayTrackConfig(bounds=testbed.bounds).updated({
        "server.localizer.grid_resolution_m": GRID_RESOLUTION_M,
        "parallel.backend": backend,
        "parallel.num_workers": NUM_WORKERS,
        "parallel.min_clients_per_worker": 2,
    })
    return ArrayTrackService(config)


def _assert_identical(name: str, actual, reference) -> None:
    assert list(actual) == list(reference), (
        f"{name} returned clients out of order")
    for client_id, expected in reference.items():
        fix = actual[client_id]
        assert (fix.position.x, fix.position.y) \
            == (expected.position.x, expected.position.y), (
            f"{name} fix for {client_id} diverged from the serial path")
        assert fix.likelihood == expected.likelihood, (
            f"{name} likelihood for {client_id} diverged")


def _timed_batches(service: ArrayTrackService, clients, reference,
                   name: str, num_batches: int) -> list[float]:
    """Per-batch wall times; every batch asserted bit-identical."""
    _assert_identical(name, service.localize_many(clients), reference)
    latencies = []
    for _ in range(num_batches):
        start = time.perf_counter()
        fixes = service.localize_many(clients)
        latencies.append(time.perf_counter() - start)
        _assert_identical(name, fixes, reference)
    return latencies


def measure_resilience(num_batches: int = NUM_BATCHES) -> dict[str, object]:
    """Throughput and latency with and without injected worker crashes."""
    testbed = OfficeTestbed()
    rng = np.random.default_rng(2026)
    clients = _synthesize_clients(testbed, CLIENTS_PER_BATCH, rng)
    serial_service = _service(testbed, backend="none")
    reference = serial_service.localize_many(clients)
    serial_service.close()

    faults.deactivate()
    fault_free_service = _service(testbed, backend="process")
    try:
        fault_free = _timed_batches(fault_free_service, clients, reference,
                                    "fault-free", num_batches)
    finally:
        fault_free_service.close()

    faults.activate(faults.FaultSpec(
        kind="kill-worker-mid-shard", stage="after-attach",
        probability=CRASH_PROBABILITY, seed=CRASH_SEED))
    try:
        faulty_service = _service(testbed, backend="process")
        try:
            faulty = _timed_batches(faulty_service, clients, reference,
                                    "10% crash rate", num_batches)
            pool_stats = faulty_service._procpool.stats.snapshot()
            fallbacks = faulty_service.health()["fallbacks"]["served_by"]
        finally:
            faulty_service.close()
    finally:
        faults.deactivate()

    def summarize(latencies: list[float]) -> dict[str, float]:
        total = float(np.sum(latencies))
        return {
            "batches": len(latencies),
            "fixes_per_s": len(latencies) * CLIENTS_PER_BATCH / total,
            "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
            "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        }

    fault_free_summary = summarize(fault_free)
    faulty_summary = summarize(faulty)
    results: dict[str, object] = {
        "clients_per_batch": CLIENTS_PER_BATCH,
        "num_workers": NUM_WORKERS,
        "cpu_count": os.cpu_count(),
        "crash_probability": CRASH_PROBABILITY,
        "crash_seed": CRASH_SEED,
        "fault_free": fault_free_summary,
        "faulty": {**faulty_summary, "pool": pool_stats,
                   "fallbacks": fallbacks},
        "throughput_ratio": (faulty_summary["fixes_per_s"]
                             / fault_free_summary["fixes_per_s"]),
        "degraded_throughput_floor": DEGRADED_THROUGHPUT_FLOOR,
        "floor_applies": num_batches >= NUM_BATCHES,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    return results


def test_resilience_overhead(benchmark, bench_smoke):
    """E-RESILIENCE: crash-recovery overhead, bit-identical throughout.

    Every batch of both configurations must match the serial fixes
    exactly; at full size the faulty configuration must additionally
    retain >= 10% of fault-free throughput (the degraded-throughput
    bound -- see the module docstring for why it is deliberately loose).
    """
    num_batches = SMOKE_BATCHES if bench_smoke else NUM_BATCHES
    results = run_once(benchmark, measure_resilience, num_batches)
    rows = []
    for name in ("fault_free", "faulty"):
        entry = results[name]
        rows.append([name.replace("_", "-"),
                     f"{entry['fixes_per_s']:.0f}",
                     f"{entry['p50_ms']:.0f}", f"{entry['p99_ms']:.0f}"])
    print()
    print(format_table(
        ["configuration", "fixes/s", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Supervised process pool, {results['clients_per_batch']} "
              f"clients/batch, {NUM_WORKERS} workers, "
              f"{results['crash_probability']:.0%} crash rate"))
    pool = results["faulty"]["pool"]
    print(f"crashes absorbed: {pool['broken_pools']} broken pools, "
          f"{pool['rebuilds']} rebuilds, {pool['shard_retries']} shard "
          f"retries, {pool['backoff_slept_s']:.2f}s backoff")
    print(f"throughput ratio: {results['throughput_ratio']:.2f} "
          f"(floor {DEGRADED_THROUGHPUT_FLOOR}, "
          f"{'applies' if results['floor_applies'] else 'skipped in smoke'})")
    print(f"results written to {RESULTS_PATH}")
    if results["floor_applies"]:
        assert results["throughput_ratio"] >= DEGRADED_THROUGHPUT_FLOOR, (
            f"supervised pool kept only {results['throughput_ratio']:.0%} "
            f"of fault-free throughput under a "
            f"{results['crash_probability']:.0%} crash rate; the degraded "
            f"bound is {DEGRADED_THROUGHPUT_FLOOR:.0%}")
