"""Benchmark: batched Section 2.3 AoA frontend throughput.

PRs 1-4 batched everything downstream of the spectrum -- the Equation 8 grid
fold, the hill-climb refinement and the thread-sharded service -- but every
AoA spectrum itself was still produced one frame at a time: per-frame
covariance, per-frame 8x8 ``eigh``, per-frame noise-projection GEMM and a
recomputed W(theta) window.  This benchmark measures the stacked frontend
(:meth:`repro.core.pipeline.SpectrumComputer.compute_many` reached through
``ArrayTrackAP.compute_spectra``) against the serial reference path
(``SpectrumConfig.vectorized_frontend = False``), two ways:

* **frontend microbench** -- one AP, one client, 256 buffered frames:
  frames-per-second through ``spectra_for_client`` with the full paper
  pipeline (smoothing, MUSIC, mirroring, weighting, symmetry removal);
* **end to end** -- the office testbed: frames -> spectra -> fixes through
  ``ArrayTrackService.localize_buffered`` over every deployment AP, so the
  number reflects what the batched frontend buys a whole localization sweep.

Asserted: the vectorized frontend beats the serial path by >= 5x at 256
frames, and both paths produce bit-for-bit identical spectra and fixes.

Results are also written to ``BENCH_frontend.json`` (frames/s and speedups)
so the perf trajectory is machine-readable across PRs.  Run with
``--bench-smoke`` for an untimed single-repetition equality canary at
reduced sizes (the 5x bar is only asserted at full size, where it is not
noise-bound).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.ap import APConfig, ArrayTrackAP
from repro.channel import MultipathChannel
from repro.eval import format_table
from repro.geometry.vector import Point2D
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed

from conftest import run_once

GRID_RESOLUTION_M = 0.25
NUM_FRAMES = 256
NUM_CLIENTS = 16
REPETITIONS = 3
SPEEDUP_FLOOR = 5.0
#: Reduced problem sizes for the --bench-smoke CI canary.
SMOKE_FRAMES = 24
SMOKE_CLIENTS = 4
#: Machine-readable results for cross-PR perf tracking.
RESULTS_PATH = os.path.join(os.environ.get("BENCH_OUTPUT_DIR", "."),
                            "BENCH_frontend.json")


def _buffered_ap(num_frames: int) -> ArrayTrackAP:
    """One paper-faithful AP with ``num_frames`` buffered frames of a client."""
    ap = ArrayTrackAP(
        "bench-ap", Point2D(0.0, 0.0), orientation_deg=30.0,
        config=APConfig(buffer_capacity=num_frames),
        rng=np.random.default_rng(2013))
    rng = np.random.default_rng(7)
    for index in range(num_frames):
        channel = MultipathChannel.from_bearings(
            [float(rng.uniform(10.0, 170.0)), float(rng.uniform(10.0, 350.0))],
            [1.0, float(rng.uniform(0.3, 0.8)) * np.exp(1j * rng.uniform(0, 6))],
            client_id="client")
        ap.overhear(channel, timestamp_s=0.03 * index, rng=rng)
    return ap


def _timed(callable_, repetitions: int = REPETITIONS):
    result = callable_()           # warm caches / steady state
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        result = callable_()
        samples.append(time.perf_counter() - start)
    return result, float(np.median(samples))


def measure_frontend(num_frames: int = NUM_FRAMES) -> dict[str, float]:
    """Time serial vs batched spectra over one AP's buffered frames."""
    ap = _buffered_ap(num_frames)

    ap.config.spectrum.vectorized_frontend = False
    serial, serial_s = _timed(lambda: ap.spectra_for_client("client"))
    ap.config.spectrum.vectorized_frontend = True
    batched, batched_s = _timed(lambda: ap.spectra_for_client("client"))

    assert len(serial) == len(batched) == num_frames
    for reference, candidate in zip(serial, batched, strict=True):
        assert np.array_equal(reference.angles_deg, candidate.angles_deg), \
            "batched frontend changed the angle grid"
        assert np.array_equal(reference.power, candidate.power), \
            "batched frontend diverged from the serial reference path"
    return {
        "num_frames": num_frames,
        "serial_s": serial_s,
        "vectorized_s": batched_s,
        "serial_frames_per_s": num_frames / serial_s,
        "vectorized_frames_per_s": num_frames / batched_s,
        "speedup": serial_s / batched_s,
    }


def measure_end_to_end(num_clients: int = NUM_CLIENTS) -> dict[str, float]:
    """Time frames -> spectra -> fixes over the office testbed, both paths."""
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(
        testbed, ScenarioConfig(frames_per_client=3, seed=2013))
    clients = testbed.client_ids()[:num_clients]
    for client_id in clients:
        deployment.capture_client(client_id)
    num_frames = sum(len(ap.buffer) for ap in deployment.aps.values())
    service = ArrayTrackService(ArrayTrackConfig(bounds=testbed.bounds).updated(
        {"server.localizer.grid_resolution_m": GRID_RESOLUTION_M}))
    service.adopt_aps(deployment.aps.values())

    def set_frontend(vectorized: bool) -> None:
        for ap in deployment.aps.values():
            ap.config.spectrum.vectorized_frontend = vectorized

    set_frontend(False)
    serial, serial_s = _timed(lambda: service.localize_buffered(clients))
    set_frontend(True)
    batched, batched_s = _timed(lambda: service.localize_buffered(clients))

    assert list(serial) == list(batched), "client order diverged"
    for client_id, expected in serial.items():
        actual = batched[client_id]
        assert (actual.position.x, actual.position.y) \
            == (expected.position.x, expected.position.y), (
            f"fix for {client_id} diverged between frontend paths")
        assert actual.likelihood == expected.likelihood, (
            f"likelihood for {client_id} diverged between frontend paths")
    return {
        "num_clients": len(clients),
        "num_frames": num_frames,
        "serial_s": serial_s,
        "vectorized_s": batched_s,
        "serial_frames_per_s": num_frames / serial_s,
        "vectorized_frames_per_s": num_frames / batched_s,
        "fixes_per_s": len(serial) / batched_s,
        "speedup": serial_s / batched_s,
    }


def measure_all(num_frames: int, num_clients: int) -> dict[str, dict[str, float]]:
    results = {
        "frontend": measure_frontend(num_frames),
        "end_to_end": measure_end_to_end(num_clients),
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    return results


def test_frontend_speedup(benchmark, bench_smoke):
    """E-FRONTEND: the batched Section 2.3 frontend >= 5x the serial path.

    The serial path pays one covariance estimate, one ``eigh``, one noise
    projection GEMM and one symmetry side-power scan per frame; the batched
    path folds each stage into a stacked pass over all frames.  Bit-for-bit
    equality of spectra and fixes is asserted at any size; the 5x bar
    applies at 256 frames.
    """
    num_frames = SMOKE_FRAMES if bench_smoke else NUM_FRAMES
    num_clients = SMOKE_CLIENTS if bench_smoke else NUM_CLIENTS
    results = run_once(benchmark, measure_all, num_frames, num_clients)
    frontend = results["frontend"]
    end_to_end = results["end_to_end"]
    rows = [
        ["frontend (serial)", f"{frontend['serial_s'] * 1e3:.0f}",
         f"{frontend['serial_frames_per_s']:.0f}", "1.0x"],
        ["frontend (vectorized)", f"{frontend['vectorized_s'] * 1e3:.0f}",
         f"{frontend['vectorized_frames_per_s']:.0f}",
         f"{frontend['speedup']:.1f}x"],
        ["end-to-end (serial)", f"{end_to_end['serial_s'] * 1e3:.0f}",
         f"{end_to_end['serial_frames_per_s']:.0f}", "1.0x"],
        ["end-to-end (vectorized)", f"{end_to_end['vectorized_s'] * 1e3:.0f}",
         f"{end_to_end['vectorized_frames_per_s']:.0f}",
         f"{end_to_end['speedup']:.1f}x"],
    ]
    print()
    print(format_table(
        ["configuration", "batch (ms)", "frames/s", "vs serial"],
        rows,
        title=f"Section 2.3 frontend, {frontend['num_frames']} frames; "
              f"office sweep, {end_to_end['num_clients']} clients / "
              f"{end_to_end['num_frames']} frames"))
    print(f"results written to {RESULTS_PATH}")
    if not bench_smoke:
        assert frontend["speedup"] >= SPEEDUP_FLOOR, (
            f"batched frontend must be >= {SPEEDUP_FLOOR}x the serial "
            f"per-frame path at {NUM_FRAMES} frames, "
            f"got {frontend['speedup']:.2f}x")
        assert end_to_end["vectorized_s"] <= end_to_end["serial_s"], (
            "the batched frontend must not lose end to end")


if __name__ == "__main__":
    print(json.dumps(measure_all(NUM_FRAMES, NUM_CLIENTS), indent=2))
