"""Benchmarks regenerating the robustness results (Figures 18-20, Section 4.3)."""


import pytest

from repro.eval import (
    appendix_a_height_error,
    fig18_height_orientation,
    fig19_sample_count,
    fig20_snr_sweep,
    format_error_statistics,
    format_key_values,
    format_table,
    sec434_detection_snr,
    sec435_collisions,
)

from conftest import run_once


def test_fig18_height_orientation(benchmark):
    """E-FIG18: robustness to client height and antenna orientation."""
    results = run_once(benchmark, fig18_height_orientation, 30)
    print()
    print(format_error_statistics(results, label="condition",
                                  title="Figure 18: robustness (6 APs, 8 antennas)"))
    original = results["original"].median_cm
    height = results["different antenna heights"].median_cm
    orientation = results["different antenna orientations"].median_cm
    # A 1.5 m height difference costs little (paper: 23 -> 26 cm); a 90-degree
    # polarization mismatch costs noticeably more (paper: 23 -> 50 cm) but the
    # system keeps working.
    assert height <= original * 2.0 + 20.0
    assert orientation <= original * 4.0 + 50.0


def test_fig19_sample_count(benchmark):
    """E-FIG19: ~5-10 preamble samples already give a stable spectrum."""
    results = run_once(benchmark, fig19_sample_count, (1, 5, 10, 100), 30)
    rows = [[count, f"{values['bearing_std_deg']:.1f}",
             f"{values['mean_error_deg']:.1f}"]
            for count, values in results.items()]
    print()
    print(format_table(["samples", "peak bearing std (deg)", "mean error (deg)"],
                       rows, title="Figure 19: effect of the number of samples"))
    assert results[10]["bearing_std_deg"] <= results[1]["bearing_std_deg"] + 1.0
    assert results[100]["bearing_std_deg"] <= results[1]["bearing_std_deg"] + 1.0
    # Ten samples are essentially as stable as one hundred (the paper's point).
    assert results[10]["bearing_std_deg"] <= results[100]["bearing_std_deg"] + 2.0


def test_fig20_snr(benchmark):
    """E-FIG20: spectra stay usable down to ~0 dB and degrade below."""
    results = run_once(benchmark, fig20_snr_sweep, (15.0, 8.0, 2.0, -5.0))
    rows = [[snr, f"{values['power_near_true_bearing']:.3f}",
             f"{values['strongest_peak_error_deg']:.1f}"]
            for snr, values in results.items()]
    print()
    print(format_table(["SNR (dB)", "power near true bearing", "peak error (deg)"],
                       rows, title="Figure 20: AoA spectra vs SNR"))
    assert (results[15.0]["power_near_true_bearing"]
            >= results[-5.0]["power_near_true_bearing"])
    assert (results[15.0]["strongest_peak_error_deg"]
            <= results[-5.0]["strongest_peak_error_deg"])


def test_appendix_a_height_error(benchmark):
    """Appendix A: 1.5 m height offset costs 1-4 % of bearing-related error."""
    results = run_once(benchmark, appendix_a_height_error, 1.5, (5.0, 10.0))
    print()
    print(format_key_values({f"d = {d:.0f} m": f"{e * 100:.1f}%"
                             for d, e in results.items()},
                            title="Appendix A: height-difference error"))
    assert results[5.0] == pytest.approx(0.044, abs=0.01)
    assert results[10.0] == pytest.approx(0.011, abs=0.005)


def test_sec434_detection_snr(benchmark):
    """E-SEC434: matched-filter detection keeps working down to -10 dB."""
    results = run_once(benchmark, sec434_detection_snr,
                       (10.0, 0.0, -5.0, -10.0, -15.0), 30)
    rows = [[snr, f"{v['matched_filter_rate'] * 100:.0f}%",
             f"{v['schmidl_cox_rate'] * 100:.0f}%"]
            for snr, v in results.items()]
    print()
    print(format_table(["SNR (dB)", "matched filter", "Schmidl-Cox"], rows,
                       title="Section 4.3.4: packet detection rate vs SNR"))
    assert results[10.0]["matched_filter_rate"] == 1.0
    assert results[-10.0]["matched_filter_rate"] >= 0.8
    # The full-preamble correlation outperforms plain Schmidl-Cox at low SNR.
    assert (results[-10.0]["matched_filter_rate"]
            >= results[-10.0]["schmidl_cox_rate"])


def test_sec435_collisions(benchmark):
    """E-SEC435: AoA recovery for colliding packets via cancellation."""
    results = run_once(benchmark, sec435_collisions, 20)
    print()
    print(format_key_values(results, title="Section 4.3.5: collision handling"))
    assert results["success_rate"] >= 0.3
    assert results["mean_bearing_error_deg"] < 90.0
