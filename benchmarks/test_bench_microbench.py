"""Benchmark regenerating Table 1: peak stability under small movements."""

from repro.eval import format_table, table1_peak_stability

from conftest import run_once


def test_table1_peak_stability(benchmark):
    """E-TAB1: direct-path peaks are stable, reflection peaks change.

    The paper measures, over 100 random positions, how often the direct and
    reflection peaks move by more than five degrees when the client moves
    5 cm (Table 1: 71 / 18 / 8 / 3 percent).  The simulated clutter is not
    identical to the authors' building, so the asserted shape is the
    qualitative one the multipath-suppression algorithm relies on: the
    direct-path peak is stable far more often than not, and a direct-path
    change co-occurring with stable reflections (the only failure case of
    the Figure 8 algorithm) is rare.
    """
    result = run_once(benchmark, table1_peak_stability, 100)
    rows = [[scenario, f"{fraction * 100:.0f}%"]
            for scenario, fraction in result.as_dict().items()]
    print()
    print(format_table(["Scenario", "Frequency"], rows,
                       title="Table 1: peak stability under 5 cm movement"))
    assert result.total_positions == 100
    assert result.fraction_direct_same >= 0.6
    assert result.fraction_direct_changed_reflection_same <= 0.2
