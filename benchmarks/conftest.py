"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index), prints the corresponding rows/series, and
asserts the qualitative shape the paper reports.  ``pytest-benchmark`` times
each regeneration; run with ``-s`` to see the printed reports.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def bench_smoke(request) -> bool:
    """True when running under ``--bench-smoke`` (untimed 1-rep CI canary)."""
    return bool(request.config.getoption("--bench-smoke", default=False))


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are far too heavy for the default calibration loop, so
    every benchmark uses a single round / single iteration measurement.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
