#!/usr/bin/env python3
"""A guided tour of the AoA processing chain on a single client-AP link.

This example exposes the intermediate products the other examples hide:
the multipath channel produced by the ray tracer, the raw (unsmoothed) MUSIC
spectrum, the effect of spatial smoothing, the array-geometry window, the
symmetry resolution using the ninth antenna, and finally multipath
suppression across two frames.  It prints a coarse ASCII rendering of each
spectrum so the effect of every stage is visible in a terminal.

Run with:  python examples/aoa_spectrum_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    MultipathSuppressor,
    SpectrumComputer,
    SpectrumConfig,
    find_peaks,
)
from repro.geometry import bearing_deg
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed


def ascii_spectrum(spectrum, bins: int = 72, height: int = 6) -> str:
    """Render a 360-degree spectrum as a small ASCII bar chart."""
    edges = np.linspace(0.0, 360.0, bins + 1)
    power = spectrum.power / max(spectrum.max_power, 1e-12)
    levels = []
    for low, high in zip(edges[:-1], edges[1:], strict=True):
        mask = (spectrum.angles_deg >= low) & (spectrum.angles_deg < high)
        levels.append(float(np.max(power[mask])) if np.any(mask) else 0.0)
    rows = []
    for row in range(height, 0, -1):
        threshold = (row - 0.5) / height
        rows.append("".join("#" if level >= threshold else " " for level in levels))
    rows.append("-" * bins)
    rows.append("0" + " " * (bins // 2 - 4) + "180 deg" + " " * (bins // 2 - 7) + "360")
    return "\n".join(rows)


def describe(label, spectrum) -> None:
    peaks = find_peaks(spectrum, min_relative_height=0.2)
    peak_list = ", ".join(f"{p.angle_deg:.0f} deg ({p.power / spectrum.max_power:.2f})"
                          for p in peaks[:4])
    print(f"\n--- {label} ---")
    print(f"peaks: {peak_list if peak_list else '(none)'}")
    print(ascii_spectrum(spectrum))


def main() -> None:
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed,
                                     ScenarioConfig(frames_per_client=2, seed=11))
    client_id, ap_id = "client-21", "2"
    ap = deployment.aps[ap_id]
    position = testbed.client_position(client_id)
    true_bearing = bearing_deg(ap.position, position)
    local_bearing = (true_bearing - ap.array.orientation_deg) % 360.0
    print(f"client {client_id} at ({position.x:.1f}, {position.y:.1f}) m; "
          f"AP {ap_id} at ({ap.position.x:.1f}, {ap.position.y:.1f}) m")
    print(f"true bearing: {true_bearing:.1f} deg global "
          f"= {local_bearing:.1f} deg in the array's local frame")

    # The multipath channel the ray tracer produces.
    channel = deployment.channel_builder.build(position, ap.position,
                                               client_id=client_id, ap_id=ap_id)
    direct = channel.direct_component
    print(f"\nchannel: {len(channel)} arriving components, "
          f"direct path carries {100 * direct.power / channel.total_power:.0f}% "
          f"of the power ({'dominant' if channel.direct_path_is_dominant() else 'not dominant'})")

    # Capture one frame and walk through the processing variants.
    entry = ap.overhear(channel, timestamp_s=0.0)
    snapshots = ap._compensate(entry.snapshots)

    no_smoothing = SpectrumComputer(SpectrumConfig(smoothing_groups=1,
                                                   apply_weighting=False))
    describe("MUSIC without spatial smoothing (mirrored, unweighted)",
             no_smoothing.compute(snapshots, ap.array, ap.linear_indices))

    smoothed = SpectrumComputer(SpectrumConfig(smoothing_groups=2,
                                               apply_weighting=False))
    describe("MUSIC with spatial smoothing (NG = 2)",
             smoothed.compute(snapshots, ap.array, ap.linear_indices))

    weighted = SpectrumComputer(SpectrumConfig(smoothing_groups=2,
                                               apply_weighting=True))
    describe("... plus array-geometry weighting W(theta)",
             weighted.compute(snapshots, ap.array, ap.linear_indices))

    resolved = weighted.compute_with_symmetry(snapshots, ap.array, ap.linear_indices)
    describe("... plus symmetry removal using the ninth antenna", resolved)

    # Multipath suppression needs a second frame captured a moment later.
    second_position = deployment.client_track(client_id, num_frames=2)[1]
    second_channel = deployment.channel_builder.build(second_position, ap.position,
                                                      client_id=client_id, ap_id=ap_id)
    second_entry = ap.overhear(second_channel, timestamp_s=0.03)
    second_spectrum = ap.compute_spectrum(second_entry)
    suppressed = MultipathSuppressor().suppress([resolved, second_spectrum])
    describe("... plus multipath suppression across two frames", suppressed)

    print(f"\n(the direct path arrives at {local_bearing:.0f} deg in these plots)")


if __name__ == "__main__":
    main()
