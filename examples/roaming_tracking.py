#!/usr/bin/env python3
"""Real-time tracking of a client roaming through the office.

The paper's motivating applications (augmented-reality navigation, retail
analytics) need a continuous stream of fine-grained location fixes while the
user walks around.  This example walks a client along a corridor waypoint
track, localizes every transmitted frame with the full ArrayTrack pipeline,
and feeds the fixes through the :class:`~repro.server.ClientTracker` the way
an application front-end would.

Run with:  python examples/roaming_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro.channel import random_waypoint_track
from repro.core import LocalizerConfig
from repro.geometry import Point2D
from repro.server import ArrayTrackServer, ClientTracker, ServerConfig
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed


def main() -> None:
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(
        testbed, ScenarioConfig(frames_per_client=1, snr_db=25.0, seed=42))
    server = ArrayTrackServer(
        testbed.bounds,
        ServerConfig(localizer=LocalizerConfig(grid_resolution_m=0.15,
                                               spectrum_floor=0.05)))
    tracker = ClientTracker(smoothing_factor=0.6)

    # A walk along the central corridor (y = 9 m) from west to east.
    waypoints = random_waypoint_track(Point2D(5.0, 9.5), Point2D(35.0, 9.5),
                                      num_samples=12)
    fix_interval_s = 0.5  # one localizable frame every half second
    errors_cm = []
    print(f"{'t (s)':>6} | {'true position':>16} | {'estimate':>16} | error")
    for index, waypoint in enumerate(waypoints):
        timestamp = index * fix_interval_s
        deployment.clear()
        deployment.capture_client("roamer", positions=[waypoint],
                                  start_time_s=timestamp)
        spectra = deployment.spectra_for_client("roamer")
        estimate = server.localize_spectra(spectra, "roamer")
        point = tracker.update("roamer", estimate, timestamp)
        error_cm = point.position.distance_to(waypoint) * 100.0
        errors_cm.append(error_cm)
        print(f"{timestamp:6.1f} | ({waypoint.x:6.2f}, {waypoint.y:5.2f}) m "
              f"| ({point.position.x:6.2f}, {point.position.y:5.2f}) m "
              f"| {error_cm:5.0f} cm")

    print()
    print(f"median error over the walk : {np.median(errors_cm):.0f} cm")
    print(f"mean error over the walk   : {np.mean(errors_cm):.0f} cm")
    print(f"smoothed path length       : {tracker.path_length_m('roamer'):.1f} m "
          f"(ground truth {waypoints[0].distance_to(waypoints[-1]):.1f} m straight line)")


if __name__ == "__main__":
    main()
