#!/usr/bin/env python3
"""Real-time tracking of a client roaming through the office.

The paper's motivating applications (augmented-reality navigation, retail
analytics) need a continuous stream of fine-grained location fixes while the
user walks around.  This example walks a client along a corridor waypoint
track and drives the ``ArrayTrackService`` facade the way a live deployment
would: at every step the client transmits a short burst of frames (moving a
few centimetres between them), every overheard frame is streamed into the
client's session with ``service.ingest``, and ``service.tick`` drains ready
sessions through one batched synthesis pass.

The full paper pipeline is enabled: the streaming multipath-suppression
stage (Section 2.4) groups each burst by capture time and removes peaks
that wander between frames before synthesis, and every fix lands in the
built-in per-client tracker -- read back with ``service.track`` /
``service.latest_fix``.

Run with:  python examples/roaming_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayTrackConfig, ArrayTrackService
from repro.channel import movement_track, random_waypoint_track
from repro.geometry import Point2D
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed

FRAMES_PER_BURST = 3


def main() -> None:
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(
        testbed, ScenarioConfig(frames_per_client=FRAMES_PER_BURST,
                                snr_db=25.0, seed=42))
    # One config tree: localizer grid, streaming trigger (one fix per
    # burst), the multipath-suppression stage and the tracker smoothing
    # all in one place.
    config = ArrayTrackConfig(bounds=testbed.bounds).updated({
        "server.localizer.grid_resolution_m": 0.15,
        "session.emit_every_frames": FRAMES_PER_BURST,
        "session.suppress_multipath": True,
        "suppressor.max_group_size": FRAMES_PER_BURST,
        "tracker.smoothing_factor": 0.6,
    })
    service = ArrayTrackService(config)

    # A walk along the central corridor (y = 9.5 m) from west to east.
    waypoints = random_waypoint_track(Point2D(5.0, 9.5), Point2D(35.0, 9.5),
                                      num_samples=12)
    rng = np.random.default_rng(42)
    fix_interval_s = 0.5  # one localizable burst every half second
    errors_cm = []
    print(f"{'t (s)':>6} | {'true position':>16} | {'estimate':>16} | error")
    for index, waypoint in enumerate(waypoints):
        timestamp = index * fix_interval_s
        deployment.clear()
        # The burst: three frames 30 ms apart while the walker inadvertently
        # moves a few centimetres -- the movement the suppression stage
        # exploits (direct-path peaks stay put, multipath peaks wander).
        burst = movement_track(waypoint, FRAMES_PER_BURST, rng=rng)
        deployment.capture_client("roamer", positions=burst,
                                  start_time_s=timestamp)
        # Stream every AP's spectra of this burst into the session...
        for ap_id, spectra in deployment.spectra_for_client("roamer").items():
            for spectrum in spectra:
                service.ingest(ap_id, spectrum, client_id="roamer")
        # ...and let the service emit the fixes whose triggers fired.
        fixes = service.tick(now_s=timestamp)
        estimate = fixes["roamer"]
        error_cm = estimate.position.distance_to(waypoint) * 100.0
        errors_cm.append(error_cm)
        print(f"{timestamp:6.1f} | ({waypoint.x:6.2f}, {waypoint.y:5.2f}) m "
              f"| ({estimate.position.x:6.2f}, {estimate.position.y:5.2f}) m "
              f"| {error_cm:5.0f} cm")

    track = service.track("roamer")
    latest = service.latest_fix("roamer")
    assert latest is not None and latest == track[-1]
    print()
    print(f"fixes emitted              : {len(track)}")
    print(f"latest fix                 : ({latest.position.x:.2f}, "
          f"{latest.position.y:.2f}) m at t={latest.timestamp_s:.1f} s")
    print(f"median error over the walk : {np.median(errors_cm):.0f} cm")
    print(f"mean error over the walk   : {np.mean(errors_cm):.0f} cm")
    print(f"smoothed path length       : {service.tracker.path_length_m('roamer'):.1f} m "
          f"(ground truth {waypoints[0].distance_to(waypoints[-1]):.1f} m straight line)")


if __name__ == "__main__":
    main()
