#!/usr/bin/env python3
"""Quickstart: localize one client of the simulated office with ArrayTrack.

This walks through the full pipeline step by step:

1. build the office testbed (floorplan, six AP sites, 41 clients);
2. instantiate the six ArrayTrack APs and the channel simulator;
3. have the client transmit three frames (with centimetre-scale movement
   between them, as a hand-held device would);
4. each AP computes an AoA spectrum per overheard frame;
5. the ``ArrayTrackService`` facade suppresses multipath, synthesizes the
   spectra and returns a location estimate.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ArrayTrackConfig, ArrayTrackService
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed


def main() -> None:
    # 1. The static environment: walls, pillars, AP sites, client positions.
    testbed = build_office_testbed()
    print(testbed.floorplan.summary())
    print(f"APs: {', '.join(testbed.ap_ids())};  clients: {len(testbed.clients)}")

    # 2. The simulated deployment: one ArrayTrackAP per site, a ray-traced
    #    multipath channel between every client and AP.
    scenario = ScenarioConfig(frames_per_client=3, snr_db=25.0, seed=7)
    deployment = SimulatedDeployment(testbed, scenario)

    # 3.-4. The client transmits; every AP overhears and computes spectra.
    client_id = "client-17"
    spectra = deployment.collect_client_spectra(client_id)
    for ap_id, ap_spectra in sorted(spectra.items()):
        print(f"AP {ap_id}: {len(ap_spectra)} AoA spectra "
              f"({ap_spectra[0].angles_deg.shape[0]} angle bins each)")

    # 5. The service facade synthesizes the spectra into a location estimate.
    #    One config tree drives everything; the spectrum floor is already the
    #    documented service default (DEFAULT_SPECTRUM_FLOOR = 0.05), only the
    #    paper's 10 cm grid is dialled in explicitly.
    config = ArrayTrackConfig(bounds=testbed.bounds).updated(
        {"server.localizer.grid_resolution_m": 0.10})
    service = ArrayTrackService(config)
    estimate = service.localize(spectra, client_id)
    truth = testbed.client_position(client_id)

    print()
    print(f"ground truth : ({truth.x:.2f}, {truth.y:.2f}) m")
    print(f"estimate     : ({estimate.position.x:.2f}, {estimate.position.y:.2f}) m")
    print(f"error        : {estimate.error_to(truth) * 100:.0f} cm "
          f"using {estimate.num_aps} APs")

    breakdown = service.latency_breakdown(payload_bytes=1500, bitrate_mbps=54.0)
    print(f"latency model: {breakdown.added_after_frame_end_s * 1e3:.0f} ms added "
          f"after the frame leaves the air (paper: ~100 ms)")


if __name__ == "__main__":
    main()
