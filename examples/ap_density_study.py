#!/usr/bin/env python3
"""How many ArrayTrack APs does a deployment need?

The paper's central accuracy result (Figures 13-15) is the trade-off between
the number of cooperating APs and localization error.  This example runs a
reduced version of that sweep -- every client localized with 2..6 APs, with
and without ArrayTrack's optimizations -- and prints the resulting error
statistics, the kind of table a deployment-planning engineer would want.

Run with:  python examples/ap_density_study.py          (about a minute)
"""

from __future__ import annotations

from repro.core import SpectrumConfig
from repro.eval import format_error_statistics, run_localization_sweep
from repro.testbed import ScenarioConfig


def main() -> None:
    num_clients = 20          # increase to 41 for the full-paper campaign
    grid_resolution_m = 0.25  # the paper uses 0.10 m

    print("Running the full ArrayTrack pipeline (weighting, symmetry removal, "
          "multipath suppression)...")
    arraytrack = run_localization_sweep(
        ap_counts=(2, 3, 4, 5, 6), num_clients=num_clients,
        max_subsets_per_count=3, grid_resolution_m=grid_resolution_m)
    print(format_error_statistics(arraytrack.statistics, label="APs",
                                  title="ArrayTrack location error vs AP count"))

    print()
    print("Running the unoptimized baseline (raw mirrored MUSIC spectra)...")
    unoptimized = run_localization_sweep(
        scenario=ScenarioConfig(frames_per_client=1, use_symmetry_antenna=False,
                                seed=2013,
                                spectrum=SpectrumConfig(apply_weighting=False)),
        ap_counts=(2, 3, 4, 5, 6), num_clients=num_clients,
        max_subsets_per_count=3, grid_resolution_m=grid_resolution_m,
        enable_multipath_suppression=False)
    print(format_error_statistics(unoptimized.statistics, label="APs",
                                  title="Unoptimized location error vs AP count"))

    print()
    print("Improvement from ArrayTrack's optimizations (mean error ratio):")
    for count in (2, 3, 4, 5, 6):
        if count in arraytrack.statistics and count in unoptimized.statistics:
            ratio = (unoptimized.statistics[count].mean_cm
                     / max(arraytrack.statistics[count].mean_cm, 1e-9))
            print(f"  {count} APs: {ratio:.1f}x")
    print("\nThe paper reports the largest relative gain at three APs, where "
          "mirror ghosts and reflections dominate the raw synthesis.")


if __name__ == "__main__":
    main()
