"""The simulated office testbed (Figure 12 of the paper).

The paper deploys 41 Soekris clients roughly uniformly over one floor of a
busy office and places the prototype AP at six marked locations.  The clients
are deliberately placed near metal, wood, glass and plastic surfaces and some
behind concrete pillars so their direct path to an AP is blocked.

This module builds a synthetic equivalent: a 40 m x 18 m floor with a brick
shell, drywall office partitions along a central corridor, a glass meeting
room front, a metal cabinet run, four concrete pillars, six AP sites on the
walls facing the interior, and 41 deterministic (seeded) client positions
spread over the floor with a handful intentionally shadowed by pillars.
Everything is deterministic so experiments are repeatable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.floorplan import Floorplan
from repro.geometry.materials import get_material
from repro.geometry.vector import Point2D, bearing_deg
from repro.geometry.walls import Pillar, Wall

__all__ = ["APSite", "OfficeTestbed", "build_office_floorplan", "build_office_testbed"]

#: Floor dimensions in metres.
OFFICE_WIDTH_M = 40.0
OFFICE_DEPTH_M = 18.0

#: Number of clients the paper deploys.
NUM_CLIENTS = 41

#: Seed making the client layout deterministic across runs.
CLIENT_LAYOUT_SEED = 2013


@dataclass(frozen=True)
class APSite:
    """One of the six AP locations of Figure 12.

    Attributes
    ----------
    ap_id:
        Label "1" .. "6" matching the figure.
    position:
        AP position in metres.
    orientation_deg:
        Orientation of the antenna row; the broadside of the array
        (perpendicular to the row) faces the room interior, which is how a
        wall-mounted AP would be installed.
    """

    ap_id: str
    position: Point2D
    orientation_deg: float


def build_office_floorplan() -> Floorplan:
    """Return the synthetic office floorplan used by every experiment."""
    plan = Floorplan(name="office-testbed")
    brick = get_material("brick")
    drywall = get_material("drywall")
    glass = get_material("glass")
    metal = get_material("metal")
    wood = get_material("wood")

    # Outer shell.
    corners = [Point2D(0, 0), Point2D(OFFICE_WIDTH_M, 0),
               Point2D(OFFICE_WIDTH_M, OFFICE_DEPTH_M), Point2D(0, OFFICE_DEPTH_M)]
    shell_names = ["south", "east", "north", "west"]
    for i in range(4):
        plan.add_wall(Wall(corners[i], corners[(i + 1) % 4], brick,
                           name=f"shell-{shell_names[i]}"))

    # Corridor walls (with door gaps) separating the office rows from the
    # central corridor running east-west between y = 7 and y = 11.
    for name, y in (("corridor-south", 7.0), ("corridor-north", 11.0)):
        plan.add_wall(Wall(Point2D(2.0, y), Point2D(12.0, y), drywall,
                           name=f"{name}-a"))
        plan.add_wall(Wall(Point2D(14.0, y), Point2D(26.0, y), drywall,
                           name=f"{name}-b"))
        plan.add_wall(Wall(Point2D(28.0, y), Point2D(38.0, y), drywall,
                           name=f"{name}-c"))

    # Office partition walls perpendicular to the corridor.
    for x in (8.0, 16.0, 24.0, 32.0):
        plan.add_wall(Wall(Point2D(x, 0.0), Point2D(x, 7.0), drywall,
                           name=f"partition-south-{int(x)}"))
        plan.add_wall(Wall(Point2D(x, 11.0), Point2D(x, 18.0), drywall,
                           name=f"partition-north-{int(x)}"))

    # Glass-fronted meeting room in the north-east corner.
    plan.add_wall(Wall(Point2D(32.0, 13.0), Point2D(40.0, 13.0), glass,
                       name="meeting-room-glass"))

    # A run of metal cabinets along part of the south wall and a wooden
    # bookcase near the west end, giving the strong reflectors the paper's
    # clients are placed near.
    plan.add_wall(Wall(Point2D(18.0, 1.2), Point2D(24.0, 1.2), metal,
                       name="metal-cabinets"))
    plan.add_wall(Wall(Point2D(3.0, 15.5), Point2D(7.0, 15.5), wood,
                       name="wood-bookcase"))

    # Concrete pillars down the middle of the floor (Section 4: "we also
    # place some clients behind concrete pillars ... so that the direct path
    # between the AP and client is blocked").
    for index, x in enumerate((10.0, 20.0, 30.0), start=1):
        plan.add_pillar(Pillar(Point2D(x, 9.0), radius=0.4,
                               name=f"pillar-{index}"))
    plan.add_pillar(Pillar(Point2D(25.0, 4.0), radius=0.35, name="pillar-4"))
    return plan


def default_ap_sites() -> list[APSite]:
    """Return the six AP sites, numbered like Figure 12.

    Each AP's antenna row is oriented so its broadside faces the centre of
    the floor, which both matches how a wall-mounted AP is installed and
    keeps most clients away from the unreliable endfire directions
    (Section 2.3.3).
    """
    centre = Point2D(OFFICE_WIDTH_M / 2.0, OFFICE_DEPTH_M / 2.0)
    raw_sites = [
        ("1", Point2D(1.0, 1.0)),
        ("2", Point2D(20.0, 0.6)),
        ("3", Point2D(39.0, 1.0)),
        ("4", Point2D(39.0, 17.0)),
        ("5", Point2D(20.0, 17.4)),
        ("6", Point2D(1.0, 17.0)),
    ]
    sites = []
    for ap_id, position in raw_sites:
        # Broadside towards the room centre: the array row is perpendicular
        # to the AP->centre direction.
        towards_centre = bearing_deg(position, centre)
        orientation = (towards_centre + 90.0) % 360.0
        sites.append(APSite(ap_id=ap_id, position=position,
                            orientation_deg=orientation))
    return sites


def default_client_positions(num_clients: int = NUM_CLIENTS,
                             seed: int = CLIENT_LAYOUT_SEED) -> dict[str, Point2D]:
    """Return the deterministic client layout ("client-01" .. "client-41").

    Clients are spread roughly uniformly over a jittered grid covering the
    floor (mirroring the paper's "roughly uniformly over the floorplan"),
    with the last few positions placed directly behind pillars relative to
    at least one AP so the blocked-direct-path scenarios of Sections 4.2.1
    and 6 occur.
    """
    if num_clients < 1:
        raise ConfigurationError("need at least one client")
    rng = np.random.default_rng(seed)
    positions: dict[str, Point2D] = {}
    # Reserve a handful of deliberately shadowed positions.
    shadowed = [
        Point2D(11.2, 9.1),   # immediately east of pillar-1
        Point2D(21.3, 9.2),   # immediately east of pillar-2
        Point2D(30.9, 8.8),   # immediately east of pillar-3
        Point2D(25.8, 3.7),   # behind pillar-4 relative to AP 1
    ]
    num_grid = num_clients - len(shadowed)
    columns = int(math.ceil(math.sqrt(num_grid * OFFICE_WIDTH_M / OFFICE_DEPTH_M)))
    rows = int(math.ceil(num_grid / columns))
    margin = 1.5
    xs = np.linspace(margin, OFFICE_WIDTH_M - margin, columns)
    ys = np.linspace(margin, OFFICE_DEPTH_M - margin, rows)
    grid_points = [Point2D(float(x), float(y)) for y in ys for x in xs]
    grid_points = grid_points[:num_grid]
    index = 1
    for point in grid_points:
        jitter_x = float(rng.uniform(-0.8, 0.8))
        jitter_y = float(rng.uniform(-0.8, 0.8))
        x = min(max(point.x + jitter_x, 0.8), OFFICE_WIDTH_M - 0.8)
        y = min(max(point.y + jitter_y, 0.8), OFFICE_DEPTH_M - 0.8)
        positions[f"client-{index:02d}"] = Point2D(x, y)
        index += 1
    for point in shadowed:
        if index > num_clients:
            break
        positions[f"client-{index:02d}"] = point
        index += 1
    return positions


@dataclass
class OfficeTestbed:
    """The full static description of the experimental environment.

    Attributes
    ----------
    floorplan:
        Walls and pillars of the office floor.
    ap_sites:
        The six AP locations and orientations.
    clients:
        Ground-truth client positions keyed by client id.
    """

    floorplan: Floorplan = field(default_factory=build_office_floorplan)
    ap_sites: list[APSite] = field(default_factory=default_ap_sites)
    clients: dict[str, Point2D] = field(default_factory=default_client_positions)

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """Search-area bounds used by the location estimator."""
        return self.floorplan.bounding_box(margin=0.5)

    def ap_site(self, ap_id: str) -> APSite:
        """Return the AP site with identifier ``ap_id``."""
        for site in self.ap_sites:
            if site.ap_id == ap_id:
                return site
        raise ConfigurationError(f"unknown AP id {ap_id!r}")

    def client_position(self, client_id: str) -> Point2D:
        """Return the ground-truth position of ``client_id``."""
        try:
            return self.clients[client_id]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown client id {client_id!r}") from exc

    def client_ids(self) -> list[str]:
        """Return all client identifiers in a stable order."""
        return sorted(self.clients)

    def ap_ids(self) -> list[str]:
        """Return all AP identifiers in a stable order."""
        return [site.ap_id for site in self.ap_sites]


def build_office_testbed(num_clients: int = NUM_CLIENTS,
                         seed: int = CLIENT_LAYOUT_SEED) -> OfficeTestbed:
    """Return an :class:`OfficeTestbed` with ``num_clients`` clients.

    Smaller client counts (used by the fast unit tests) keep the same
    deterministic layout and simply truncate it.
    """
    return OfficeTestbed(
        floorplan=build_office_floorplan(),
        ap_sites=default_ap_sites(),
        clients=default_client_positions(num_clients, seed),
    )
