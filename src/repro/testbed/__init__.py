"""Testbed substrate: the simulated office deployment of Figure 12."""

from repro.testbed.office import (
    APSite,
    NUM_CLIENTS,
    OFFICE_DEPTH_M,
    OFFICE_WIDTH_M,
    OfficeTestbed,
    build_office_floorplan,
    build_office_testbed,
    default_ap_sites,
    default_client_positions,
)
from repro.testbed.deployment import ScenarioConfig, SimulatedDeployment

__all__ = [
    "APSite",
    "NUM_CLIENTS",
    "OFFICE_DEPTH_M",
    "OFFICE_WIDTH_M",
    "OfficeTestbed",
    "build_office_floorplan",
    "build_office_testbed",
    "default_ap_sites",
    "default_client_positions",
    "ScenarioConfig",
    "SimulatedDeployment",
]
