"""Simulated deployment: wiring the testbed, channel model, APs and server.

The :class:`SimulatedDeployment` is the experiment driver: given the static
:class:`~repro.testbed.office.OfficeTestbed` description and a scenario
configuration, it instantiates the six ArrayTrack APs, builds multipath
channels for every client-AP link, has the APs overhear frames, and collects
the per-AP AoA spectra the server needs.  Every evaluation experiment
(Figures 13-20) is a thin loop over this class with different parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Sequence

import numpy as np

from repro.errors import ChannelError, ConfigurationError
from repro.ap.access_point import APConfig, ArrayTrackAP
from repro.channel.builder import ChannelBuilder, ChannelModelConfig
from repro.channel.mobility import movement_track
from repro.core.pipeline import SpectrumConfig
from repro.core.spectrum import AoASpectrum
from repro.geometry.vector import Point2D
from repro.testbed.office import OfficeTestbed

__all__ = ["ScenarioConfig", "SimulatedDeployment"]


@dataclass
class ScenarioConfig:
    """Parameters of one simulated measurement campaign.

    Attributes
    ----------
    num_antennas:
        Antennas in each AP's linear row (Figure 16 sweeps 4/6/8).
    use_symmetry_antenna:
        Give each AP the ninth off-row antenna for symmetry removal.
    snr_db:
        Per-antenna capture SNR.
    snapshots_per_frame:
        Raw samples recorded per frame (Figure 19 sweeps this).
    frames_per_client:
        Frames captured per client; frames beyond the first come from
        slightly moved positions (the semi-static scenario of Section 4.2).
    movement_max_step_m:
        Maximum inadvertent movement between successive frames (< 5 cm).
    frame_spacing_s:
        Time between successive frames of a client (must stay below the
        100 ms multipath-suppression window for grouping to apply).
    height_offset_m:
        AP/client height difference (Section 4.3.1).
    polarization_mismatch_deg:
        Client antenna polarization mismatch (Section 4.3.2).
    max_reflections:
        Specular reflection order of the channel model.
    apply_phase_offsets:
        Model per-radio phase offsets and their calibration at each AP.
        Disabled by default for speed: calibration removes the offsets
        almost exactly, and the calibration procedure itself has dedicated
        tests and a robustness experiment.
    spectrum:
        Per-frame spectrum pipeline configuration.
    seed:
        Seed of the campaign's random number generator.
    """

    num_antennas: int = 8
    use_symmetry_antenna: bool = True
    snr_db: float = 25.0
    snapshots_per_frame: int = 10
    frames_per_client: int = 3
    movement_max_step_m: float = 0.05
    frame_spacing_s: float = 0.03
    height_offset_m: float = 0.0
    polarization_mismatch_deg: float = 0.0
    max_reflections: int = 1
    apply_phase_offsets: bool = False
    spectrum: SpectrumConfig = field(default_factory=SpectrumConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.frames_per_client < 1:
            raise ConfigurationError("frames_per_client must be >= 1")
        if self.frame_spacing_s < 0:
            raise ConfigurationError("frame_spacing_s must be non-negative")

    def channel_config(self) -> ChannelModelConfig:
        """Return the channel model configuration implied by this scenario."""
        return ChannelModelConfig(
            max_reflections=self.max_reflections,
            height_offset_m=self.height_offset_m,
            polarization_mismatch_deg=self.polarization_mismatch_deg,
        )


class SimulatedDeployment:
    """Instantiates APs over a testbed and simulates frame captures.

    Parameters
    ----------
    testbed:
        The static environment (floorplan, AP sites, client ground truth).
    config:
        Scenario parameters; paper-faithful defaults when omitted.
    """

    def __init__(self, testbed: OfficeTestbed,
                 config: ScenarioConfig | None = None) -> None:
        self.testbed = testbed
        self.config = config if config is not None else ScenarioConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.channel_builder = ChannelBuilder(testbed.floorplan,
                                              self.config.channel_config())
        self.aps: dict[str, ArrayTrackAP] = {}
        ap_config = APConfig(
            num_antennas=self.config.num_antennas,
            use_symmetry_antenna=self.config.use_symmetry_antenna,
            snapshots_per_frame=self.config.snapshots_per_frame,
            snr_db=self.config.snr_db,
            spectrum=self.config.spectrum,
            apply_phase_offsets=self.config.apply_phase_offsets,
        )
        for site in testbed.ap_sites:
            self.aps[site.ap_id] = ArrayTrackAP(
                ap_id=site.ap_id, position=site.position,
                orientation_deg=site.orientation_deg,
                config=replace(ap_config),
                rng=np.random.default_rng(self._rng.integers(2 ** 32)))

    # ------------------------------------------------------------------
    # Frame capture
    # ------------------------------------------------------------------
    def client_track(self, client_id: str,
                     num_frames: int | None = None) -> list[Point2D]:
        """Return the (possibly perturbed) positions a client transmits from.

        The first position is the ground truth; subsequent positions are a
        short random walk with steps below ``movement_max_step_m``, the
        semi-static behaviour of Section 4.2.
        """
        frames = self.config.frames_per_client if num_frames is None else num_frames
        position = self.testbed.client_position(client_id)
        if frames == 1:
            return [position]
        return movement_track(position, frames,
                              max_step_m=self.config.movement_max_step_m,
                              rng=self._rng)

    def capture_client(self, client_id: str,
                       ap_ids: Sequence[str] | None = None,
                       positions: Sequence[Point2D] | None = None,
                       start_time_s: float = 0.0,
                       snr_db: float | None = None) -> None:
        """Simulate the client transmitting frames overheard by the given APs.

        Parameters
        ----------
        client_id:
            Which client transmits.
        ap_ids:
            APs that overhear (all six by default).
        positions:
            Transmit positions, one per frame; the scenario's default track
            is used when omitted.
        start_time_s:
            Timestamp of the first frame.
        snr_db:
            Override the capture SNR for this client.
        """
        ap_ids = list(ap_ids) if ap_ids is not None else self.testbed.ap_ids()
        if positions is None:
            positions = self.client_track(client_id)
        for frame_index, position in enumerate(positions):
            timestamp = start_time_s + frame_index * self.config.frame_spacing_s
            for ap_id in ap_ids:
                ap = self.aps[ap_id]
                try:
                    channel = self.channel_builder.build(
                        position, ap.position, client_id=client_id, ap_id=ap_id)
                except ChannelError:
                    # Every path to this AP is attenuated below the tracing
                    # cutoff: the AP simply does not overhear the frame,
                    # exactly like a too-distant production AP.
                    continue
                ap.overhear(channel, timestamp_s=timestamp, snr_db=snr_db,
                            rng=self._rng)

    # ------------------------------------------------------------------
    # Spectra collection
    # ------------------------------------------------------------------
    def spectra_for_client(self, client_id: str,
                           ap_ids: Sequence[str] | None = None
                           ) -> dict[str, list[AoASpectrum]]:
        """Return the per-AP spectra computed from the buffered frames."""
        ap_ids = list(ap_ids) if ap_ids is not None else self.testbed.ap_ids()
        spectra: dict[str, list[AoASpectrum]] = {}
        for ap_id in ap_ids:
            ap_spectra = self.aps[ap_id].spectra_for_client(client_id)
            if ap_spectra:
                spectra[ap_id] = ap_spectra
        return spectra

    def collect_client_spectra(self, client_id: str,
                               ap_ids: Sequence[str] | None = None,
                               snr_db: float | None = None
                               ) -> dict[str, list[AoASpectrum]]:
        """Capture the scenario's frames for one client and return its spectra."""
        self.capture_client(client_id, ap_ids, snr_db=snr_db)
        return self.spectra_for_client(client_id, ap_ids)

    def clear(self) -> None:
        """Drop every AP's buffered frames (between clients or experiments)."""
        for ap in self.aps.values():
            ap.clear()
