"""End-to-end location estimation from processed AoA spectra (Section 2.5).

The :class:`LocationEstimator` is the server-side synthesis step: it takes
the per-AP spectra of a client (already weighted / symmetry-resolved /
multipath-suppressed as configured), evaluates the likelihood of Equation 8
over a grid of candidate positions, and refines the best grid cells with hill
climbing.  It is deliberately independent of how the spectra were produced,
so the same estimator serves the "unoptimized" baseline of Figure 13 and the
full ArrayTrack pipeline of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.constants import DEFAULT_GRID_RESOLUTION_M
from repro.errors import EstimationError
from repro.geometry.vector import Point2D
from repro.core.likelihood import LikelihoodMap
from repro.core.spectrum import AoASpectrum

__all__ = ["LocationEstimate", "LocalizerConfig", "LocationEstimator"]


@dataclass(frozen=True)
class LocationEstimate:
    """A single location fix produced by the estimator.

    Attributes
    ----------
    position:
        Estimated client position in building coordinates (metres).
    likelihood:
        Value of L(x) at the estimate (after spectrum normalization).
    num_aps:
        Number of APs whose spectra contributed.
    client_id:
        Identifier of the localized client.
    heatmap:
        The grid likelihood map, retained when the estimator is configured
        to keep it (Figure 14 visualizations); ``None`` otherwise.
    """

    position: Point2D
    likelihood: float
    num_aps: int
    client_id: str = ""
    heatmap: LikelihoodMap | None = None

    def error_to(self, ground_truth: Point2D) -> float:
        """Return the Euclidean localization error against ``ground_truth``."""
        return self.position.distance_to(ground_truth)


@dataclass
class LocalizerConfig:
    """Configuration of the grid search / hill climbing location estimator.

    Attributes
    ----------
    grid_resolution_m:
        Grid spacing of the coarse search (10 cm in the paper).
    refine_with_hill_climbing:
        Run the Section 2.5 hill climbing refinement from the best grid
        cells (disable for the fastest, grid-only estimates).
    num_seeds:
        Number of top grid cells used to seed hill climbing (3 in the paper).
    keep_heatmap:
        Attach the full likelihood map to each estimate (memory heavy; used
        by the Figure 14 experiment and the visual examples).
    normalize_spectra:
        Normalize each AP's spectrum to unit maximum before multiplying.
    spectrum_floor:
        Minimum relative value a spectrum contributes to the likelihood
        product; keeps one blind AP from vetoing the true location (0
        reproduces the plain Equation 8 product).
    vectorized_refinement:
        Run the Section 2.5 hill climbing through the batched refiner
        (:func:`repro.core.optimizer.refine_many`): the compass-neighbour
        candidates of every seed of every client in a batch are evaluated
        in one stacked Equation 8 pass per round.  Bit-for-bit identical to
        the serial per-candidate climber; disable only to time or debug the
        serial reference path.
    """

    grid_resolution_m: float = DEFAULT_GRID_RESOLUTION_M
    refine_with_hill_climbing: bool = True
    num_seeds: int = 3
    keep_heatmap: bool = False
    normalize_spectra: bool = True
    spectrum_floor: float = 0.02
    vectorized_refinement: bool = True

    def __post_init__(self) -> None:
        if self.grid_resolution_m <= 0:
            raise EstimationError("grid_resolution_m must be positive")
        if self.num_seeds < 1:
            raise EstimationError("num_seeds must be >= 1")
        if not 0.0 <= self.spectrum_floor < 1.0:
            raise EstimationError("spectrum_floor must be in [0, 1)")
        if not isinstance(self.vectorized_refinement, bool):
            raise EstimationError(
                f"vectorized_refinement must be a boolean, "
                f"got {self.vectorized_refinement!r}")


class LocationEstimator:
    """Estimates client positions from per-AP AoA spectra.

    Since the batched-engine refactor this class is a thin facade over
    :class:`~repro.core.batch.BatchLocalizer`: a single-client estimate is a
    batch of one, so the vectorized synthesis path is the *only* synthesis
    path and single/batch fixes can never diverge.

    Parameters
    ----------
    bounds:
        ``(xmin, ymin, xmax, ymax)`` search area in metres (typically the
        floorplan bounding box).
    config:
        Estimator configuration; defaults follow the paper.
    """

    def __init__(self, bounds: tuple[float, float, float, float],
                 config: LocalizerConfig | None = None) -> None:
        # Imported here because batch.py needs LocationEstimate from this
        # module at import time.
        from repro.core.batch import BatchLocalizer

        self._batch = BatchLocalizer(bounds, config)

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """Search-area bounds in metres."""
        return self._batch.bounds

    @property
    def config(self) -> LocalizerConfig:
        """The estimator configuration shared by single and batched fixes."""
        return self._batch.config

    # ------------------------------------------------------------------
    # Main entry points
    # ------------------------------------------------------------------
    def estimate(self, spectra: Sequence[AoASpectrum],
                 client_id: str = "") -> LocationEstimate:
        """Return the most likely client position given ``spectra``.

        Raises
        ------
        EstimationError
            If no spectra are provided or none carries an AP position.
        """
        spectra = list(spectra)
        if not spectra:
            raise EstimationError("cannot localize without any AoA spectra")
        return self._batch.estimate_batch({client_id: spectra})[client_id]

    def estimate_batch(self,
                       spectra_by_client: Mapping[str, Sequence[AoASpectrum]]
                       ) -> dict[str, LocationEstimate]:
        """Localize many clients in one vectorized pass.

        See :meth:`repro.core.batch.BatchLocalizer.estimate_batch`; results
        are bit-for-bit identical to calling :meth:`estimate` per client.
        """
        return self._batch.estimate_batch(spectra_by_client)
