"""Spatial smoothing for coherent (phase-synchronized) multipath signals.

Section 2.3.2: indoor multipath components are phase-synchronized copies of
the same transmitted signal, so the array covariance matrix is rank-deficient
and plain MUSIC produces distorted spectra with false peaks.  Spatial
smoothing (Shan, Wax & Kailath) averages the covariance over ``NG``
overlapping sub-arrays of a uniform linear array, restoring the rank at the
cost of reducing the effective aperture: an eight-antenna array smoothed with
``NG = 3`` behaves like a six-antenna array (Figure 6).

The paper's microbenchmark (Figure 7) leads it to choose ``NG = 2``; the
:mod:`repro.eval` experiment E-FIG7 regenerates that comparison.
"""

from __future__ import annotations


import numpy as np

from repro.dtypes import as_complex_array
from repro.errors import EstimationError
from repro.core.covariance import sample_covariance, sample_covariance_many

__all__ = [
    "smoothed_covariance",
    "smoothed_covariance_many",
    "smooth_snapshots",
    "effective_antennas",
]


def effective_antennas(num_antennas: int, num_groups: int) -> int:
    """Return the virtual (sub-array) size after smoothing with ``num_groups``.

    An ``M``-antenna ULA smoothed over ``NG`` groups yields sub-arrays of
    ``M - NG + 1`` elements.
    """
    if num_antennas < 2:
        raise EstimationError("smoothing requires at least two antennas")
    if num_groups < 1:
        raise EstimationError(f"num_groups must be >= 1, got {num_groups}")
    size = num_antennas - num_groups + 1
    if size < 2:
        raise EstimationError(
            f"smoothing {num_antennas} antennas over {num_groups} groups leaves "
            f"only {size} virtual antennas; need at least 2")
    return size


def smoothed_covariance(snapshots: np.ndarray, num_groups: int,
                        diagonal_loading: float = 0.0,
                        forward_backward: bool = False) -> np.ndarray:
    """Return the spatially smoothed covariance of ULA snapshots.

    Parameters
    ----------
    snapshots:
        ``(M, N)`` snapshot matrix of a *uniform linear* array; the antenna
        ordering must follow the physical element order along the array.
    num_groups:
        Number of overlapping sub-arrays ``NG`` to average over.  ``NG = 1``
        degenerates to the plain sample covariance (no smoothing).
    diagonal_loading:
        Optional diagonal loading forwarded to the covariance estimator.
    forward_backward:
        When True, also average with the conjugate-reversed (backward)
        covariance of each sub-array, an additional decorrelation step
        explored by the ablation benchmarks.

    Returns
    -------
    numpy.ndarray
        ``(Ms, Ms)`` smoothed covariance with ``Ms = M - NG + 1``.
    """
    snapshots = as_complex_array(snapshots)
    if snapshots.ndim != 2:
        raise EstimationError(
            f"snapshot matrix must be two-dimensional, got shape {snapshots.shape}")
    num_antennas = snapshots.shape[0]
    sub_size = effective_antennas(num_antennas, num_groups)
    accumulated = np.zeros((sub_size, sub_size), dtype=snapshots.dtype)
    for group in range(num_groups):
        sub = snapshots[group:group + sub_size, :]
        covariance = sample_covariance(sub, diagonal_loading)
        if forward_backward:
            exchange = np.eye(sub_size)[::-1]
            covariance = (covariance + exchange @ covariance.conj() @ exchange) / 2.0
        accumulated += covariance
    return accumulated / num_groups


def smoothed_covariance_many(snapshots: np.ndarray, num_groups: int,
                             diagonal_loading: float = 0.0,
                             forward_backward: bool = False) -> np.ndarray:
    """Return per-frame smoothed covariances of an ``(F, M, N)`` ULA stack.

    Batched counterpart of :func:`smoothed_covariance` for the vectorized
    Section 2.3 frontend: each of the ``NG`` sub-array covariances is one
    stacked matmul over all frames, so the per-frame Python of the serial
    path collapses into ``NG`` NumPy passes.  The accumulation order over
    groups matches the serial loop exactly, so frame ``f`` of the result is
    bit-for-bit identical to ``smoothed_covariance(snapshots[f], ...)``.
    """
    snapshots = as_complex_array(snapshots)
    if snapshots.ndim != 3:
        raise EstimationError(
            f"snapshot stack must be three-dimensional (F, M, N), "
            f"got shape {snapshots.shape}")
    num_frames, num_antennas = snapshots.shape[0], snapshots.shape[1]
    sub_size = effective_antennas(num_antennas, num_groups)
    accumulated = np.zeros((num_frames, sub_size, sub_size),
                           dtype=snapshots.dtype)
    for group in range(num_groups):
        sub = snapshots[:, group:group + sub_size, :]
        covariance = sample_covariance_many(sub, diagonal_loading)
        if forward_backward:
            exchange = np.eye(sub_size)[::-1]
            covariance = (covariance
                          + (exchange @ covariance.conj()) @ exchange) / 2.0
        accumulated += covariance
    return accumulated / num_groups


def smooth_snapshots(snapshots: np.ndarray, num_groups: int) -> np.ndarray:
    """Return spatially averaged *snapshots* (the Figure 6 construction).

    Figure 6 of the paper describes smoothing at the signal level: the
    virtual element ``i`` of the smoothed array is the average of physical
    elements ``i .. i + NG - 1``.  Smoothing the covariance (the
    conventional formulation, :func:`smoothed_covariance`) is what the AoA
    pipeline uses; this signal-level variant is kept for illustration and
    for tests that verify the two formulations agree on where the spectrum
    peaks are.
    """
    snapshots = as_complex_array(snapshots)
    if snapshots.ndim != 2:
        raise EstimationError(
            f"snapshot matrix must be two-dimensional, got shape {snapshots.shape}")
    num_antennas = snapshots.shape[0]
    sub_size = effective_antennas(num_antennas, num_groups)
    output = np.zeros((sub_size, snapshots.shape[1]), dtype=snapshots.dtype)
    for i in range(sub_size):
        output[i] = np.mean(snapshots[i:i + num_groups, :], axis=0)
    return output
