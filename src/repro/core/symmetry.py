"""Array symmetry removal using a ninth, off-row antenna (Section 2.3.4).

A linear array only measures ``cos(theta)``, so its AoA spectrum on
``[0, 180]`` degrees is mirrored onto ``(180, 360)``: the array cannot tell
which side a signal arrived from.  With many cooperating APs the server's
likelihood synthesis washes the ghost side out, but with few APs the ghost
produces false-positive locations (Section 4.2).

ArrayTrack resolves the ambiguity with a ninth antenna placed off the array's
row (recorded through diversity synthesis): using all nine antennas it
"calculates the total power on each side, and removes the half with less
power".  Here the nine-antenna Bartlett beamformer provides that per-side
power comparison -- the non-collinear geometry breaks the mirror symmetry, so
integrating its response over each half plane reveals the true side.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.dtypes import as_complex_array, as_float_array
from repro.errors import EstimationError
from repro.array.geometry import ArrayGeometry
from repro.core.covariance import sample_covariance, sample_covariance_many
from repro.core.music import bartlett_spectrum, bartlett_spectrum_many
from repro.core.spectrum import (
    AoASpectrum,
    circular_interpolation_table,
    default_angle_grid,
)

__all__ = ["SymmetryResolver", "resolve_symmetry"]


@dataclass
class SymmetryResolver:
    """Decides which half plane of a mirrored spectrum holds the true arrivals.

    Parameters
    ----------
    geometry:
        The full non-collinear geometry (e.g. eight-element ULA plus the
        ninth symmetry antenna) matching the snapshot rows it will be given.
    wavelength_m:
        Carrier wavelength.
    angle_resolution_deg:
        Resolution of the internal Bartlett scan.
    """

    geometry: ArrayGeometry
    wavelength_m: float
    angle_resolution_deg: float = 2.0

    def __post_init__(self) -> None:
        if self.geometry.is_linear():
            raise EstimationError(
                "symmetry resolution requires a non-collinear geometry; add an "
                "off-row antenna (Section 2.3.4)")

    def side_powers(self, snapshots: np.ndarray,
                    spectrum: AoASpectrum | None = None) -> tuple[float, float]:
        """Return total Bartlett power in the upper/lower half planes.

        Parameters
        ----------
        snapshots:
            ``(M, N)`` snapshot matrix captured on the resolver's geometry
            (phase offsets already calibrated out).
        spectrum:
            Optional mirrored MUSIC spectrum of the same frame.  When given,
            the Bartlett response is weighted by the spectrum before
            integrating each half plane, so the comparison concentrates on
            the bearings where MUSIC actually sees arrivals instead of being
            diluted by side-lobe energy.
        """
        snapshots = as_complex_array(snapshots)
        if snapshots.shape[0] != self.geometry.num_elements:
            raise EstimationError(
                f"snapshots have {snapshots.shape[0]} rows but the geometry has "
                f"{self.geometry.num_elements} elements")
        covariance = sample_covariance(snapshots)
        angles = default_angle_grid(self.angle_resolution_deg, full_circle=True)
        power = bartlett_spectrum(covariance, self.geometry, angles, self.wavelength_m)
        if spectrum is not None:
            weights = spectrum.power_at_local(angles)
            peak = float(np.max(weights))
            if peak > 0:
                power = power * (weights / peak)
        upper = float(np.sum(power[angles < 180.0]))
        lower = float(np.sum(power[angles >= 180.0]))
        return upper, lower

    def side_powers_many(self, snapshots: np.ndarray,
                         spectra: Sequence[AoASpectrum] | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
        """Return per-frame upper/lower half-plane Bartlett powers of a stack.

        The batched counterpart of :meth:`side_powers` for the vectorized
        Section 2.3 frontend: one stacked covariance pass and one stacked
        Bartlett evaluation cover all ``F`` frames, and the optional
        spectrum weighting reuses a single circular-interpolation table
        (all spectra of one batch share the same angle grid).  Frame ``f``
        of the result is bit-for-bit identical to
        ``side_powers(snapshots[f], spectra[f])``.

        Parameters
        ----------
        snapshots:
            ``(F, M, N)`` snapshot stack captured on the resolver's
            geometry (phase offsets already calibrated out).
        spectra:
            Optional mirrored MUSIC spectra of the same frames (one per
            frame, sharing one angle grid).
        """
        spectra = list(spectra) if spectra is not None else None
        if not spectra:
            return self.side_powers_stack(snapshots, None, None)
        snapshots = as_complex_array(snapshots)
        if snapshots.ndim == 3 and len(spectra) != snapshots.shape[0]:
            raise EstimationError(
                f"got {len(spectra)} spectra for {snapshots.shape[0]} frames")
        if any(not np.array_equal(spectrum.angles_deg, spectra[0].angles_deg)
               for spectrum in spectra[1:]):
            raise EstimationError(
                "all spectra of one batch must share one angle grid")
        spectrum_power = np.stack([spectrum.power for spectrum in spectra])
        return self.side_powers_stack(snapshots, spectrum_power,
                                      spectra[0].angles_deg)

    def side_powers_stack(self, snapshots: np.ndarray,
                          spectrum_power: np.ndarray | None,
                          spectrum_angles: np.ndarray | None
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Raw-array core of :meth:`side_powers_many`.

        The batched frontend calls this directly with its mirrored power
        stack so no intermediate :class:`AoASpectrum` objects are built.

        Parameters
        ----------
        snapshots:
            ``(F, M, N)`` snapshot stack on the resolver's geometry.
        spectrum_power:
            Optional ``(F, K)`` stack of the frames' mirrored spectrum
            values on ``spectrum_angles`` (weights the Bartlett response,
            exactly like :meth:`side_powers` with a spectrum).
        spectrum_angles:
            The shared angle grid of ``spectrum_power``.
        """
        snapshots = as_complex_array(snapshots)
        if snapshots.ndim != 3:
            raise EstimationError(
                f"snapshot stack must have shape (F, M, N), "
                f"got {snapshots.shape}")
        if snapshots.shape[1] != self.geometry.num_elements:
            raise EstimationError(
                f"snapshots have {snapshots.shape[1]} rows but the geometry "
                f"has {self.geometry.num_elements} elements")
        covariances = sample_covariance_many(snapshots)
        angles = default_angle_grid(self.angle_resolution_deg, full_circle=True)
        power = bartlett_spectrum_many(covariances, self.geometry, angles,
                                       self.wavelength_m)
        if spectrum_power is not None:
            spectrum_power = as_float_array(spectrum_power)
            if spectrum_power.shape[0] != snapshots.shape[0]:
                raise EstimationError(
                    f"got {spectrum_power.shape[0]} spectra for "
                    f"{snapshots.shape[0]} frames")
            # One interpolation table serves every frame: the table depends
            # only on the (shared) spectrum grid and the Bartlett scan grid.
            lower, upper, fraction = circular_interpolation_table(
                spectrum_angles, angles)
            weights = (1.0 - fraction) * spectrum_power[:, lower] \
                + fraction * spectrum_power[:, upper]
            peaks = np.max(weights, axis=1)
            positive = peaks > 0
            if np.any(positive):
                power[positive] = power[positive] \
                    * (weights[positive] / peaks[positive, None])
        upper_mask = angles < 180.0
        upper_power = np.sum(power[:, upper_mask], axis=1)
        lower_power = np.sum(power[:, ~upper_mask], axis=1)
        return upper_power, lower_power

    def resolve(self, spectrum: AoASpectrum, snapshots: np.ndarray,
                attenuation: float = 0.0) -> AoASpectrum:
        """Return ``spectrum`` with the weaker half plane suppressed.

        Parameters
        ----------
        spectrum:
            The mirrored 360-degree spectrum produced by the linear array.
        snapshots:
            Nine-antenna snapshot matrix for the same frame.
        attenuation:
            Residual scale applied to the suppressed half (0 removes it
            entirely, matching the paper).
        """
        upper, lower = self.side_powers(snapshots, spectrum)
        suppress_lower = upper >= lower
        return spectrum.suppress_half_plane(suppress_lower, attenuation)

    def resolve_many(self, spectra: Sequence[AoASpectrum],
                     snapshots: np.ndarray,
                     attenuation: float = 0.0) -> list[AoASpectrum]:
        """Batched :meth:`resolve`: suppress each frame's weaker half plane.

        Parameters
        ----------
        spectra:
            The mirrored 360-degree spectra produced by the linear array,
            one per frame, sharing one angle grid.
        snapshots:
            ``(F, M, N)`` nine-antenna snapshot stack for the same frames.
        attenuation:
            Residual scale applied to each suppressed half.

        Returns
        -------
        list of AoASpectrum
            One resolved spectrum per frame, bit-for-bit identical to
            calling :meth:`resolve` frame by frame.
        """
        spectra = list(spectra)
        if not spectra:
            return []
        upper, lower = self.side_powers_many(snapshots, spectra)
        suppress_lower = upper >= lower
        return [spectrum.suppress_half_plane(bool(suppress), attenuation)
                for spectrum, suppress in zip(spectra, suppress_lower, strict=True)]


def resolve_symmetry(spectrum: AoASpectrum, snapshots: np.ndarray,
                     geometry: ArrayGeometry, wavelength_m: float,
                     attenuation: float = 0.0) -> AoASpectrum:
    """Convenience wrapper building a throw-away :class:`SymmetryResolver`."""
    resolver = SymmetryResolver(geometry, wavelength_m)
    return resolver.resolve(spectrum, snapshots, attenuation)
