"""Array symmetry removal using a ninth, off-row antenna (Section 2.3.4).

A linear array only measures ``cos(theta)``, so its AoA spectrum on
``[0, 180]`` degrees is mirrored onto ``(180, 360)``: the array cannot tell
which side a signal arrived from.  With many cooperating APs the server's
likelihood synthesis washes the ghost side out, but with few APs the ghost
produces false-positive locations (Section 4.2).

ArrayTrack resolves the ambiguity with a ninth antenna placed off the array's
row (recorded through diversity synthesis): using all nine antennas it
"calculates the total power on each side, and removes the half with less
power".  Here the nine-antenna Bartlett beamformer provides that per-side
power comparison -- the non-collinear geometry breaks the mirror symmetry, so
integrating its response over each half plane reveals the true side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.array.geometry import ArrayGeometry
from repro.core.covariance import sample_covariance
from repro.core.music import bartlett_spectrum
from repro.core.spectrum import AoASpectrum, default_angle_grid

__all__ = ["SymmetryResolver", "resolve_symmetry"]


@dataclass
class SymmetryResolver:
    """Decides which half plane of a mirrored spectrum holds the true arrivals.

    Parameters
    ----------
    geometry:
        The full non-collinear geometry (e.g. eight-element ULA plus the
        ninth symmetry antenna) matching the snapshot rows it will be given.
    wavelength_m:
        Carrier wavelength.
    angle_resolution_deg:
        Resolution of the internal Bartlett scan.
    """

    geometry: ArrayGeometry
    wavelength_m: float
    angle_resolution_deg: float = 2.0

    def __post_init__(self) -> None:
        if self.geometry.is_linear():
            raise EstimationError(
                "symmetry resolution requires a non-collinear geometry; add an "
                "off-row antenna (Section 2.3.4)")

    def side_powers(self, snapshots: np.ndarray,
                    spectrum: Optional[AoASpectrum] = None) -> Tuple[float, float]:
        """Return total Bartlett power in the upper/lower half planes.

        Parameters
        ----------
        snapshots:
            ``(M, N)`` snapshot matrix captured on the resolver's geometry
            (phase offsets already calibrated out).
        spectrum:
            Optional mirrored MUSIC spectrum of the same frame.  When given,
            the Bartlett response is weighted by the spectrum before
            integrating each half plane, so the comparison concentrates on
            the bearings where MUSIC actually sees arrivals instead of being
            diluted by side-lobe energy.
        """
        snapshots = np.asarray(snapshots, dtype=np.complex128)
        if snapshots.shape[0] != self.geometry.num_elements:
            raise EstimationError(
                f"snapshots have {snapshots.shape[0]} rows but the geometry has "
                f"{self.geometry.num_elements} elements")
        covariance = sample_covariance(snapshots)
        angles = default_angle_grid(self.angle_resolution_deg, full_circle=True)
        power = bartlett_spectrum(covariance, self.geometry, angles, self.wavelength_m)
        if spectrum is not None:
            weights = spectrum.power_at_local(angles)
            peak = float(np.max(weights))
            if peak > 0:
                power = power * (weights / peak)
        upper = float(np.sum(power[angles < 180.0]))
        lower = float(np.sum(power[angles >= 180.0]))
        return upper, lower

    def resolve(self, spectrum: AoASpectrum, snapshots: np.ndarray,
                attenuation: float = 0.0) -> AoASpectrum:
        """Return ``spectrum`` with the weaker half plane suppressed.

        Parameters
        ----------
        spectrum:
            The mirrored 360-degree spectrum produced by the linear array.
        snapshots:
            Nine-antenna snapshot matrix for the same frame.
        attenuation:
            Residual scale applied to the suppressed half (0 removes it
            entirely, matching the paper).
        """
        upper, lower = self.side_powers(snapshots, spectrum)
        suppress_lower = upper >= lower
        return spectrum.suppress_half_plane(suppress_lower, attenuation)


def resolve_symmetry(spectrum: AoASpectrum, snapshots: np.ndarray,
                     geometry: ArrayGeometry, wavelength_m: float,
                     attenuation: float = 0.0) -> AoASpectrum:
    """Convenience wrapper building a throw-away :class:`SymmetryResolver`."""
    resolver = SymmetryResolver(geometry, wavelength_m)
    return resolver.resolve(spectrum, snapshots, attenuation)
