"""Eigenstructure analysis: signal/noise subspace separation.

Section 2.3.1: the array correlation matrix ``Rxx`` has ``M`` eigenvalues;
sorted in non-increasing order, the largest ``D`` correspond to the incoming
signals and the remaining ``M - D`` to noise.  The paper chooses ``D`` as the
number of eigenvalues larger than a threshold that is a fraction of the
largest eigenvalue; the same rule is implemented here (with the standard MDL
criterion available as an alternative for the ablation experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import EstimationError

__all__ = ["SubspaceDecomposition", "decompose", "estimate_num_sources_mdl"]

#: Fraction of the largest eigenvalue an eigenvalue must exceed to be
#: counted as a signal (the paper's thresholding rule).
DEFAULT_EIGENVALUE_THRESHOLD_FRACTION = 0.03


@dataclass(frozen=True)
class SubspaceDecomposition:
    """Result of eigendecomposing an array covariance matrix.

    Attributes
    ----------
    eigenvalues:
        All ``M`` eigenvalues in non-increasing order (real, >= 0 up to
        numerical noise).
    eigenvectors:
        ``(M, M)`` matrix whose columns are the corresponding eigenvectors.
    num_sources:
        Estimated number of incoming signals ``D``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    num_sources: int

    @property
    def num_antennas(self) -> int:
        """Dimension M of the decomposed covariance matrix."""
        return int(self.eigenvalues.shape[0])

    @property
    def signal_subspace(self) -> np.ndarray:
        """``(M, D)`` matrix of signal-subspace eigenvectors (E_S)."""
        return self.eigenvectors[:, :self.num_sources]

    @property
    def noise_subspace(self) -> np.ndarray:
        """``(M, M - D)`` matrix of noise-subspace eigenvectors (E_N)."""
        return self.eigenvectors[:, self.num_sources:]

    @property
    def noise_power_estimate(self) -> float:
        """Average of the noise eigenvalues (estimate of sigma_n^2)."""
        noise_eigenvalues = self.eigenvalues[self.num_sources:]
        if noise_eigenvalues.size == 0:
            return 0.0
        return float(np.mean(noise_eigenvalues))


def decompose(covariance: np.ndarray,
              num_sources: Optional[int] = None,
              threshold_fraction: float = DEFAULT_EIGENVALUE_THRESHOLD_FRACTION,
              max_sources: Optional[int] = None) -> SubspaceDecomposition:
    """Eigendecompose ``covariance`` and split signal from noise subspace.

    Parameters
    ----------
    covariance:
        ``(M, M)`` Hermitian covariance matrix.
    num_sources:
        Force the number of signals ``D``; estimated from the eigenvalue
        threshold rule when omitted.
    threshold_fraction:
        An eigenvalue counts as a signal if it exceeds
        ``threshold_fraction * max(eigenvalues)`` (the paper's rule).
    max_sources:
        Upper bound on ``D``; defaults to ``M - 1`` so at least one noise
        eigenvector always remains (MUSIC needs a non-empty noise subspace).
    """
    covariance = np.asarray(covariance, dtype=np.complex128)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise EstimationError(
            f"covariance must be a square matrix, got shape {covariance.shape}")
    num_antennas = covariance.shape[0]
    if num_antennas < 2:
        raise EstimationError("subspace analysis needs at least two antennas")
    if not 0.0 < threshold_fraction < 1.0:
        raise EstimationError(
            f"threshold_fraction must be in (0, 1), got {threshold_fraction!r}")
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    # eigh returns ascending order; we want non-increasing.
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.real(eigenvalues[order])
    eigenvectors = eigenvectors[:, order]
    limit = num_antennas - 1 if max_sources is None else min(max_sources, num_antennas - 1)
    if limit < 1:
        raise EstimationError("max_sources must allow at least one signal")
    if num_sources is None:
        num_sources = _threshold_source_count(eigenvalues, threshold_fraction)
    if not 1 <= num_sources:
        num_sources = 1
    num_sources = min(num_sources, limit)
    return SubspaceDecomposition(eigenvalues=eigenvalues,
                                 eigenvectors=eigenvectors,
                                 num_sources=int(num_sources))


def _threshold_source_count(eigenvalues: np.ndarray,
                            threshold_fraction: float) -> int:
    """Count eigenvalues above a fraction of the largest (the paper's rule)."""
    largest = float(eigenvalues[0])
    if largest <= 0:
        return 1
    threshold = threshold_fraction * largest
    return int(np.sum(eigenvalues > threshold))


def estimate_num_sources_mdl(eigenvalues: np.ndarray, num_snapshots: int) -> int:
    """Return the MDL (minimum description length) estimate of the source count.

    Provided as an alternative to the paper's fractional-threshold rule for
    the estimator ablation; both should agree in easy (high SNR, well
    separated sources) conditions.
    """
    eigenvalues = np.sort(np.real(np.asarray(eigenvalues)))[::-1]
    eigenvalues = np.maximum(eigenvalues, 1e-15)
    num_antennas = eigenvalues.shape[0]
    if num_snapshots < 1:
        raise EstimationError("num_snapshots must be >= 1 for MDL")
    best_d, best_score = 1, math.inf
    for d in range(0, num_antennas):
        tail = eigenvalues[d:]
        k = tail.shape[0]
        geometric = float(np.exp(np.mean(np.log(tail))))
        arithmetic = float(np.mean(tail))
        if arithmetic <= 0:
            continue
        likelihood = -num_snapshots * k * math.log(max(geometric / arithmetic, 1e-300))
        penalty = 0.5 * d * (2 * num_antennas - d) * math.log(max(num_snapshots, 2))
        score = likelihood + penalty
        if score < best_score:
            best_score = score
            best_d = max(d, 1)
    return min(best_d, num_antennas - 1)
