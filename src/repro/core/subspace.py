"""Eigenstructure analysis: signal/noise subspace separation.

Section 2.3.1: the array correlation matrix ``Rxx`` has ``M`` eigenvalues;
sorted in non-increasing order, the largest ``D`` correspond to the incoming
signals and the remaining ``M - D`` to noise.  The paper chooses ``D`` as the
number of eigenvalues larger than a threshold that is a fraction of the
largest eigenvalue; the same rule is implemented here (with the standard MDL
criterion available as an alternative for the ablation experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.dtypes import as_complex_array
from repro.errors import EstimationError

__all__ = [
    "SubspaceDecomposition",
    "SubspaceDecompositionBatch",
    "decompose",
    "decompose_many",
    "estimate_num_sources_mdl",
]

#: Fraction of the largest eigenvalue an eigenvalue must exceed to be
#: counted as a signal (the paper's thresholding rule).
DEFAULT_EIGENVALUE_THRESHOLD_FRACTION = 0.03


@dataclass(frozen=True)
class SubspaceDecomposition:
    """Result of eigendecomposing an array covariance matrix.

    Attributes
    ----------
    eigenvalues:
        All ``M`` eigenvalues in non-increasing order (real, >= 0 up to
        numerical noise).
    eigenvectors:
        ``(M, M)`` matrix whose columns are the corresponding eigenvectors.
    num_sources:
        Estimated number of incoming signals ``D``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    num_sources: int

    @property
    def num_antennas(self) -> int:
        """Dimension M of the decomposed covariance matrix."""
        return int(self.eigenvalues.shape[0])

    @property
    def signal_subspace(self) -> np.ndarray:
        """``(M, D)`` matrix of signal-subspace eigenvectors (E_S)."""
        return self.eigenvectors[:, :self.num_sources]

    @property
    def noise_subspace(self) -> np.ndarray:
        """``(M, M - D)`` matrix of noise-subspace eigenvectors (E_N)."""
        return self.eigenvectors[:, self.num_sources:]

    @property
    def noise_power_estimate(self) -> float:
        """Average of the noise eigenvalues (estimate of sigma_n^2)."""
        noise_eigenvalues = self.eigenvalues[self.num_sources:]
        if noise_eigenvalues.size == 0:
            return 0.0
        return float(np.mean(noise_eigenvalues))


def decompose(covariance: np.ndarray,
              num_sources: int | None = None,
              threshold_fraction: float = DEFAULT_EIGENVALUE_THRESHOLD_FRACTION,
              max_sources: int | None = None) -> SubspaceDecomposition:
    """Eigendecompose ``covariance`` and split signal from noise subspace.

    Parameters
    ----------
    covariance:
        ``(M, M)`` Hermitian covariance matrix.
    num_sources:
        Force the number of signals ``D``; estimated from the eigenvalue
        threshold rule when omitted.
    threshold_fraction:
        An eigenvalue counts as a signal if it exceeds
        ``threshold_fraction * max(eigenvalues)`` (the paper's rule).
    max_sources:
        Upper bound on ``D``; defaults to ``M - 1`` so at least one noise
        eigenvector always remains (MUSIC needs a non-empty noise subspace).
    """
    covariance = as_complex_array(covariance)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise EstimationError(
            f"covariance must be a square matrix, got shape {covariance.shape}")
    num_antennas = covariance.shape[0]
    if num_antennas < 2:
        raise EstimationError("subspace analysis needs at least two antennas")
    if not 0.0 < threshold_fraction < 1.0:
        raise EstimationError(
            f"threshold_fraction must be in (0, 1), got {threshold_fraction!r}")
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    # eigh returns ascending order; we want non-increasing.
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.real(eigenvalues[order])
    eigenvectors = eigenvectors[:, order]
    limit = num_antennas - 1 if max_sources is None else min(max_sources, num_antennas - 1)
    if limit < 1:
        raise EstimationError("max_sources must allow at least one signal")
    if num_sources is None:
        num_sources = _threshold_source_count(eigenvalues, threshold_fraction)
    if not 1 <= num_sources:
        num_sources = 1
    num_sources = min(num_sources, limit)
    return SubspaceDecomposition(eigenvalues=eigenvalues,
                                 eigenvectors=eigenvectors,
                                 num_sources=int(num_sources))


@dataclass(frozen=True)
class SubspaceDecompositionBatch:
    """Result of eigendecomposing a stack of array covariance matrices.

    The batched counterpart of :class:`SubspaceDecomposition` produced by
    :func:`decompose_many`: one stacked ``np.linalg.eigh`` call covers every
    frame, and the per-frame views returned by :meth:`frame` are bit-for-bit
    identical to decomposing each covariance on its own.

    Attributes
    ----------
    eigenvalues:
        ``(F, M)`` eigenvalues, each row in non-increasing order.
    eigenvectors:
        ``(F, M, M)`` stack whose columns (last axis indexes the column)
        are the corresponding eigenvectors.
    num_sources:
        ``(F,)`` integer array of estimated source counts ``D``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    num_sources: np.ndarray

    def __len__(self) -> int:
        return int(self.eigenvalues.shape[0])

    @property
    def num_antennas(self) -> int:
        """Dimension M of the decomposed covariance matrices."""
        return int(self.eigenvalues.shape[1])

    def frame(self, index: int) -> SubspaceDecomposition:
        """Return frame ``index`` as a single :class:`SubspaceDecomposition`."""
        return SubspaceDecomposition(
            eigenvalues=self.eigenvalues[index],
            eigenvectors=self.eigenvectors[index],
            num_sources=int(self.num_sources[index]))

    def noise_subspaces(self, num_sources: int) -> np.ndarray:
        """Return the stacked ``(G, M, M - D)`` noise subspaces of the frames
        whose estimated source count equals ``num_sources`` (in frame order).

        Grouping frames by ``D`` is what lets the batched MUSIC frontend run
        the Equation 6 noise projection as one GEMM per (geometry, D) group.
        """
        indices = np.nonzero(self.num_sources == num_sources)[0]
        return self.eigenvectors[indices][:, :, num_sources:]


def decompose_many(covariances: np.ndarray,
                   num_sources: int | Sequence[int] | None = None,
                   threshold_fraction: float = DEFAULT_EIGENVALUE_THRESHOLD_FRACTION,
                   max_sources: int | None = None
                   ) -> SubspaceDecompositionBatch:
    """Eigendecompose an ``(F, M, M)`` covariance stack in one LAPACK sweep.

    The batched counterpart of :func:`decompose`: the stacked
    ``np.linalg.eigh`` gufunc runs the identical per-slice LAPACK driver the
    single-matrix call uses, the descending reorder is applied row-wise and
    the paper's eigenvalue-threshold source-count rule is evaluated for all
    frames at once -- so ``decompose_many(stack).frame(f)`` is bit-for-bit
    identical to ``decompose(stack[f])`` for every frame, degenerate
    (all-zero) covariances included.

    Parameters
    ----------
    covariances:
        ``(F, M, M)`` stack of Hermitian covariance matrices.
    num_sources:
        Force the number of signals ``D``: a scalar applies to every frame,
        a length-``F`` sequence forces each frame individually; the
        threshold rule runs per frame when omitted.
    threshold_fraction, max_sources:
        As in :func:`decompose`.
    """
    covariances = as_complex_array(covariances)
    if covariances.ndim != 3 or covariances.shape[1] != covariances.shape[2]:
        raise EstimationError(
            f"covariance stack must have shape (F, M, M), "
            f"got {covariances.shape}")
    num_frames, num_antennas = covariances.shape[0], covariances.shape[1]
    if num_antennas < 2:
        raise EstimationError("subspace analysis needs at least two antennas")
    if not 0.0 < threshold_fraction < 1.0:
        raise EstimationError(
            f"threshold_fraction must be in (0, 1), got {threshold_fraction!r}")
    limit = num_antennas - 1 if max_sources is None \
        else min(max_sources, num_antennas - 1)
    if limit < 1:
        raise EstimationError("max_sources must allow at least one signal")
    if num_frames == 0:
        return SubspaceDecompositionBatch(
            eigenvalues=np.empty((0, num_antennas)),
            eigenvectors=np.empty((0, num_antennas, num_antennas),
                                  dtype=covariances.dtype),
            num_sources=np.empty((0,), dtype=int))
    eigenvalues, eigenvectors = np.linalg.eigh(covariances)
    # eigh returns ascending order per frame; we want non-increasing.  The
    # per-row argsort matches the serial path's argsort of the same values.
    order = np.argsort(eigenvalues, axis=1)[:, ::-1]
    eigenvalues = np.real(np.take_along_axis(eigenvalues, order, axis=1))
    eigenvectors = np.take_along_axis(eigenvectors, order[:, None, :], axis=2)
    if num_sources is None:
        largest = eigenvalues[:, 0]
        thresholds = threshold_fraction * largest
        counts = np.sum(eigenvalues > thresholds[:, None], axis=1)
        counts = np.where(largest > 0, counts, 1)
    else:
        counts = np.asarray(num_sources, dtype=int)
        if counts.ndim == 0:
            counts = np.full(num_frames, int(counts))
        elif counts.shape != (num_frames,):
            raise EstimationError(
                f"num_sources must be a scalar or one value per frame, got "
                f"shape {counts.shape} for {num_frames} frames")
    counts = np.minimum(np.maximum(counts, 1), limit)
    return SubspaceDecompositionBatch(eigenvalues=eigenvalues,
                                      eigenvectors=eigenvectors,
                                      num_sources=counts.astype(int))


def _threshold_source_count(eigenvalues: np.ndarray,
                            threshold_fraction: float) -> int:
    """Count eigenvalues above a fraction of the largest (the paper's rule)."""
    largest = float(eigenvalues[0])
    if largest <= 0:
        return 1
    threshold = threshold_fraction * largest
    return int(np.sum(eigenvalues > threshold))


def estimate_num_sources_mdl(eigenvalues: np.ndarray, num_snapshots: int) -> int:
    """Return the MDL (minimum description length) estimate of the source count.

    Provided as an alternative to the paper's fractional-threshold rule for
    the estimator ablation; both should agree in easy (high SNR, well
    separated sources) conditions.
    """
    eigenvalues = np.sort(np.real(np.asarray(eigenvalues)))[::-1]
    eigenvalues = np.maximum(eigenvalues, 1e-15)
    num_antennas = eigenvalues.shape[0]
    if num_snapshots < 1:
        raise EstimationError("num_snapshots must be >= 1 for MDL")
    best_d, best_score = 1, math.inf
    for d in range(0, num_antennas):
        tail = eigenvalues[d:]
        k = tail.shape[0]
        geometric = float(np.exp(np.mean(np.log(tail))))
        arithmetic = float(np.mean(tail))
        if arithmetic <= 0:
            continue
        likelihood = -num_snapshots * k * math.log(max(geometric / arithmetic, 1e-300))
        penalty = 0.5 * d * (2 * num_antennas - d) * math.log(max(num_snapshots, 2))
        score = likelihood + penalty
        if score < best_score:
            best_score = score
            best_d = max(d, 1)
    return min(best_d, num_antennas - 1)
