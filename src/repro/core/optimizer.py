"""Location refinement: grid search seeding plus hill climbing (Section 2.5).

"We search for the most likely location of the client by forming a 10 cm by
10 cm grid, and evaluating L(x) at each point in the grid.  We then use hill
climbing on the three positions with highest L(x) in the grid ... to refine
our location estimate."

The hill climber below is a derivative-free pattern search: from each seed it
repeatedly evaluates the likelihood at four compass neighbours, moves to the
best improvement, and halves the step when no neighbour improves, until the
step falls below a termination threshold.  This matches the paper's intent
(gradient ascent on a smooth likelihood surface) while being robust to the
plateaus that a coarse angle grid can create.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.geometry.vector import Point2D

__all__ = [
    "HillClimbResult",
    "hill_climb",
    "refine_from_seeds",
    "refine_many",
]

LikelihoodFunction = Callable[[Point2D], float]

#: Batched likelihood evaluator used by :func:`refine_many`.  Called with
#: three equal-length arrays -- the unit (client) index of each candidate
#: point plus its x/y coordinates -- and returns the likelihood of every
#: candidate, evaluated against its own unit's objective.
BatchLikelihoodFunction = Callable[
    [np.ndarray, np.ndarray, np.ndarray], np.ndarray]


#: Compass-neighbour probe order of the pattern search.  The serial climber
#: and the vectorized :func:`refine_many` share this single definition, so
#: their first-improvement tie-breaking can never drift apart.
_NEIGHBOUR_DIRECTIONS: tuple[tuple[float, float], ...] = (
    (1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0))


@dataclass(frozen=True)
class HillClimbResult:
    """Outcome of one hill-climbing run.

    Attributes
    ----------
    position:
        The refined position.
    value:
        Likelihood at the refined position.
    iterations:
        Number of candidate evaluations performed.
    """

    position: Point2D
    value: float
    iterations: int


def hill_climb(likelihood: LikelihoodFunction, start: Point2D,
               initial_step_m: float = 0.05,
               min_step_m: float = 0.005,
               max_evaluations: int = 400) -> HillClimbResult:
    """Refine ``start`` by pattern-search hill climbing on ``likelihood``.

    Parameters
    ----------
    likelihood:
        Function returning the (non-negative) likelihood of a position.
    start:
        Seed position (a high-likelihood grid cell).
    initial_step_m:
        First step size; half a grid cell by default.
    min_step_m:
        Terminate once the step shrinks below this value.
    max_evaluations:
        Hard cap on likelihood evaluations (guards against pathological
        surfaces).
    """
    if initial_step_m <= 0 or min_step_m <= 0:
        raise EstimationError("step sizes must be positive")
    if min_step_m > initial_step_m:
        raise EstimationError("min_step_m must not exceed initial_step_m")
    current = start
    current_value = likelihood(start)
    evaluations = 1
    step = initial_step_m
    while step >= min_step_m and evaluations < max_evaluations:
        moved = False
        for unit_dx, unit_dy in _NEIGHBOUR_DIRECTIONS:
            dx, dy = unit_dx * step, unit_dy * step
            candidate = Point2D(current.x + dx, current.y + dy)
            value = likelihood(candidate)
            evaluations += 1
            if value > current_value:
                current, current_value = candidate, value
                moved = True
                break
            if evaluations >= max_evaluations:
                break
        if not moved:
            step /= 2.0
    return HillClimbResult(position=current, value=current_value,
                           iterations=evaluations)


def refine_from_seeds(likelihood: LikelihoodFunction,
                      seeds: Sequence[tuple[Point2D, float]],
                      initial_step_m: float = 0.05,
                      min_step_m: float = 0.005) -> HillClimbResult:
    """Hill climb from each seed and return the best overall result.

    ``seeds`` are ``(position, grid_likelihood)`` pairs, typically the top
    three grid cells of the heatmap (Section 2.5).
    """
    if not seeds:
        raise EstimationError("need at least one seed position")
    results: list[HillClimbResult] = []
    for position, _ in seeds:
        results.append(hill_climb(likelihood, position, initial_step_m, min_step_m))
    return max(results, key=lambda r: r.value)


class _Climber:
    """Mutable state of one (unit, seed) hill climb inside the batch."""

    __slots__ = ("unit", "x", "y", "value", "evaluations", "step")

    def __init__(self, unit: int, x: float, y: float, step: float) -> None:
        self.unit = unit
        self.x = x
        self.y = y
        self.value = 0.0
        self.evaluations = 0
        self.step = step

    def active(self, min_step_m: float, max_evaluations: int) -> bool:
        return self.step >= min_step_m and self.evaluations < max_evaluations

    def result(self) -> HillClimbResult:
        return HillClimbResult(position=Point2D(self.x, self.y),
                               value=self.value,
                               iterations=self.evaluations)


def refine_many(evaluate: BatchLikelihoodFunction,
                seeds_by_unit: Sequence[Sequence[tuple[Point2D, float]]],
                initial_step_m: float = 0.05,
                min_step_m: float = 0.005,
                max_evaluations: int = 400) -> list[HillClimbResult]:
    """Hill climb every seed of every unit, batching the evaluations.

    Functionally this is :func:`refine_from_seeds` applied independently to
    each unit (client) of a batch; the difference is purely *how* the
    likelihood gets evaluated.  Instead of one Python call per candidate
    point, the candidates of every still-active climber are collected once
    per round -- all seeds in round zero, then the four compass neighbours
    of each climber -- and handed to ``evaluate`` as one stacked request, so
    a batched caller (:class:`repro.core.batch.BatchLocalizer`) folds the
    Equation 8 product of *all* clients' candidates in a handful of NumPy
    passes per round.

    The serial climber's semantics are replayed exactly on the returned
    values: neighbours are considered in the shared probe order, the first
    strict improvement moves the climber (later neighbours of that round are
    discarded *and not charged to the budget*), the evaluation budget stops
    a scan mid-neighbour exactly where :func:`hill_climb` would, an
    improvement-free round halves the step, and per unit the best seed wins
    with first-seed tie-breaking.  Results are therefore bit-for-bit
    identical to running :func:`refine_from_seeds` per unit with a scalar
    objective that matches ``evaluate``.

    Parameters
    ----------
    evaluate:
        Batched likelihood: ``evaluate(units, xs, ys)`` returns one value
        per candidate, where ``units[i]`` is the index (into
        ``seeds_by_unit``) of the unit owning candidate ``i``.
    seeds_by_unit:
        Per unit, the ``(position, grid_likelihood)`` seed pairs that
        :func:`refine_from_seeds` takes.
    initial_step_m, min_step_m, max_evaluations:
        As in :func:`hill_climb`, applied to every climber independently.

    Returns
    -------
    list
        One :class:`HillClimbResult` per unit, in ``seeds_by_unit`` order.
    """
    if initial_step_m <= 0 or min_step_m <= 0:
        raise EstimationError("step sizes must be positive")
    if min_step_m > initial_step_m:
        raise EstimationError("min_step_m must not exceed initial_step_m")
    if max_evaluations < 1:
        raise EstimationError("max_evaluations must be >= 1")
    climbers: list[_Climber] = []
    owners: list[list[_Climber]] = []
    for unit, seeds in enumerate(seeds_by_unit):
        seeds = list(seeds)
        if not seeds:
            raise EstimationError("need at least one seed position")
        mine: list[_Climber] = []
        for position, _ in seeds:
            climber = _Climber(unit, float(position.x), float(position.y),
                               initial_step_m)
            climbers.append(climber)
            mine.append(climber)
        owners.append(mine)

    def _evaluate(points: list[tuple[int, float, float]]) -> np.ndarray:
        units = np.array([unit for unit, _, _ in points], dtype=int)
        xs = np.array([x for _, x, _ in points], dtype=float)
        ys = np.array([y for _, _, y in points], dtype=float)
        values = np.asarray(evaluate(units, xs, ys), dtype=float)
        if values.shape != xs.shape:
            raise EstimationError(
                f"batched likelihood returned shape {values.shape} for "
                f"{xs.shape[0]} candidates")
        return values

    # Round zero: every climber's seed, in one stacked evaluation.
    seed_values = _evaluate([(c.unit, c.x, c.y) for c in climbers])
    for climber, value in zip(climbers, seed_values, strict=True):
        climber.value = float(value)
        climber.evaluations = 1

    active = [c for c in climbers
              if c.active(min_step_m, max_evaluations)]
    while active:
        # All four compass neighbours of every active climber, stacked.
        # The serial scan often stops early, so some of these values go
        # unused -- the replay below charges the budget only for the
        # evaluations the serial climber would actually have made, which
        # keeps ``iterations`` (and every downstream decision) identical.
        candidates: list[tuple[int, float, float]] = []
        for climber in active:
            step = climber.step
            for unit_dx, unit_dy in _NEIGHBOUR_DIRECTIONS:
                candidates.append((climber.unit,
                                   climber.x + unit_dx * step,
                                   climber.y + unit_dy * step))
        values = _evaluate(candidates)
        for index, climber in enumerate(active):
            base = index * len(_NEIGHBOUR_DIRECTIONS)
            moved = False
            for offset, (unit_dx, unit_dy) in enumerate(_NEIGHBOUR_DIRECTIONS):
                value = float(values[base + offset])
                climber.evaluations += 1
                if value > climber.value:
                    climber.x += unit_dx * climber.step
                    climber.y += unit_dy * climber.step
                    climber.value = value
                    moved = True
                    break
                if climber.evaluations >= max_evaluations:
                    break
            if not moved:
                climber.step /= 2.0
        active = [c for c in active
                  if c.active(min_step_m, max_evaluations)]

    results: list[HillClimbResult] = []
    for mine in owners:
        best: _Climber | None = None
        for climber in mine:
            if best is None or climber.value > best.value:
                best = climber
        assert best is not None
        results.append(best.result())
    return results
