"""Location refinement: grid search seeding plus hill climbing (Section 2.5).

"We search for the most likely location of the client by forming a 10 cm by
10 cm grid, and evaluating L(x) at each point in the grid.  We then use hill
climbing on the three positions with highest L(x) in the grid ... to refine
our location estimate."

The hill climber below is a derivative-free pattern search: from each seed it
repeatedly evaluates the likelihood at four compass neighbours, moves to the
best improvement, and halves the step when no neighbour improves, until the
step falls below a termination threshold.  This matches the paper's intent
(gradient ascent on a smooth likelihood surface) while being robust to the
plateaus that a coarse angle grid can create.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import EstimationError
from repro.geometry.vector import Point2D

__all__ = ["HillClimbResult", "hill_climb", "refine_from_seeds"]

LikelihoodFunction = Callable[[Point2D], float]


@dataclass(frozen=True)
class HillClimbResult:
    """Outcome of one hill-climbing run.

    Attributes
    ----------
    position:
        The refined position.
    value:
        Likelihood at the refined position.
    iterations:
        Number of candidate evaluations performed.
    """

    position: Point2D
    value: float
    iterations: int


def hill_climb(likelihood: LikelihoodFunction, start: Point2D,
               initial_step_m: float = 0.05,
               min_step_m: float = 0.005,
               max_evaluations: int = 400) -> HillClimbResult:
    """Refine ``start`` by pattern-search hill climbing on ``likelihood``.

    Parameters
    ----------
    likelihood:
        Function returning the (non-negative) likelihood of a position.
    start:
        Seed position (a high-likelihood grid cell).
    initial_step_m:
        First step size; half a grid cell by default.
    min_step_m:
        Terminate once the step shrinks below this value.
    max_evaluations:
        Hard cap on likelihood evaluations (guards against pathological
        surfaces).
    """
    if initial_step_m <= 0 or min_step_m <= 0:
        raise EstimationError("step sizes must be positive")
    if min_step_m > initial_step_m:
        raise EstimationError("min_step_m must not exceed initial_step_m")
    current = start
    current_value = likelihood(start)
    evaluations = 1
    step = initial_step_m
    while step >= min_step_m and evaluations < max_evaluations:
        moved = False
        for dx, dy in ((step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step)):
            candidate = Point2D(current.x + dx, current.y + dy)
            value = likelihood(candidate)
            evaluations += 1
            if value > current_value:
                current, current_value = candidate, value
                moved = True
                break
            if evaluations >= max_evaluations:
                break
        if not moved:
            step /= 2.0
    return HillClimbResult(position=current, value=current_value,
                           iterations=evaluations)


def refine_from_seeds(likelihood: LikelihoodFunction,
                      seeds: Sequence[Tuple[Point2D, float]],
                      initial_step_m: float = 0.05,
                      min_step_m: float = 0.005) -> HillClimbResult:
    """Hill climb from each seed and return the best overall result.

    ``seeds`` are ``(position, grid_likelihood)`` pairs, typically the top
    three grid cells of the heatmap (Section 2.5).
    """
    if not seeds:
        raise EstimationError("need at least one seed position")
    results: List[HillClimbResult] = []
    for position, _ in seeds:
        results.append(hill_climb(likelihood, position, initial_step_m, min_step_m))
    return max(results, key=lambda r: r.value)
