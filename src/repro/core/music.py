"""MUSIC pseudospectrum computation (plus classical beamformers for comparison).

Section 2.3.1, Equation 6: the MUSIC spectrum inverts the distance between
the array steering vector continuum and the signal subspace,

    P(theta) = 1 / (a(theta)^H  E_N E_N^H  a(theta)),

yielding sharp peaks at the arrival angles.  The Bartlett (conventional) and
Capon (MVDR) beamformers are implemented alongside: the paper calls MUSIC the
"best known" of the eigenstructure algorithms, and the ablation benchmark
A-ESTIMATOR quantifies how much accuracy the MUSIC choice is worth.

Every estimator has a stacked ``*_many`` counterpart taking an ``(F, M, M)``
covariance stack, the workhorses of the batched Section 2.3 frontend
(:meth:`repro.core.pipeline.SpectrumComputer.compute_many`).  The batched
variants run the identical per-slice GEMM/LAPACK calls the single-frame
functions issue, so frame ``f`` of a stacked result is bit-for-bit identical
to the corresponding single-frame call.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import WAVELENGTH_M
from repro.dtypes import as_complex_array, as_float_array
from repro.errors import EstimationError
from repro.array.geometry import ArrayGeometry
from repro.core.cache import default_steering_cache
from repro.core.subspace import (
    SubspaceDecomposition,
    SubspaceDecompositionBatch,
    decompose,
    decompose_many,
)

__all__ = [
    "music_spectrum",
    "music_spectrum_many",
    "bartlett_spectrum",
    "bartlett_spectrum_many",
    "capon_spectrum",
    "capon_spectrum_many",
    "spectrum_from_noise_subspace",
    "spectrum_from_noise_subspace_many",
]


def _steering_matrix(geometry: ArrayGeometry, angles_deg: np.ndarray,
                     wavelength_m: float, elevation_deg: float) -> np.ndarray:
    """Return the (cached) steering matrix for ``geometry`` over ``angles_deg``.

    The steering continuum of Equation 6 is a pure function of the static
    array geometry, so it is served from the shared
    :class:`~repro.core.cache.SteeringCache`: every AP with the same antenna
    layout computes it once per (grid, wavelength, elevation) and reuses it
    for every subsequent frame.  The returned matrix is read-only.
    """
    angles = as_float_array(angles_deg)
    if angles.ndim != 1 or angles.shape[0] < 2:
        raise EstimationError("angle grid must be a 1-D array with >= 2 entries")
    return default_steering_cache().get(geometry, angles, wavelength_m,
                                        elevation_deg)


def _check_covariance_stack(covariances: np.ndarray,
                            geometry: ArrayGeometry) -> np.ndarray:
    """Validate an ``(F, M, M)`` stack against the geometry's element count."""
    covariances = as_complex_array(covariances)
    if covariances.ndim != 3 or covariances.shape[1] != covariances.shape[2]:
        raise EstimationError(
            f"covariance stack must have shape (F, M, M), "
            f"got {covariances.shape}")
    if covariances.shape[1] != geometry.num_elements:
        raise EstimationError(
            f"covariances are {covariances.shape[1]}x{covariances.shape[1]} but "
            f"the geometry has {geometry.num_elements} elements")
    return covariances


def spectrum_from_noise_subspace(noise_subspace: np.ndarray,
                                 steering: np.ndarray) -> np.ndarray:
    """Evaluate the MUSIC spectrum given a noise subspace and steering matrix.

    Parameters
    ----------
    noise_subspace:
        ``(M, M - D)`` matrix of noise eigenvectors ``E_N``.
    steering:
        ``(M, K)`` matrix of steering vectors over the angle grid.

    Returns
    -------
    numpy.ndarray
        ``(K,)`` non-negative spectrum values.
    """
    noise_subspace = as_complex_array(noise_subspace)
    steering = as_complex_array(steering)
    if noise_subspace.shape[0] != steering.shape[0]:
        raise EstimationError(
            "noise subspace and steering matrix disagree on the antenna count: "
            f"{noise_subspace.shape[0]} vs {steering.shape[0]}")
    projected = noise_subspace.conj().T @ steering          # (M - D, K)
    denominator = np.sum(np.abs(projected) ** 2, axis=0)     # (K,)
    return 1.0 / np.maximum(denominator, 1e-12)


def spectrum_from_noise_subspace_many(noise_subspaces: np.ndarray,
                                      steering: np.ndarray) -> np.ndarray:
    """Evaluate MUSIC spectra for a stack of same-``D`` noise subspaces.

    This is the Equation 6 noise projection of one (geometry, D) frame
    group: a single stacked ``E_N^H A`` GEMM over all ``G`` frames sharing
    the source count, followed by elementwise reductions.

    Parameters
    ----------
    noise_subspaces:
        ``(G, M, M - D)`` stack of noise eigenvectors.
    steering:
        ``(M, K)`` steering matrix over the angle grid.

    Returns
    -------
    numpy.ndarray
        ``(G, K)`` non-negative spectrum values, one row per frame.
    """
    noise_subspaces = as_complex_array(noise_subspaces)
    steering = as_complex_array(steering)
    if noise_subspaces.ndim != 3:
        raise EstimationError(
            f"noise subspace stack must have shape (G, M, M - D), "
            f"got {noise_subspaces.shape}")
    if noise_subspaces.shape[1] != steering.shape[0]:
        raise EstimationError(
            "noise subspaces and steering matrix disagree on the antenna "
            f"count: {noise_subspaces.shape[1]} vs {steering.shape[0]}")
    projected = noise_subspaces.conj().transpose(0, 2, 1) @ steering
    denominator = np.sum(np.abs(projected) ** 2, axis=1)     # (G, K)
    return 1.0 / np.maximum(denominator, 1e-12)


def music_spectrum(covariance: np.ndarray, geometry: ArrayGeometry,
                   angles_deg: np.ndarray,
                   num_sources: int | None = None,
                   wavelength_m: float = WAVELENGTH_M,
                   elevation_deg: float = 0.0) -> np.ndarray:
    """Return the MUSIC pseudospectrum over ``angles_deg``.

    Parameters
    ----------
    covariance:
        ``(M, M)`` (possibly spatially smoothed) array covariance matrix.
    geometry:
        Geometry of the (sub-)array the covariance corresponds to.
    angles_deg:
        Angle grid, in the array's local frame, to evaluate the spectrum on.
    num_sources:
        Number of incoming signals ``D``; estimated from the eigenvalues
        with the paper's threshold rule when omitted.
    wavelength_m:
        Carrier wavelength.
    elevation_deg:
        Common elevation of the arrivals (Appendix A height analysis).
    """
    covariance = as_complex_array(covariance)
    if covariance.shape[0] != geometry.num_elements:
        raise EstimationError(
            f"covariance is {covariance.shape[0]}x{covariance.shape[0]} but the "
            f"geometry has {geometry.num_elements} elements")
    decomposition: SubspaceDecomposition = decompose(covariance, num_sources)
    steering = _steering_matrix(geometry, angles_deg, wavelength_m, elevation_deg)
    return spectrum_from_noise_subspace(decomposition.noise_subspace, steering)


def music_spectrum_many(covariances: np.ndarray, geometry: ArrayGeometry,
                        angles_deg: np.ndarray,
                        num_sources: int | Sequence[int] | None = None,
                        wavelength_m: float = WAVELENGTH_M,
                        elevation_deg: float = 0.0) -> np.ndarray:
    """Return MUSIC pseudospectra for an ``(F, M, M)`` covariance stack.

    One stacked ``np.linalg.eigh`` covers every frame, the eigenvalue
    threshold rule runs vectorized, and frames are grouped by their
    estimated source count ``D`` so the Equation 6 noise projection is one
    ``E_N^H A`` GEMM per (geometry, D) group against the cached steering
    matrix.  Row ``f`` of the result is bit-for-bit identical to
    ``music_spectrum(covariances[f], ...)``.
    """
    covariances = _check_covariance_stack(covariances, geometry)
    steering = _steering_matrix(geometry, angles_deg, wavelength_m,
                                elevation_deg)
    batch: SubspaceDecompositionBatch = decompose_many(covariances, num_sources)
    power = np.empty((covariances.shape[0], steering.shape[1]))
    for count in np.unique(batch.num_sources):
        indices = np.nonzero(batch.num_sources == count)[0]
        noise = batch.eigenvectors[indices][:, :, count:]
        power[indices] = spectrum_from_noise_subspace_many(noise, steering)
    return power


def bartlett_spectrum(covariance: np.ndarray, geometry: ArrayGeometry,
                      angles_deg: np.ndarray,
                      wavelength_m: float = WAVELENGTH_M,
                      elevation_deg: float = 0.0) -> np.ndarray:
    """Return the conventional (Bartlett) beamformer spectrum.

    ``P(theta) = a^H R a / (a^H a)``; lower resolution than MUSIC but makes
    no assumption about the number of sources, which is why the array
    symmetry test (Section 2.3.4) uses it on the non-linear nine-antenna
    geometry.  The quadratic form is evaluated as one ``R A`` GEMM followed
    by an elementwise reduction -- the same shape of computation the stacked
    :func:`bartlett_spectrum_many` runs per frame, keeping the two paths
    bit-for-bit identical.
    """
    covariance = as_complex_array(covariance)
    if covariance.shape[0] != geometry.num_elements:
        raise EstimationError(
            f"covariance is {covariance.shape[0]}x{covariance.shape[0]} but the "
            f"geometry has {geometry.num_elements} elements")
    steering = _steering_matrix(geometry, angles_deg, wavelength_m, elevation_deg)
    projected = covariance @ steering                        # (M, K)
    numerator = np.real(np.einsum("mk,mk->k", steering.conj(), projected))
    normalization = np.real(np.sum(np.abs(steering) ** 2, axis=0))
    return np.maximum(numerator, 0.0) / np.maximum(normalization, 1e-12)


def bartlett_spectrum_many(covariances: np.ndarray, geometry: ArrayGeometry,
                           angles_deg: np.ndarray,
                           wavelength_m: float = WAVELENGTH_M,
                           elevation_deg: float = 0.0) -> np.ndarray:
    """Return Bartlett spectra for an ``(F, M, M)`` covariance stack.

    Row ``f`` is bit-for-bit identical to ``bartlett_spectrum``
    on ``covariances[f]``.
    """
    covariances = _check_covariance_stack(covariances, geometry)
    steering = _steering_matrix(geometry, angles_deg, wavelength_m,
                                elevation_deg)
    projected = covariances @ steering                       # (F, M, K)
    numerator = np.real(np.einsum("mk,fmk->fk", steering.conj(), projected))
    normalization = np.real(np.sum(np.abs(steering) ** 2, axis=0))
    return np.maximum(numerator, 0.0) / np.maximum(normalization, 1e-12)


def capon_spectrum(covariance: np.ndarray, geometry: ArrayGeometry,
                   angles_deg: np.ndarray,
                   wavelength_m: float = WAVELENGTH_M,
                   elevation_deg: float = 0.0,
                   diagonal_loading: float = 1e-3) -> np.ndarray:
    """Return the Capon (MVDR) spectrum ``1 / (a^H R^-1 a)``.

    Diagonal loading regularizes the inverse when the covariance is estimated
    from very few snapshots (the N = 1 case of Figure 19 would otherwise be
    singular).  The quadratic form is evaluated through
    ``np.linalg.solve(regularized, steering)`` rather than an explicit
    ``np.linalg.inv``: better conditioned and one fewer GEMM.
    """
    covariance = as_complex_array(covariance)
    if covariance.shape[0] != geometry.num_elements:
        raise EstimationError(
            f"covariance is {covariance.shape[0]}x{covariance.shape[0]} but the "
            f"geometry has {geometry.num_elements} elements")
    num_antennas = covariance.shape[0]
    loading = diagonal_loading * float(np.real(np.trace(covariance))) / num_antennas
    regularized = covariance + loading * np.eye(num_antennas)
    steering = _steering_matrix(geometry, angles_deg, wavelength_m, elevation_deg)
    solution = np.linalg.solve(regularized, steering)        # R^-1 A, (M, K)
    quadratic = np.real(np.einsum("mk,mk->k", steering.conj(), solution))
    return 1.0 / np.maximum(quadratic, 1e-12)


def capon_spectrum_many(covariances: np.ndarray, geometry: ArrayGeometry,
                        angles_deg: np.ndarray,
                        wavelength_m: float = WAVELENGTH_M,
                        elevation_deg: float = 0.0,
                        diagonal_loading: float = 1e-3) -> np.ndarray:
    """Return Capon spectra for an ``(F, M, M)`` covariance stack.

    The per-frame diagonal loading vectorizes over the stacked traces and
    the stacked ``np.linalg.solve`` runs the identical per-slice LAPACK
    factorization, so row ``f`` is bit-for-bit identical to
    ``capon_spectrum`` on ``covariances[f]``.
    """
    covariances = _check_covariance_stack(covariances, geometry)
    num_antennas = covariances.shape[1]
    traces = np.real(np.trace(covariances, axis1=1, axis2=2))
    loading = diagonal_loading * traces / num_antennas
    regularized = covariances + loading[:, None, None] * np.eye(num_antennas)
    steering = _steering_matrix(geometry, angles_deg, wavelength_m,
                                elevation_deg)
    solution = np.linalg.solve(regularized, steering)        # (F, M, K)
    quadratic = np.real(np.einsum("mk,fmk->fk", steering.conj(), solution))
    return 1.0 / np.maximum(quadratic, 1e-12)
