"""MUSIC pseudospectrum computation (plus classical beamformers for comparison).

Section 2.3.1, Equation 6: the MUSIC spectrum inverts the distance between
the array steering vector continuum and the signal subspace,

    P(theta) = 1 / (a(theta)^H  E_N E_N^H  a(theta)),

yielding sharp peaks at the arrival angles.  The Bartlett (conventional) and
Capon (MVDR) beamformers are implemented alongside: the paper calls MUSIC the
"best known" of the eigenstructure algorithms, and the ablation benchmark
A-ESTIMATOR quantifies how much accuracy the MUSIC choice is worth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import WAVELENGTH_M
from repro.errors import EstimationError
from repro.array.geometry import ArrayGeometry
from repro.core.cache import default_steering_cache
from repro.core.subspace import SubspaceDecomposition, decompose

__all__ = [
    "music_spectrum",
    "bartlett_spectrum",
    "capon_spectrum",
    "spectrum_from_noise_subspace",
]


def _steering_matrix(geometry: ArrayGeometry, angles_deg: np.ndarray,
                     wavelength_m: float, elevation_deg: float) -> np.ndarray:
    """Return the (cached) steering matrix for ``geometry`` over ``angles_deg``.

    The steering continuum of Equation 6 is a pure function of the static
    array geometry, so it is served from the shared
    :class:`~repro.core.cache.SteeringCache`: every AP with the same antenna
    layout computes it once per (grid, wavelength, elevation) and reuses it
    for every subsequent frame.  The returned matrix is read-only.
    """
    angles = np.asarray(angles_deg, dtype=float)
    if angles.ndim != 1 or angles.shape[0] < 2:
        raise EstimationError("angle grid must be a 1-D array with >= 2 entries")
    return default_steering_cache().get(geometry, angles, wavelength_m,
                                        elevation_deg)


def spectrum_from_noise_subspace(noise_subspace: np.ndarray,
                                 steering: np.ndarray) -> np.ndarray:
    """Evaluate the MUSIC spectrum given a noise subspace and steering matrix.

    Parameters
    ----------
    noise_subspace:
        ``(M, M - D)`` matrix of noise eigenvectors ``E_N``.
    steering:
        ``(M, K)`` matrix of steering vectors over the angle grid.

    Returns
    -------
    numpy.ndarray
        ``(K,)`` non-negative spectrum values.
    """
    noise_subspace = np.asarray(noise_subspace, dtype=np.complex128)
    steering = np.asarray(steering, dtype=np.complex128)
    if noise_subspace.shape[0] != steering.shape[0]:
        raise EstimationError(
            "noise subspace and steering matrix disagree on the antenna count: "
            f"{noise_subspace.shape[0]} vs {steering.shape[0]}")
    projected = noise_subspace.conj().T @ steering          # (M - D, K)
    denominator = np.sum(np.abs(projected) ** 2, axis=0)     # (K,)
    return 1.0 / np.maximum(denominator, 1e-12)


def music_spectrum(covariance: np.ndarray, geometry: ArrayGeometry,
                   angles_deg: np.ndarray,
                   num_sources: Optional[int] = None,
                   wavelength_m: float = WAVELENGTH_M,
                   elevation_deg: float = 0.0) -> np.ndarray:
    """Return the MUSIC pseudospectrum over ``angles_deg``.

    Parameters
    ----------
    covariance:
        ``(M, M)`` (possibly spatially smoothed) array covariance matrix.
    geometry:
        Geometry of the (sub-)array the covariance corresponds to.
    angles_deg:
        Angle grid, in the array's local frame, to evaluate the spectrum on.
    num_sources:
        Number of incoming signals ``D``; estimated from the eigenvalues
        with the paper's threshold rule when omitted.
    wavelength_m:
        Carrier wavelength.
    elevation_deg:
        Common elevation of the arrivals (Appendix A height analysis).
    """
    covariance = np.asarray(covariance, dtype=np.complex128)
    if covariance.shape[0] != geometry.num_elements:
        raise EstimationError(
            f"covariance is {covariance.shape[0]}x{covariance.shape[0]} but the "
            f"geometry has {geometry.num_elements} elements")
    decomposition: SubspaceDecomposition = decompose(covariance, num_sources)
    steering = _steering_matrix(geometry, angles_deg, wavelength_m, elevation_deg)
    return spectrum_from_noise_subspace(decomposition.noise_subspace, steering)


def bartlett_spectrum(covariance: np.ndarray, geometry: ArrayGeometry,
                      angles_deg: np.ndarray,
                      wavelength_m: float = WAVELENGTH_M,
                      elevation_deg: float = 0.0) -> np.ndarray:
    """Return the conventional (Bartlett) beamformer spectrum.

    ``P(theta) = a^H R a / (a^H a)``; lower resolution than MUSIC but makes
    no assumption about the number of sources, which is why the array
    symmetry test (Section 2.3.4) uses it on the non-linear nine-antenna
    geometry.
    """
    covariance = np.asarray(covariance, dtype=np.complex128)
    if covariance.shape[0] != geometry.num_elements:
        raise EstimationError(
            f"covariance is {covariance.shape[0]}x{covariance.shape[0]} but the "
            f"geometry has {geometry.num_elements} elements")
    steering = _steering_matrix(geometry, angles_deg, wavelength_m, elevation_deg)
    numerator = np.real(np.einsum("mk,mn,nk->k", steering.conj(), covariance, steering))
    normalization = np.real(np.sum(np.abs(steering) ** 2, axis=0))
    return np.maximum(numerator, 0.0) / np.maximum(normalization, 1e-12)


def capon_spectrum(covariance: np.ndarray, geometry: ArrayGeometry,
                   angles_deg: np.ndarray,
                   wavelength_m: float = WAVELENGTH_M,
                   elevation_deg: float = 0.0,
                   diagonal_loading: float = 1e-3) -> np.ndarray:
    """Return the Capon (MVDR) spectrum ``1 / (a^H R^-1 a)``.

    Diagonal loading regularizes the inverse when the covariance is estimated
    from very few snapshots (the N = 1 case of Figure 19 would otherwise be
    singular).
    """
    covariance = np.asarray(covariance, dtype=np.complex128)
    if covariance.shape[0] != geometry.num_elements:
        raise EstimationError(
            f"covariance is {covariance.shape[0]}x{covariance.shape[0]} but the "
            f"geometry has {geometry.num_elements} elements")
    num_antennas = covariance.shape[0]
    loading = diagonal_loading * float(np.real(np.trace(covariance))) / num_antennas
    regularized = covariance + loading * np.eye(num_antennas)
    inverse = np.linalg.inv(regularized)
    steering = _steering_matrix(geometry, angles_deg, wavelength_m, elevation_deg)
    quadratic = np.real(np.einsum("mk,mn,nk->k", steering.conj(), inverse, steering))
    return 1.0 / np.maximum(quadratic, 1e-12)
