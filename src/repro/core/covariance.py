"""Array correlation (covariance) matrix estimation.

The eigenstructure methods of Section 2.3.1 start from the ``M x M`` array
correlation matrix ``Rxx = E[x x*]`` whose entry (l, m) is the mean
correlation between the l-th and m-th antennas' signals.  With only a handful
of snapshots (ArrayTrack uses ten samples per frame) the expectation is
replaced by the sample average; optional diagonal loading keeps the matrix
well conditioned when the snapshot count is tiny (the N = 1 case of
Figure 19).
"""

from __future__ import annotations


import numpy as np

from repro.dtypes import as_complex_array
from repro.errors import EstimationError

__all__ = [
    "sample_covariance",
    "sample_covariance_many",
    "forward_backward_covariance",
    "forward_backward_covariance_many",
]


def sample_covariance(snapshots: np.ndarray,
                      diagonal_loading: float = 0.0) -> np.ndarray:
    """Return the sample covariance matrix of an ``(M, N)`` snapshot matrix.

    Parameters
    ----------
    snapshots:
        ``(M, N)`` complex matrix of M antennas by N time samples.
    diagonal_loading:
        Non-negative value added to the diagonal, relative to the mean
        diagonal power (0 disables loading).

    Returns
    -------
    numpy.ndarray
        ``(M, M)`` Hermitian positive semi-definite matrix.
    """
    snapshots = as_complex_array(snapshots)
    if snapshots.ndim != 2:
        raise EstimationError(
            f"snapshot matrix must be two-dimensional, got shape {snapshots.shape}")
    num_antennas, num_snapshots = snapshots.shape
    if num_snapshots < 1:
        raise EstimationError("need at least one snapshot to estimate covariance")
    if diagonal_loading < 0:
        raise EstimationError(
            f"diagonal loading must be non-negative, got {diagonal_loading!r}")
    covariance = snapshots @ snapshots.conj().T / num_snapshots
    # Enforce exact Hermitian symmetry (guards against floating point drift).
    covariance = (covariance + covariance.conj().T) / 2.0
    if diagonal_loading > 0:
        mean_power = float(np.real(np.trace(covariance))) / num_antennas
        covariance = covariance + diagonal_loading * mean_power * np.eye(num_antennas)
    return covariance


def sample_covariance_many(snapshots: np.ndarray,
                           diagonal_loading: float = 0.0) -> np.ndarray:
    """Return per-frame sample covariances of an ``(F, M, N)`` snapshot stack.

    The batched counterpart of :func:`sample_covariance` for the vectorized
    Section 2.3 frontend: one stacked ``matmul`` produces every frame's
    ``(M, M)`` covariance at once.  The stacked matmul dispatches the same
    per-slice GEMM the single-frame path uses and every other step is
    elementwise, so frame ``f`` of the result is bit-for-bit identical to
    ``sample_covariance(snapshots[f], diagonal_loading)``.

    Parameters
    ----------
    snapshots:
        ``(F, M, N)`` complex stack of F frames' snapshot matrices.
    diagonal_loading:
        Non-negative value added to each frame's diagonal, relative to that
        frame's mean diagonal power (0 disables loading).

    Returns
    -------
    numpy.ndarray
        ``(F, M, M)`` stack of Hermitian positive semi-definite matrices.
    """
    snapshots = as_complex_array(snapshots)
    if snapshots.ndim != 3:
        raise EstimationError(
            f"snapshot stack must be three-dimensional (F, M, N), "
            f"got shape {snapshots.shape}")
    num_frames, num_antennas, num_snapshots = snapshots.shape
    if num_snapshots < 1:
        raise EstimationError("need at least one snapshot to estimate covariance")
    if diagonal_loading < 0:
        raise EstimationError(
            f"diagonal loading must be non-negative, got {diagonal_loading!r}")
    covariance = snapshots @ snapshots.conj().transpose(0, 2, 1) / num_snapshots
    covariance = (covariance + covariance.conj().transpose(0, 2, 1)) / 2.0
    if diagonal_loading > 0:
        mean_power = np.real(np.trace(covariance, axis1=1, axis2=2)) / num_antennas
        covariance = covariance \
            + (diagonal_loading * mean_power)[:, None, None] * np.eye(num_antennas)
    return covariance


def forward_backward_covariance(snapshots: np.ndarray,
                                diagonal_loading: float = 0.0) -> np.ndarray:
    """Return the forward-backward averaged covariance of a ULA snapshot matrix.

    Forward-backward averaging exploits the conjugate symmetry of a uniform
    linear array to decorrelate coherent sources using half as many
    sub-arrays as plain spatial smoothing would need.  It is provided as an
    optional enhancement (the paper uses forward-only smoothing); the
    ablation benchmarks compare the two.
    """
    covariance = sample_covariance(snapshots, diagonal_loading)
    exchange = np.eye(covariance.shape[0])[::-1]
    backward = exchange @ covariance.conj() @ exchange
    return (covariance + backward) / 2.0


def forward_backward_covariance_many(snapshots: np.ndarray,
                                     diagonal_loading: float = 0.0) -> np.ndarray:
    """Return per-frame forward-backward covariances of an ``(F, M, N)`` stack.

    Batched counterpart of :func:`forward_backward_covariance`; frame ``f``
    is bit-for-bit identical to the single-frame call on ``snapshots[f]``
    (the exchange products broadcast the same per-slice GEMMs).
    """
    covariance = sample_covariance_many(snapshots, diagonal_loading)
    exchange = np.eye(covariance.shape[1])[::-1]
    backward = (exchange @ covariance.conj()) @ exchange
    return (covariance + backward) / 2.0
