"""Array correlation (covariance) matrix estimation.

The eigenstructure methods of Section 2.3.1 start from the ``M x M`` array
correlation matrix ``Rxx = E[x x*]`` whose entry (l, m) is the mean
correlation between the l-th and m-th antennas' signals.  With only a handful
of snapshots (ArrayTrack uses ten samples per frame) the expectation is
replaced by the sample average; optional diagonal loading keeps the matrix
well conditioned when the snapshot count is tiny (the N = 1 case of
Figure 19).
"""

from __future__ import annotations


import numpy as np

from repro.errors import EstimationError

__all__ = ["sample_covariance", "forward_backward_covariance"]


def sample_covariance(snapshots: np.ndarray,
                      diagonal_loading: float = 0.0) -> np.ndarray:
    """Return the sample covariance matrix of an ``(M, N)`` snapshot matrix.

    Parameters
    ----------
    snapshots:
        ``(M, N)`` complex matrix of M antennas by N time samples.
    diagonal_loading:
        Non-negative value added to the diagonal, relative to the mean
        diagonal power (0 disables loading).

    Returns
    -------
    numpy.ndarray
        ``(M, M)`` Hermitian positive semi-definite matrix.
    """
    snapshots = np.asarray(snapshots, dtype=np.complex128)
    if snapshots.ndim != 2:
        raise EstimationError(
            f"snapshot matrix must be two-dimensional, got shape {snapshots.shape}")
    num_antennas, num_snapshots = snapshots.shape
    if num_snapshots < 1:
        raise EstimationError("need at least one snapshot to estimate covariance")
    if diagonal_loading < 0:
        raise EstimationError(
            f"diagonal loading must be non-negative, got {diagonal_loading!r}")
    covariance = snapshots @ snapshots.conj().T / num_snapshots
    # Enforce exact Hermitian symmetry (guards against floating point drift).
    covariance = (covariance + covariance.conj().T) / 2.0
    if diagonal_loading > 0:
        mean_power = float(np.real(np.trace(covariance))) / num_antennas
        covariance = covariance + diagonal_loading * mean_power * np.eye(num_antennas)
    return covariance


def forward_backward_covariance(snapshots: np.ndarray,
                                diagonal_loading: float = 0.0) -> np.ndarray:
    """Return the forward-backward averaged covariance of a ULA snapshot matrix.

    Forward-backward averaging exploits the conjugate symmetry of a uniform
    linear array to decorrelate coherent sources using half as many
    sub-arrays as plain spatial smoothing would need.  It is provided as an
    optional enhancement (the paper uses forward-only smoothing); the
    ablation benchmarks compare the two.
    """
    covariance = sample_covariance(snapshots, diagonal_loading)
    exchange = np.eye(covariance.shape[0])[::-1]
    backward = exchange @ covariance.conj() @ exchange
    return (covariance + backward) / 2.0
