"""Peak detection and matching on AoA pseudospectra.

Two parts of ArrayTrack need peak handling:

* the multipath suppression algorithm (Section 2.4) matches peaks across
  spectra of frames captured close together in time and removes peaks from
  the primary spectrum that have no counterpart (within five degrees) in the
  others;
* the Table 1 microbenchmark classifies direct-path and reflection-path peaks
  as "changed" or "unchanged" after a small client movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.constants import PEAK_MATCH_TOLERANCE_DEG
from repro.errors import EstimationError
from repro.geometry.vector import angle_difference_deg
from repro.core.spectrum import AoASpectrum

__all__ = ["SpectrumPeak", "find_peaks", "match_peak", "peak_regions"]


@dataclass(frozen=True)
class SpectrumPeak:
    """A local maximum of an AoA pseudospectrum.

    Attributes
    ----------
    angle_deg:
        Angle of the peak in the spectrum's local frame.
    power:
        Pseudospectrum value at the peak.
    prominence:
        Height of the peak above the higher of its two flanking minima.
    index:
        Index of the peak on the spectrum grid.
    """

    angle_deg: float
    power: float
    prominence: float
    index: int


def find_peaks(spectrum: AoASpectrum,
               min_relative_height: float = 0.05,
               min_relative_prominence: float = 0.02,
               max_peaks: int | None = None) -> list[SpectrumPeak]:
    """Return the local maxima of ``spectrum``, strongest first.

    Parameters
    ----------
    spectrum:
        The AoA spectrum to analyze.
    min_relative_height:
        Peaks below this fraction of the spectrum maximum are ignored.
    min_relative_prominence:
        Peaks whose prominence is below this fraction of the spectrum
        maximum are ignored (suppresses ripples on the flank of a big peak).
    max_peaks:
        Optional cap on the number of returned peaks.
    """
    if not 0.0 <= min_relative_height <= 1.0:
        raise EstimationError("min_relative_height must be in [0, 1]")
    power = spectrum.power
    n = power.shape[0]
    peak_value = float(np.max(power))
    if peak_value <= 0:
        return []
    height_floor = min_relative_height * peak_value
    prominence_floor = min_relative_prominence * peak_value
    peaks: list[SpectrumPeak] = []
    for i in range(n):
        left = power[(i - 1) % n]
        right = power[(i + 1) % n]
        value = power[i]
        if value < height_floor:
            continue
        # A circular local maximum (plateaus resolved towards the left edge).
        if value > left and value >= right:
            prominence = _circular_prominence(power, i)
            if prominence < prominence_floor:
                continue
            peaks.append(SpectrumPeak(
                angle_deg=float(spectrum.angles_deg[i]),
                power=float(value),
                prominence=float(prominence),
                index=i,
            ))
    peaks.sort(key=lambda p: p.power, reverse=True)
    if max_peaks is not None:
        peaks = peaks[:max_peaks]
    return peaks


def _circular_prominence(power: np.ndarray, peak_index: int) -> float:
    """Return the prominence of the peak at ``peak_index`` on a circular grid."""
    n = power.shape[0]
    peak_value = power[peak_index]
    # Walk left and right until a value higher than the peak is met (or the
    # whole circle has been traversed); track the minimum along the way.
    left_min = peak_value
    for step in range(1, n):
        value = power[(peak_index - step) % n]
        if value > peak_value:
            break
        left_min = min(left_min, value)
    right_min = peak_value
    for step in range(1, n):
        value = power[(peak_index + step) % n]
        if value > peak_value:
            break
        right_min = min(right_min, value)
    return float(peak_value - max(left_min, right_min))


def match_peak(peak: SpectrumPeak, candidates: Sequence[SpectrumPeak],
               tolerance_deg: float = PEAK_MATCH_TOLERANCE_DEG) -> SpectrumPeak | None:
    """Return the closest candidate within ``tolerance_deg`` of ``peak``.

    Section 2.4 considers a bearing "unchanged" if the corresponding peaks of
    two spectra lie within five degrees of each other.
    """
    if tolerance_deg < 0:
        raise EstimationError("tolerance must be non-negative")
    best: SpectrumPeak | None = None
    best_distance = float("inf")
    for candidate in candidates:
        distance = angle_difference_deg(peak.angle_deg, candidate.angle_deg)
        if distance <= tolerance_deg and distance < best_distance:
            best = candidate
            best_distance = distance
    return best


def peak_regions(spectrum: AoASpectrum, peak: SpectrumPeak,
                 valley_fraction: float = 0.5) -> np.ndarray:
    """Return a boolean mask of grid points belonging to ``peak``'s lobe.

    The lobe extends from the peak outwards (circularly) in both directions
    until the spectrum either rises again or falls below ``valley_fraction``
    times the peak value.  Used by the multipath suppression step to remove
    an entire unmatched lobe rather than a single grid point.
    """
    if not 0.0 <= valley_fraction < 1.0:
        raise EstimationError("valley_fraction must be in [0, 1)")
    power = spectrum.power
    n = power.shape[0]
    mask = np.zeros(n, dtype=bool)
    mask[peak.index] = True
    floor = valley_fraction * peak.power
    previous = power[peak.index]
    for step in range(1, n):
        index = (peak.index + step) % n
        value = power[index]
        if value > previous or value < floor:
            break
        mask[index] = True
        previous = value
    previous = power[peak.index]
    for step in range(1, n):
        index = (peak.index - step) % n
        value = power[index]
        if value > previous or value < floor:
            break
        mask[index] = True
        previous = value
    return mask
