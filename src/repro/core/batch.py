"""Batched multi-client location synthesis (Equation 8 across many clients).

The seed implementation localized one client per call: for every fix it
re-derived each AP's bearing table, re-built each spectrum's interpolation
indices, and folded the Equation 8 product in per-client Python loops.  All
of that work except the final product depends only on the *deployment* (AP
positions/orientations, angle grid, search grid), not on the client, so a
server localizing hundreds of clients against the same six APs repeats it
hundreds of times.

:class:`BatchLocalizer` restructures the computation around that
observation:

1. bearing tables come from the shared
   :class:`~repro.core.cache.BearingGridCache` (one ``arctan2`` sweep per AP
   per deployment);
2. spectra are grouped by AP "placement" (position, orientation, angle
   grid), the circular-interpolation table is built once per group, and the
   power planes of *all* clients heard by that AP are gathered in one stacked
   NumPy fancy-indexing pass;
3. the Equation 8 product is folded per client, in each client's own
   spectrum order, so a batched fix is bit-for-bit identical to the same
   client localized alone;
4. hill-climbing refinement (Section 2.5) is seeded from each client's own
   likelihood plane and, by default, driven by the *vectorized* refiner
   (:func:`repro.core.optimizer.refine_many`): each round stacks the
   compass-neighbour candidates of every active climber of every client and
   evaluates them in one Equation 8 pass per AP slot
   (:class:`_StackedObjective`), replaying the serial climber's exact
   tie-breaking and evaluation budget so refined fixes stay bit-for-bit
   identical to the per-candidate reference path
   (``LocalizerConfig.vectorized_refinement=False``).

:class:`~repro.core.localizer.LocationEstimator` is a thin wrapper running
this engine with a batch of one, so there is exactly one synthesis code
path to test and optimize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

try:  # SciPy is optional: it accelerates the fold but never changes results.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via the forced fallback test
    _sparse = None

from repro.errors import EstimationError
from repro.geometry.vector import Point2D, normalize_angle_deg
from repro.core.cache import (
    BearingGridCache,
    default_bearing_cache,
    grid_axes,
)
from repro.core.likelihood import LikelihoodMap, likelihood_at
from repro.core.localizer import (
    LocalizerConfig,
    LocationEstimate,
)
from repro.core.optimizer import (
    HillClimbResult,
    refine_from_seeds,
    refine_many,
)
from repro.core.spectrum import AoASpectrum

__all__ = ["BatchLocalizer", "count_distinct_sources"]


def count_distinct_sources(spectra: Sequence[AoASpectrum]) -> int:
    """Return the number of distinct APs contributing to ``spectra``.

    Spectra carrying an ``ap_id`` are counted once per distinct id; spectra
    without one (synthetic test spectra, mostly) are each counted as their
    own source.  The seed expression ``{ap ids} or {object ids}`` collapsed
    to *only* the named ids as soon as a single spectrum carried one,
    undercounting mixed batches.
    """
    named = {spectrum.ap_id for spectrum in spectra if spectrum.ap_id}
    anonymous = sum(1 for spectrum in spectra if not spectrum.ap_id)
    return len(named) + anonymous


def _placement_key(spectrum: AoASpectrum) -> tuple:
    """Key identifying one AP placement + angle grid (shared fold/refine)."""
    return (
        float(spectrum.ap_position.x),
        float(spectrum.ap_position.y),
        float(spectrum.ap_orientation_deg),
        int(spectrum.angles_deg.shape[0]),
        float(spectrum.resolution_deg),
    )


@dataclass
class _PlacementGroup:
    """All (client, spectrum) jobs sharing one AP placement and angle grid."""

    ap_position: Point2D
    # Power rows to evaluate, one per job, all on the same angle grid.
    powers: list[np.ndarray]
    # (client key, slot in that client's spectrum list) per job.
    jobs: list[tuple[str, int]]
    # Representative spectrum (supplies orientation + angle grid).
    exemplar: AoASpectrum


class _FoldedBatch:
    """Per-client Equation 8 products, stored row-wise or cell-major.

    The rectangular sparse path produces one ``(cells, clients)`` matrix;
    the fallback paths produce one flat ``(cells,)`` row per client.  This
    wrapper gives the estimation stage a uniform view of both, including a
    vectorized batch argmax for grid-only fixes.
    """

    def __init__(self, order: Sequence[str],
                 rows: Mapping[str, np.ndarray] | None = None,
                 cell_major: np.ndarray | None = None) -> None:
        self._index = {key: index for index, key in enumerate(order)}
        self._rows = rows
        self._cell_major = cell_major
        self._argmax: np.ndarray | None = None

    def flat_values(self, key: str) -> np.ndarray:
        """Return the client's flat likelihood plane, C-contiguous."""
        if self._rows is not None:
            return self._rows[key]
        assert self._cell_major is not None
        return np.ascontiguousarray(self._cell_major[:, self._index[key]])

    def peak(self, key: str) -> tuple[int, float]:
        """Return ``(flat cell index, likelihood)`` of the client's maximum."""
        if self._cell_major is not None:
            if self._argmax is None:
                # One streaming pass over the whole batch; NumPy's reduction
                # keeps first-maximum semantics, matching 1-D argmax.
                self._argmax = np.argmax(self._cell_major, axis=0)
            column = self._index[key]
            flat_index = int(self._argmax[column])
            return flat_index, float(self._cell_major[flat_index, column])
        assert self._rows is not None
        values = self._rows[key]
        flat_index = int(np.argmax(values))
        return flat_index, float(values[flat_index])


class _SlotEntry:
    """One (slot index, AP placement) group of the stacked refinement.

    Holds the stacked (and normalized) power rows of every client whose
    ``slot``-th spectrum sits at this placement, plus the unit-index ->
    power-row mapping the evaluator gathers through.
    """

    __slots__ = ("ap_x", "ap_y", "orientation_deg", "resolution_deg",
                 "num_angles", "powers", "maxima", "membership", "rows")

    def __init__(self, exemplar: AoASpectrum) -> None:
        self.ap_x = float(exemplar.ap_position.x)
        self.ap_y = float(exemplar.ap_position.y)
        self.orientation_deg = float(exemplar.ap_orientation_deg)
        self.resolution_deg = float(exemplar.resolution_deg)
        self.num_angles = int(exemplar.angles_deg.shape[0])
        self.powers: np.ndarray = np.empty(0)       # (jobs, angles), stacked
        self.maxima: np.ndarray = np.empty(0)       # per-row max (floor term)
        #: ``membership[u]`` is True when unit ``u`` has a row here; None
        #: means *every* unit does (the rectangular fast path, where the
        #: evaluator skips the boolean select entirely).
        self.membership: np.ndarray | None = None
        self.rows: np.ndarray = np.empty(0, dtype=int)  # unit index -> row


class _StackedObjective:
    """Batched Section 2.5 objective: Equation 8 at arbitrary points.

    The serial refinement objective is ``likelihood_at(normalized_spectra,
    position, floor)`` with out-of-bounds candidates rated 0.0; this class
    is its stacked equivalent for :func:`repro.core.optimizer.refine_many`:
    ``evaluate(units, xs, ys)`` scores every candidate point against its
    own client's spectra in one NumPy pass per (slot, AP placement) group.

    Bit-exactness with the scalar path holds because every step performs
    the identical elementwise arithmetic -- the ``arctan2`` bearing (with
    :func:`~repro.geometry.vector.normalize_angle_deg`'s fold of a
    float-rounded 360.0 back to 0.0), the circular interpolation of
    :meth:`~repro.core.spectrum.AoASpectrum.interpolation_table`, the
    collocated-point zero of
    :meth:`~repro.core.spectrum.AoASpectrum.power_towards` and the floor
    max of :func:`~repro.core.likelihood.likelihood_at` -- and because the
    per-point product is folded slot by slot, i.e. in each client's own
    spectrum order, exactly like the scalar fold.
    """

    def __init__(self, keys: Sequence[str],
                 prepared: Mapping[str, list[AoASpectrum]],
                 bounds: tuple[float, float, float, float],
                 config: LocalizerConfig) -> None:
        self._bounds = bounds
        self._floor = config.spectrum_floor
        num_units = len(keys)
        entries: dict[tuple[int, tuple], _SlotEntry] = {}
        jobs: dict[tuple[int, tuple], list[tuple[int, np.ndarray]]] = {}
        max_slots = 0
        for unit, key in enumerate(keys):
            spectra = prepared[key]
            max_slots = max(max_slots, len(spectra))
            for slot, spectrum in enumerate(spectra):
                group = (slot, _placement_key(spectrum))
                if group not in entries:
                    entries[group] = _SlotEntry(spectrum)
                    jobs[group] = []
                jobs[group].append((unit, spectrum.power))
        #: Entries per slot index; iterating slots in ascending order folds
        #: every client's product in its own spectrum order.
        self._slots: list[list[_SlotEntry]] = [[] for _ in range(max_slots)]
        for group, entry in entries.items():
            slot = group[0]
            group_jobs = jobs[group]
            stacked = np.stack([power for _, power in group_jobs])
            if config.normalize_spectra:
                maxima = np.max(stacked, axis=1)
                if np.any(maxima <= 0):
                    raise EstimationError(
                        "cannot normalize an all-zero spectrum")
                stacked = stacked / maxima[:, None]
            entry.powers = stacked
            # ``likelihood_at`` floors against each (normalized) spectrum's
            # own maximum, so recompute it on the rows actually evaluated.
            entry.maxima = np.max(stacked, axis=1)
            units = np.array([unit for unit, _ in group_jobs], dtype=int)
            rows = np.zeros(num_units, dtype=int)
            rows[units] = np.arange(units.shape[0])
            entry.rows = rows
            if units.shape[0] != num_units:
                membership = np.zeros(num_units, dtype=bool)
                membership[units] = True
                entry.membership = membership
            self._slots[slot].append(entry)

    def evaluate(self, units: np.ndarray, xs: np.ndarray,
                 ys: np.ndarray) -> np.ndarray:
        """Return the refinement objective at every candidate point."""
        units = np.asarray(units, dtype=int)
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        # The serial objective short-circuits out-of-bounds candidates to
        # 0.0 without touching the spectra; do the same (climbers near the
        # boundary probe outside every round) and fold only the rest.
        xmin, ymin, xmax, ymax = self._bounds
        inside = (xs >= xmin) & (xs <= xmax) & (ys >= ymin) & (ys <= ymax)
        if not np.all(inside):
            values = np.zeros(xs.shape[0])
            kept = np.nonzero(inside)[0]
            if kept.shape[0]:
                values[kept] = self._fold_points(units[kept], xs[kept],
                                                 ys[kept])
            return values
        return self._fold_points(units, xs, ys)

    def _fold_points(self, units: np.ndarray, xs: np.ndarray,
                     ys: np.ndarray) -> np.ndarray:
        """Equation 8 product at in-bounds points, slot-ordered per client."""
        likelihood = np.ones(xs.shape[0])
        for slot_entries in self._slots:
            for entry in slot_entries:
                if entry.membership is None:
                    likelihood *= self._spectrum_values(entry, units, xs, ys)
                    continue
                mask = entry.membership[units]
                if not np.any(mask):
                    continue
                selected = np.nonzero(mask)[0]
                likelihood[selected] *= self._spectrum_values(
                    entry, units[selected], xs[selected], ys[selected])
        return likelihood

    def _spectrum_values(self, entry: _SlotEntry, owners: np.ndarray,
                         xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """One placement's ``P_i(theta_i(x))`` term for a set of points."""
        dx = xs - entry.ap_x
        dy = ys - entry.ap_y
        # The scalar objective takes its bearing from
        # :func:`~repro.geometry.vector.bearing_deg`, i.e. ``math.atan2``.
        # NumPy's ``arctan2`` kernel disagrees with libm in the last ulp for
        # a few percent of inputs, which would break the bit-equality
        # guarantee -- so the (cheap, candidates-only) bearing stays on the
        # exact scalar call chain; everything after it is IEEE-exact
        # elementwise arithmetic and safely vectorized.
        bearings = np.array([
            normalize_angle_deg(math.degrees(math.atan2(dy_i, dx_i)))
            if (dx_i != 0.0 or dy_i != 0.0) else 0.0
            for dx_i, dy_i in zip(dx.tolist(), dy.tolist(), strict=True)])
        query = (bearings - entry.orientation_deg) % 360.0
        positions = query / entry.resolution_deg
        floor_positions = np.floor(positions)
        lower = floor_positions.astype(int) % entry.num_angles
        upper = (lower + 1) % entry.num_angles
        fraction = positions - floor_positions
        rows = entry.rows[owners]
        values = (1.0 - fraction) * entry.powers[rows, lower] \
            + fraction * entry.powers[rows, upper]
        collocated = np.hypot(dx, dy) < 1e-9
        if np.any(collocated):
            # power_towards rates the AP's own location zero (the bearing
            # is undefined there); the floor below still applies, exactly
            # like the scalar path.
            values[collocated] = 0.0
        if self._floor > 0:
            np.maximum(values, self._floor * entry.maxima[rows], out=values)
        return values


class BatchLocalizer:
    """Vectorized Equation 8 synthesis for many clients in one pass.

    Parameters
    ----------
    bounds:
        ``(xmin, ymin, xmax, ymax)`` search area in metres.
    config:
        Estimator configuration shared by every client in a batch.
    bearing_cache:
        Cache of per-AP bearing tables; the process-wide default is used
        when omitted.
    """

    def __init__(self, bounds: tuple[float, float, float, float],
                 config: LocalizerConfig | None = None,
                 bearing_cache: BearingGridCache | None = None) -> None:
        xmin, ymin, xmax, ymax = bounds
        if xmax <= xmin or ymax <= ymin:
            raise EstimationError(f"invalid bounds {bounds!r}")
        self.bounds = (float(xmin), float(ymin), float(xmax), float(ymax))
        self.config = config if config is not None else LocalizerConfig()
        self._bearing_cache = bearing_cache if bearing_cache is not None \
            else default_bearing_cache()
        # Sparse interpolation operators, one per (AP placement, resolution);
        # built lazily and kept for the localizer's lifetime because they
        # depend only on static deployment geometry.
        self._plan_cache: dict[tuple, "_sparse.csr_matrix"] = {}

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def estimate_batch(self,
                       spectra_by_client: Mapping[str, Sequence[AoASpectrum]]
                       ) -> dict[str, LocationEstimate]:
        """Localize every client of the batch from its per-AP spectra.

        Parameters
        ----------
        spectra_by_client:
            Processed spectra per client key (suppression, weighting and
            symmetry removal already applied).  Every spectrum must carry
            its AP position.

        Returns
        -------
        dict
            One :class:`~repro.core.localizer.LocationEstimate` per client
            key, identical (bit for bit) to localizing each client alone.

        Raises
        ------
        EstimationError
            If the batch is empty, any client has no spectra, or a spectrum
            lacks its AP position.
        """
        if not spectra_by_client:
            raise EstimationError("cannot localize an empty client batch")
        prepared = self._prepare(spectra_by_client)
        folded = self._fold_batch(prepared)
        seeds, heatmaps = self._seed_batch(prepared, folded)
        refined = self._refine_batch(prepared, seeds)
        estimates: dict[str, LocationEstimate] = {}
        for key, spectra in prepared.items():
            estimates[key] = self._estimate_client(
                key, spectra, folded, heatmaps.get(key), refined.get(key))
        return estimates

    # ------------------------------------------------------------------
    # Stage 1: validation and normalization
    # ------------------------------------------------------------------
    def _prepare(self, spectra_by_client: Mapping[str, Sequence[AoASpectrum]]
                 ) -> dict[str, list[AoASpectrum]]:
        """Validate the batch; normalization happens later, in stacked form."""
        prepared: dict[str, list[AoASpectrum]] = {}
        for key, spectra in spectra_by_client.items():
            spectra = list(spectra)
            if not spectra:
                raise EstimationError(
                    f"cannot localize client {key!r} without any AoA spectra")
            for spectrum in spectra:
                if spectrum.ap_position is None:
                    raise EstimationError(
                        "every spectrum must carry its AP position for synthesis")
            prepared[key] = spectra
        return prepared

    def _normalize_stack(self, stacked: np.ndarray) -> np.ndarray:
        """Scale each stacked power row to unit maximum (Equation 8 prep).

        Row-wise equivalent of :meth:`AoASpectrum.normalized` -- the same
        single division per element -- but performed on the already-stacked
        batch so no per-spectrum dataclass copies are made on the hot path.
        """
        maxima = np.max(stacked, axis=1)
        if np.any(maxima <= 0):
            raise EstimationError("cannot normalize an all-zero spectrum")
        stacked /= maxima[:, None]
        return stacked

    # ------------------------------------------------------------------
    # Stage 2: stacked per-AP grid evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def _placement_key(spectrum: AoASpectrum) -> tuple:
        return _placement_key(spectrum)

    def _interpolation_table(self, exemplar: AoASpectrum
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the grid-to-spectrum interpolation table for one placement."""
        bearing_grid = self._bearing_cache.get(
            self.bounds, self.config.grid_resolution_m, exemplar.ap_position)
        return exemplar.interpolation_table(
            bearing_grid.bearings_deg - exemplar.ap_orientation_deg)

    def _interpolation_plan(self, exemplar: AoASpectrum) -> "_sparse.csr_matrix":
        """Return the cached ``(cells, angles)`` sparse interpolation operator.

        Row ``g`` holds ``1 - fraction`` at column ``lower[g]`` and
        ``fraction`` at column ``upper[g]``, so ``plan @ powers`` evaluates
        the circular interpolation for every grid cell with two multiplies
        and one (commutative, hence bit-exact) addition per cell -- the same
        arithmetic as :meth:`_gather_chunk`, at a fraction of the memory
        traffic.  Depends only on deployment geometry, so it is built once
        per (AP placement, grid resolution) and reused for every batch.
        """
        key = self._placement_key(exemplar) \
            + (float(self.config.grid_resolution_m),)
        plan = self._plan_cache.get(key)
        if plan is None:
            lower, upper, fraction = self._interpolation_table(exemplar)
            cells = np.arange(lower.shape[0])
            plan = _sparse.csr_matrix(
                (np.concatenate([1.0 - fraction, fraction]),
                 (np.concatenate([cells, cells]),
                  np.concatenate([lower, upper]))),
                shape=(lower.shape[0], int(exemplar.angles_deg.shape[0])))
            self._plan_cache[key] = plan
        return plan

    @staticmethod
    def _gather_chunk(rows: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                      fraction: np.ndarray, floor: float,
                      out: np.ndarray | None = None) -> np.ndarray:
        """Evaluate a chunk of stacked power rows over the grid, in place.

        Computes ``power[lower] * (1 - fraction) + power[upper] * fraction``
        for every row -- elementwise identical to
        :func:`repro.core.likelihood.spectrum_grid_powers` (multiplication
        commutes exactly in IEEE arithmetic) -- while keeping every
        temporary at chunk size so the hot loop stays cache resident.
        ``out``, when given, receives the result without an extra copy.
        """
        if out is None:
            gathered = rows[:, lower]
        else:
            gathered = np.take(rows, lower, axis=1, out=out)
        gathered *= 1.0 - fraction
        upper_part = rows[:, upper]
        upper_part *= fraction
        gathered += upper_part
        if floor > 0:
            maxima = np.max(rows, axis=1)
            np.maximum(gathered, floor * maxima[:, None], out=gathered)
        return gathered

    def _fold_batch(self, prepared: Mapping[str, list[AoASpectrum]]
                    ) -> _FoldedBatch:
        """Fold each client's Equation 8 product over the flat grid.

        When every client carries the same sequence of AP placements (the
        common server workload: each client heard once by each deployed AP)
        the evaluation runs down the rectangular fast path: the power rows
        of all clients are stacked per AP and evaluated in one pass -- via
        the cached sparse interpolation operator when SciPy is available,
        or chunked in-place gathers otherwise.  Ragged batches (clients
        heard by different AP subsets) fall back to a per-placement
        grouping that evaluates each group in one stacked pass and folds
        per client.  All paths perform the same elementwise operations in
        each client's own spectrum order, so every client's plane is
        bit-for-bit the one a single-client fix computes.
        """
        keys = list(prepared.keys())
        sequences = {key: [self._placement_key(s) for s in prepared[key]]
                     for key in keys}
        first = sequences[keys[0]]
        rectangular = len(set(first)) == len(first) and all(
            sequences[key] == first for key in keys)
        if rectangular and _sparse is not None:
            return self._fold_rectangular_sparse(keys, prepared)
        if rectangular:
            return self._fold_rectangular_gather(keys, prepared)
        return self._fold_ragged(keys, prepared, sequences)

    def _stack_slot(self, keys: list[str],
                    prepared: Mapping[str, list[AoASpectrum]],
                    slot: int) -> np.ndarray:
        """Stack (and normalize) every client's power row for one AP slot."""
        stacked = np.stack([prepared[key][slot].power for key in keys])
        if self.config.normalize_spectra:
            stacked = self._normalize_stack(stacked)
        return stacked

    def _fold_rectangular_sparse(self, keys: list[str],
                                 prepared: Mapping[str, list[AoASpectrum]]
                                 ) -> _FoldedBatch:
        """Fold via cached sparse operators, chunked to stay cache resident.

        Clients are processed in column chunks sized so every per-slot
        ``(cells, chunk)`` plane and the running product fit in the CPU
        cache; only the finished product of each chunk streams out to the
        full ``(cells, clients)`` matrix.
        """
        floor = self.config.spectrum_floor
        slots = []
        for slot in range(len(prepared[keys[0]])):
            exemplar = prepared[keys[0]][slot]
            plan = self._interpolation_plan(exemplar)
            stacked = self._stack_slot(keys, prepared, slot)
            maxima = np.max(stacked, axis=1) if floor > 0 else None
            slots.append((plan, stacked, maxima))
        num_cells = slots[0][0].shape[0]
        num_clients = len(keys)
        chunk = max(1, 524288 // num_cells)
        accumulator = np.empty((num_cells, num_clients))
        for start in range(0, num_clients, chunk):
            stop = min(start + chunk, num_clients)
            chunk_product: np.ndarray | None = None
            for plan, stacked, maxima in slots:
                planes = plan @ stacked[start:stop].T     # (cells, chunk)
                if floor > 0:
                    assert maxima is not None
                    np.maximum(planes, floor * maxima[start:stop][None, :],
                               out=planes)
                if chunk_product is None:
                    chunk_product = planes
                else:
                    chunk_product *= planes
            assert chunk_product is not None
            accumulator[:, start:stop] = chunk_product
        return _FoldedBatch(keys, cell_major=accumulator)

    def _fold_rectangular_gather(self, keys: list[str],
                                 prepared: Mapping[str, list[AoASpectrum]]
                                 ) -> _FoldedBatch:
        """SciPy-free fold: chunked in-place gathers sized for the cache."""
        floor = self.config.spectrum_floor
        tables = []
        for slot in range(len(prepared[keys[0]])):
            exemplar = prepared[keys[0]][slot]
            lower, upper, fraction = self._interpolation_table(exemplar)
            stacked = self._stack_slot(keys, prepared, slot)
            tables.append((lower, upper, fraction, stacked))
        num_cells = tables[0][0].shape[0]
        num_clients = len(keys)
        # Chunk rows so each (chunk, cells) temporary stays near the CPU
        # cache; the fold then touches main memory once per output row.
        chunk = max(1, 524288 // num_cells)
        folded = np.empty((num_clients, num_cells))
        scratch = np.empty((min(chunk, num_clients), num_cells))
        for start in range(0, num_clients, chunk):
            stop = min(start + chunk, num_clients)
            accumulator: np.ndarray | None = None
            for lower, upper, fraction, stacked in tables:
                if accumulator is None:
                    # The first plane lands straight in the output rows;
                    # later planes reuse one scratch buffer per chunk.
                    accumulator = self._gather_chunk(
                        stacked[start:stop], lower, upper, fraction, floor,
                        out=folded[start:stop])
                else:
                    gathered = self._gather_chunk(
                        stacked[start:stop], lower, upper, fraction, floor,
                        out=scratch[:stop - start])
                    accumulator *= gathered
            assert accumulator is not None
        return _FoldedBatch(
            keys, rows={key: folded[index] for index, key in enumerate(keys)})

    def _fold_ragged(self, keys: list[str],
                     prepared: Mapping[str, list[AoASpectrum]],
                     sequences: Mapping[str, list[tuple]]
                     ) -> _FoldedBatch:
        groups: dict[tuple, _PlacementGroup] = {}
        for key in keys:
            for slot, spectrum in enumerate(prepared[key]):
                placement = sequences[key][slot]
                group = groups.get(placement)
                if group is None:
                    group = _PlacementGroup(ap_position=spectrum.ap_position,
                                            powers=[], jobs=[],
                                            exemplar=spectrum)
                    groups[placement] = group
                group.powers.append(spectrum.power)
                group.jobs.append((key, slot))
        floor = self.config.spectrum_floor
        planes: dict[str, list[np.ndarray | None]] = {
            key: [None] * len(prepared[key]) for key in keys}
        for group in groups.values():
            lower, upper, fraction = self._interpolation_table(group.exemplar)
            stacked = np.stack(group.powers, axis=0)      # (jobs, angles)
            if self.config.normalize_spectra:
                stacked = self._normalize_stack(stacked)
            gathered = self._gather_chunk(stacked, lower, upper, fraction,
                                          floor)          # (jobs, cells)
            for row, (key, slot) in enumerate(group.jobs):
                planes[key][slot] = gathered[row]
        folded: dict[str, np.ndarray] = {}
        for key in keys:
            values: np.ndarray | None = None
            for plane in planes[key]:
                assert plane is not None
                values = plane if values is None else values * plane
            assert values is not None
            folded[key] = values
        return _FoldedBatch(keys, rows=folded)

    # ------------------------------------------------------------------
    # Stage 3/4: seeding and refinement
    # ------------------------------------------------------------------
    def _seed_batch(self, prepared: Mapping[str, list[AoASpectrum]],
                    folded: _FoldedBatch
                    ) -> tuple[dict[str, list[tuple[Point2D, float]]],
                               dict[str, LikelihoodMap]]:
        """Extract hill-climb seeds (and optionally heatmaps) per client.

        Each client's folded plane is viewed as a grid map just long enough
        to rank its top cells; the map itself is only *retained* under
        ``keep_heatmap`` (on the cell-major fold path ``flat_values``
        copies, so holding every client's map alive through refinement
        would double the batch's peak memory for nothing).  Grid-only
        estimates without ``keep_heatmap`` skip the reshape entirely and
        use the batched argmax.
        """
        needs_seeds = self.config.refine_with_hill_climbing
        if not needs_seeds and not self.config.keep_heatmap:
            return {}, {}
        x_coords, y_coords = grid_axes(self.bounds,
                                       self.config.grid_resolution_m)
        shape = (y_coords.shape[0], x_coords.shape[0])
        seeds: dict[str, list[tuple[Point2D, float]]] = {}
        heatmaps: dict[str, LikelihoodMap] = {}
        for key in prepared:
            heatmap = LikelihoodMap(x_coords, y_coords,
                                    folded.flat_values(key).reshape(shape))
            if needs_seeds:
                seeds[key] = heatmap.top_positions(self.config.num_seeds)
            if self.config.keep_heatmap:
                heatmaps[key] = heatmap
        return seeds, heatmaps

    def _refine_batch(self, prepared: Mapping[str, list[AoASpectrum]],
                      seeds_by_key: Mapping[str, list[tuple[Point2D, float]]]
                      ) -> dict[str, HillClimbResult]:
        """Run the Section 2.5 hill climbing for every client of the batch.

        With ``vectorized_refinement`` (the default) all clients climb
        together: each round evaluates the stacked candidates of every
        active climber through :class:`_StackedObjective` -- one Equation 8
        pass per AP slot instead of one Python call per candidate point.
        The serial reference path runs :func:`refine_from_seeds` per client;
        both produce bit-for-bit identical results.
        """
        if not self.config.refine_with_hill_climbing:
            return {}
        keys = list(prepared.keys())
        initial_step_m = self.config.grid_resolution_m / 2.0
        min_step_m = self.config.grid_resolution_m / 20.0
        if self.config.vectorized_refinement:
            objective = _StackedObjective(keys, prepared, self.bounds,
                                          self.config)
            results = refine_many(objective.evaluate,
                                  [seeds_by_key[key] for key in keys],
                                  initial_step_m=initial_step_m,
                                  min_step_m=min_step_m)
            return dict(zip(keys, results, strict=True))
        refined: dict[str, HillClimbResult] = {}
        for key in keys:
            spectra = prepared[key]
            normalized = [s.normalized() for s in spectra] \
                if self.config.normalize_spectra else spectra
            refined[key] = self._refine(normalized, seeds_by_key[key],
                                        initial_step_m, min_step_m)
        return refined

    def _estimate_client(self, key: str, spectra: list[AoASpectrum],
                         folded: _FoldedBatch,
                         heatmap: LikelihoodMap | None,
                         refined: HillClimbResult | None
                         ) -> LocationEstimate:
        if refined is not None:
            position, value = refined.position, refined.value
        else:
            # Grid-only estimates only need the peak cell, so skip the full
            # seed ranking and take the (batch-vectorized) argmax directly.
            x_coords, y_coords = grid_axes(self.bounds,
                                           self.config.grid_resolution_m)
            flat_index, value = folded.peak(key)
            row, column = divmod(flat_index, x_coords.shape[0])
            position = Point2D(float(x_coords[column]), float(y_coords[row]))
        client = key or (spectra[0].client_id if spectra else "")
        return LocationEstimate(
            position=position,
            likelihood=float(value),
            num_aps=count_distinct_sources(spectra),
            client_id=client,
            heatmap=heatmap if self.config.keep_heatmap else None,
        )

    def _refine(self, spectra: Sequence[AoASpectrum],
                seeds: Sequence[tuple[Point2D, float]],
                initial_step_m: float,
                min_step_m: float) -> HillClimbResult:
        """Serial reference refinement for one client (one call per point)."""

        def objective(position: Point2D) -> float:
            if not self._within_bounds(position):
                return 0.0
            return likelihood_at(spectra, position,
                                 floor=self.config.spectrum_floor)

        return refine_from_seeds(objective, seeds,
                                 initial_step_m=initial_step_m,
                                 min_step_m=min_step_m)

    def _within_bounds(self, position: Point2D) -> bool:
        xmin, ymin, xmax, ymax = self.bounds
        return xmin <= position.x <= xmax and ymin <= position.y <= ymax
