"""ArrayTrack's core contribution: AoA spectra and location synthesis.

This package implements Section 2 of the paper: MUSIC-based AoA
pseudospectrum generation with spatial smoothing (2.3), array geometry
weighting (2.3.3), array symmetry removal (2.3.4), multipath suppression
across frames (2.4), and the likelihood synthesis / hill-climbing location
estimator (2.5).

Beyond the paper, :mod:`repro.core.cache` memoizes the geometry-derived
tables (Equation 6 steering matrices, Equation 8 bearing grids) and
:mod:`repro.core.batch` evaluates the Equation 8 synthesis for many clients
in one vectorized pass; the single-client estimator is a batch of one.
"""

from repro.core.cache import (
    BearingGrid,
    BearingGridCache,
    CacheStats,
    SteeringCache,
    WindowCache,
    clear_default_caches,
    default_bearing_cache,
    default_steering_cache,
    default_window_cache,
    grid_axes,
)
from repro.core.covariance import (
    forward_backward_covariance,
    forward_backward_covariance_many,
    sample_covariance,
    sample_covariance_many,
)
from repro.core.subspace import (
    SubspaceDecomposition,
    SubspaceDecompositionBatch,
    decompose,
    decompose_many,
    estimate_num_sources_mdl,
)
from repro.core.smoothing import (
    effective_antennas,
    smooth_snapshots,
    smoothed_covariance,
    smoothed_covariance_many,
)
from repro.core.music import (
    bartlett_spectrum,
    bartlett_spectrum_many,
    capon_spectrum,
    capon_spectrum_many,
    music_spectrum,
    music_spectrum_many,
    spectrum_from_noise_subspace,
    spectrum_from_noise_subspace_many,
)
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.core.peaks import SpectrumPeak, find_peaks, match_peak, peak_regions
from repro.core.weighting import (
    apply_geometry_weighting,
    cached_geometry_window,
    geometry_window,
)
from repro.core.symmetry import SymmetryResolver, resolve_symmetry
from repro.core.suppression import (
    MultipathSuppressor,
    SuppressorConfig,
    group_spectra_by_time,
    suppress_multipath,
)
from repro.core.likelihood import (
    LikelihoodMap,
    likelihood_at,
    spectrum_grid_powers,
    synthesize_likelihood,
)
from repro.core.optimizer import HillClimbResult, hill_climb, refine_from_seeds
from repro.core.pipeline import SpectrumComputer, SpectrumConfig
from repro.core.localizer import LocalizerConfig, LocationEstimate, LocationEstimator
from repro.core.batch import BatchLocalizer, count_distinct_sources

__all__ = [
    "BatchLocalizer",
    "BearingGrid",
    "BearingGridCache",
    "CacheStats",
    "SteeringCache",
    "WindowCache",
    "clear_default_caches",
    "count_distinct_sources",
    "default_bearing_cache",
    "default_steering_cache",
    "default_window_cache",
    "grid_axes",
    "spectrum_grid_powers",
    "forward_backward_covariance",
    "forward_backward_covariance_many",
    "sample_covariance",
    "sample_covariance_many",
    "SubspaceDecomposition",
    "SubspaceDecompositionBatch",
    "decompose",
    "decompose_many",
    "estimate_num_sources_mdl",
    "effective_antennas",
    "smooth_snapshots",
    "smoothed_covariance",
    "smoothed_covariance_many",
    "bartlett_spectrum",
    "bartlett_spectrum_many",
    "capon_spectrum",
    "capon_spectrum_many",
    "music_spectrum",
    "music_spectrum_many",
    "spectrum_from_noise_subspace",
    "spectrum_from_noise_subspace_many",
    "AoASpectrum",
    "default_angle_grid",
    "SpectrumPeak",
    "find_peaks",
    "match_peak",
    "peak_regions",
    "apply_geometry_weighting",
    "cached_geometry_window",
    "geometry_window",
    "SymmetryResolver",
    "resolve_symmetry",
    "MultipathSuppressor",
    "SuppressorConfig",
    "group_spectra_by_time",
    "suppress_multipath",
    "LikelihoodMap",
    "likelihood_at",
    "synthesize_likelihood",
    "HillClimbResult",
    "hill_climb",
    "refine_from_seeds",
    "SpectrumComputer",
    "SpectrumConfig",
    "LocalizerConfig",
    "LocationEstimate",
    "LocationEstimator",
]
