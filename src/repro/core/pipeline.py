"""Per-AP AoA spectrum computation pipeline (snapshots in, spectrum out).

This module wires the Section 2.3 steps together: sample covariance with
spatial smoothing (2.3.2), the MUSIC pseudospectrum (2.3.1), mirroring of the
linear array's 180-degree spectrum onto the full circle, array-geometry
weighting (2.3.3), and -- when a nine-antenna capture is available --
array-symmetry removal (2.3.4).  Multipath suppression (2.4) operates across
frames and therefore lives one level up, in the server.

The ``method`` knob also exposes the Bartlett and Capon estimators so the
ablation benchmark can swap the spectrum estimator while keeping everything
else fixed.

Beyond the single-frame :meth:`SpectrumComputer.compute`, the pipeline has a
batched frontend: :meth:`SpectrumComputer.compute_many` (and
:meth:`SpectrumComputer.compute_many_with_symmetry`) take all of a capture
batch's calibrated snapshot matrices at once and run every Section 2.3 stage
in stacked NumPy passes -- one stacked covariance/smoothing pass, one stacked
``np.linalg.eigh``, the vectorized source-count rule, one noise-projection
GEMM per (geometry, D) frame group, vectorized mirroring, the cached
W(theta) window and a stacked Bartlett side-power pass for symmetry removal.
The batched path is gated by :attr:`SpectrumConfig.vectorized_frontend` and
is bit-for-bit identical to looping :meth:`SpectrumComputer.compute` over
the same frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.constants import (
    DEFAULT_ANGLE_RESOLUTION_DEG,
    DEFAULT_SMOOTHING_GROUPS,
)
from repro.dtypes import as_complex_array
from repro.errors import EstimationError
from repro.array.deployment import DeployedArray
from repro.array.geometry import ArrayGeometry
from repro.array.receiver import SnapshotMatrix
from repro.core.covariance import sample_covariance, sample_covariance_many
from repro.core.music import (
    bartlett_spectrum,
    bartlett_spectrum_many,
    capon_spectrum,
    capon_spectrum_many,
    music_spectrum,
    music_spectrum_many,
)
from repro.core.smoothing import (
    effective_antennas,
    smoothed_covariance,
    smoothed_covariance_many,
)
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.core.symmetry import SymmetryResolver
from repro.core.weighting import apply_geometry_weighting, cached_geometry_window

__all__ = ["SpectrumConfig", "SpectrumComputer"]

_VALID_METHODS = ("music", "bartlett", "capon")


@dataclass
class SpectrumConfig:
    """Configuration of the per-AP spectrum computation.

    Attributes
    ----------
    smoothing_groups:
        Number of spatial-smoothing sub-arrays ``NG`` (the paper settles on
        2; 1 disables smoothing).
    angle_resolution_deg:
        Angle grid step of the output spectrum.
    apply_weighting:
        Apply the array-geometry window W(theta) of Section 2.3.3.
    num_sources:
        Force the MUSIC source count; automatic thresholding when None.
    method:
        Spectrum estimator: "music" (the paper), "bartlett" or "capon".
    forward_backward:
        Also apply forward-backward averaging during smoothing (ablation).
    elevation_deg:
        Assumed common elevation of arrivals (0 unless a height difference
        between AP and client is being modelled explicitly).
    symmetry_attenuation:
        Residual scale applied to the rejected half plane during array
        symmetry removal.  A small non-zero value keeps an occasional wrong
        side decision from zeroing the true bearing out of the likelihood
        product entirely.
    vectorized_frontend:
        Run :meth:`SpectrumComputer.compute_many` through the stacked
        Section 2.3 pipeline (the default).  ``False`` keeps the serial
        per-frame path as the reference implementation; both produce
        bit-for-bit identical spectra.
    """

    smoothing_groups: int = DEFAULT_SMOOTHING_GROUPS
    angle_resolution_deg: float = DEFAULT_ANGLE_RESOLUTION_DEG
    apply_weighting: bool = True
    num_sources: int | None = None
    method: str = "music"
    forward_backward: bool = False
    elevation_deg: float = 0.0
    symmetry_attenuation: float = 0.1
    vectorized_frontend: bool = True

    def __post_init__(self) -> None:
        if self.smoothing_groups < 1:
            raise EstimationError("smoothing_groups must be >= 1")
        if self.method not in _VALID_METHODS:
            raise EstimationError(
                f"unknown spectrum method {self.method!r}; valid: {_VALID_METHODS}")
        if not isinstance(self.vectorized_frontend, bool):
            raise EstimationError(
                f"vectorized_frontend must be a boolean, "
                f"got {self.vectorized_frontend!r}")


class SpectrumComputer:
    """Computes a full-circle AoA spectrum from one frame's snapshots.

    Parameters
    ----------
    config:
        Pipeline configuration; a default (paper-faithful) configuration is
        used when omitted.
    """

    def __init__(self, config: SpectrumConfig | None = None) -> None:
        self.config = config if config is not None else SpectrumConfig()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def compute(self, snapshots: SnapshotMatrix, array: DeployedArray,
                linear_indices: Sequence[int] | None = None) -> AoASpectrum:
        """Return the AoA spectrum for one frame captured by ``array``.

        Parameters
        ----------
        snapshots:
            Calibrated snapshot matrix (per-radio phase offsets already
            compensated by the AP).
        array:
            The deployed array the snapshots were captured on; its first
            (or ``linear_indices``-selected) elements must form the uniform
            linear row used for MUSIC.
        linear_indices:
            Rows of the snapshot matrix forming the uniform linear array.
            Defaults to all rows, which is correct for a plain ULA capture;
            pass the ULA subset explicitly when the capture includes the
            ninth symmetry antenna.
        """
        samples = snapshots.samples
        if linear_indices is None:
            linear_indices = list(range(samples.shape[0]))
        else:
            linear_indices = list(linear_indices)
        if len(linear_indices) < 2:
            raise EstimationError("need at least two linear-array antennas")
        linear_samples = samples[linear_indices, :]
        linear_geometry = array.geometry.subarray(linear_indices) \
            if len(linear_indices) != array.geometry.num_elements \
            else array.geometry
        if not linear_geometry.is_linear():
            raise EstimationError(
                "the selected antennas do not form a linear array; pass "
                "linear_indices selecting the ULA row")
        half_power = self._half_spectrum(linear_samples, linear_geometry,
                                         array.wavelength_m)
        half_angles = default_angle_grid(self.config.angle_resolution_deg,
                                         full_circle=False)
        spectrum = AoASpectrum.from_half_spectrum(
            half_angles, half_power,
            ap_position=array.position,
            ap_orientation_deg=array.orientation_deg,
            client_id=snapshots.client_id,
            ap_id=snapshots.ap_id,
            timestamp_s=snapshots.timestamp_s,
        )
        if self.config.apply_weighting:
            spectrum = apply_geometry_weighting(spectrum)
        return spectrum

    def compute_many(self, snapshots_list: Sequence[SnapshotMatrix],
                     array: DeployedArray,
                     linear_indices: Sequence[int] | None = None
                     ) -> list[AoASpectrum]:
        """Return the AoA spectra of many frames in stacked NumPy passes.

        The batched counterpart of :meth:`compute` and the entry point of
        the vectorized Section 2.3 frontend: the frames' calibrated
        snapshot matrices are stacked into one ``(F, M, N)`` array and all
        per-frame numerics -- covariance/smoothing, eigendecomposition,
        source counting, the Equation 6 noise projection (one GEMM per
        source-count group), mirroring and the W(theta) window -- run once
        over the whole stack.  Results are bit-for-bit identical to
        calling :meth:`compute` frame by frame; with
        ``config.vectorized_frontend = False`` that serial loop *is* the
        implementation (the reference path).

        Parameters
        ----------
        snapshots_list:
            Calibrated snapshot matrices, one per frame; all frames must
            share the same ``(M, N)`` snapshot shape (group mixed captures
            by shape before calling).
        array:
            The deployed array the frames were captured on.
        linear_indices:
            Rows forming the uniform linear array, as in :meth:`compute`.
        """
        snapshots_list = list(snapshots_list)
        if not snapshots_list:
            return []
        if not self.config.vectorized_frontend:
            return [self.compute(snapshots, array, linear_indices)
                    for snapshots in snapshots_list]
        return self.compute_many_stacked(self._stack_samples(snapshots_list),
                                         snapshots_list, array, linear_indices)

    def compute_many_stacked(self, stack: np.ndarray,
                             frames: Sequence[SnapshotMatrix],
                             array: DeployedArray,
                             linear_indices: Sequence[int] | None = None
                             ) -> list[AoASpectrum]:
        """Raw-stack variant of :meth:`compute_many` (always vectorized).

        Callers that already hold the calibrated ``(F, M, N)`` sample stack
        (the AP compensates all frames' phase offsets in one broadcast
        multiply) skip the per-frame re-stacking; ``frames`` only supplies
        each spectrum's metadata (client id, AP id, timestamp).  The
        ``vectorized_frontend`` gate is the caller's responsibility -- this
        *is* the vectorized implementation.
        """
        stack, frames = self._check_stack(stack, frames)
        if not frames:
            return []
        full_angles, full_power = self._full_power_stack(stack, array,
                                                         linear_indices)
        return self._build_spectra(frames, array, full_angles, full_power)

    def compute_many_with_symmetry(self, snapshots_list: Sequence[SnapshotMatrix],
                                   array: DeployedArray,
                                   linear_indices: Sequence[int],
                                   full_indices: Sequence[int] | None = None
                                   ) -> list[AoASpectrum]:
        """Batched :meth:`compute_with_symmetry` over many frames.

        Computes the mirrored spectra through :meth:`compute_many`, then
        resolves every frame's mirror ambiguity in one stacked Bartlett
        side-power pass (Section 2.3.4).  Bit-for-bit identical to the
        serial per-frame path, which ``config.vectorized_frontend = False``
        selects directly.
        """
        snapshots_list = list(snapshots_list)
        if not snapshots_list:
            return []
        if not self.config.vectorized_frontend:
            return [self.compute_with_symmetry(snapshots, array,
                                               linear_indices, full_indices)
                    for snapshots in snapshots_list]
        return self.compute_many_with_symmetry_stacked(
            self._stack_samples(snapshots_list), snapshots_list, array,
            linear_indices, full_indices)

    def compute_many_with_symmetry_stacked(
            self, stack: np.ndarray, frames: Sequence[SnapshotMatrix],
            array: DeployedArray, linear_indices: Sequence[int],
            full_indices: Sequence[int] | None = None
            ) -> list[AoASpectrum]:
        """Raw-stack variant of :meth:`compute_many_with_symmetry`.

        See :meth:`compute_many_stacked` for the contract; the Section
        2.3.4 suppression is applied vectorized on the power stack before
        the output objects are built.
        """
        stack, frames = self._check_stack(stack, frames)
        if not frames:
            return []
        attenuation = self.config.symmetry_attenuation
        if not 0.0 <= attenuation <= 1.0:
            raise EstimationError("attenuation must be in [0, 1]")
        full_angles, full_power = self._full_power_stack(stack, array,
                                                         linear_indices)
        if full_indices is None:
            full_indices = list(range(stack.shape[1]))
        else:
            full_indices = list(full_indices)
        full_geometry = array.geometry.subarray(full_indices) \
            if len(full_indices) != array.geometry.num_elements \
            else array.geometry
        resolver = SymmetryResolver(full_geometry, array.wavelength_m)
        upper, lower = resolver.side_powers_stack(stack[:, full_indices, :],
                                                  full_power, full_angles)
        # Vectorized Section 2.3.4 suppression: scale each frame's weaker
        # half plane in place on the power stack, then build the output
        # objects once (the serial path's suppress_half_plane applies the
        # identical elementwise multiply per frame).
        suppress_lower = upper >= lower
        mask_lower = full_angles >= 180.0
        rows_lower = np.nonzero(suppress_lower)[0]
        rows_upper = np.nonzero(~suppress_lower)[0]
        if rows_lower.size:
            full_power[np.ix_(rows_lower, mask_lower)] *= attenuation
        if rows_upper.size:
            full_power[np.ix_(rows_upper, ~mask_lower)] *= attenuation
        return self._build_spectra(frames, array, full_angles, full_power)

    def compute_with_symmetry(self, snapshots: SnapshotMatrix,
                              array: DeployedArray,
                              linear_indices: Sequence[int],
                              full_indices: Sequence[int] | None = None
                              ) -> AoASpectrum:
        """Compute a spectrum and resolve its mirror ambiguity (Section 2.3.4).

        ``linear_indices`` select the ULA row used for MUSIC; the remaining
        rows (or ``full_indices``) provide the off-row antenna(s) used by
        the Bartlett side-power comparison.
        """
        spectrum = self.compute(snapshots, array, linear_indices)
        if full_indices is None:
            full_indices = list(range(snapshots.samples.shape[0]))
        full_geometry = array.geometry.subarray(list(full_indices)) \
            if len(list(full_indices)) != array.geometry.num_elements \
            else array.geometry
        resolver = SymmetryResolver(full_geometry, array.wavelength_m)
        return resolver.resolve(spectrum,
                                snapshots.samples[list(full_indices), :],
                                attenuation=self.config.symmetry_attenuation)

    # ------------------------------------------------------------------
    # Cache warm-up
    # ------------------------------------------------------------------
    def warm_caches(self, array: DeployedArray,
                    linear_indices: Sequence[int] | None = None,
                    full_indices: Sequence[int] | None = None) -> None:
        """Precompute the steering matrices this pipeline will look up.

        Populates the shared :class:`~repro.core.cache.SteeringCache` with
        the Equation 6 steering continuum of the (smoothed) MUSIC sub-array
        and, when ``full_indices`` are given, the full-geometry grid the
        symmetry resolver's Bartlett scan uses (Section 2.3.4).  Safe to
        call any number of times; identical geometries share one entry, so
        warming a fleet of identical APs costs one computation total.
        """
        from repro.core.cache import default_steering_cache

        cache = default_steering_cache()
        num_elements = array.geometry.num_elements
        if linear_indices is None:
            linear_indices = list(range(num_elements))
        else:
            linear_indices = list(linear_indices)
        linear_geometry = array.geometry.subarray(linear_indices) \
            if len(linear_indices) != num_elements else array.geometry
        if self.config.smoothing_groups > 1:
            sub_size = effective_antennas(len(linear_indices),
                                          self.config.smoothing_groups)
            linear_geometry = linear_geometry.subarray(list(range(sub_size)))
        half_angles = default_angle_grid(self.config.angle_resolution_deg,
                                         full_circle=False)
        cache.get(linear_geometry, half_angles, array.wavelength_m,
                  self.config.elevation_deg)
        if self.config.apply_weighting:
            cached_geometry_window(default_angle_grid(
                self.config.angle_resolution_deg, full_circle=True))
        if full_indices is not None:
            full_indices = list(full_indices)
            full_geometry = array.geometry.subarray(full_indices) \
                if len(full_indices) != num_elements else array.geometry
            resolver = SymmetryResolver(full_geometry, array.wavelength_m)
            full_angles = default_angle_grid(resolver.angle_resolution_deg,
                                             full_circle=True)
            cache.get(full_geometry, full_angles, array.wavelength_m, 0.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _check_stack(stack: np.ndarray, frames: Sequence[SnapshotMatrix]
                     ) -> tuple:
        """Validate a raw sample stack against its frame descriptors."""
        stack = as_complex_array(stack)
        if stack.ndim != 3:
            raise EstimationError(
                f"sample stack must have shape (F, M, N), got {stack.shape}")
        frames = list(frames)
        if len(frames) != stack.shape[0]:
            raise EstimationError(
                f"got {len(frames)} frame descriptors for "
                f"{stack.shape[0]} stacked frames")
        return stack, frames

    @staticmethod
    def _stack_samples(snapshots_list: Sequence[SnapshotMatrix]) -> np.ndarray:
        """Stack the frames' samples into one ``(F, M, N)`` array."""
        shapes = {snapshots.samples.shape for snapshots in snapshots_list}
        if len(shapes) != 1:
            raise EstimationError(
                f"all frames of one batch must share the snapshot matrix "
                f"shape; got {sorted(shapes)} -- group frames by shape "
                f"before batching")
        return np.stack([snapshots.samples for snapshots in snapshots_list])

    def _full_power_stack(self, stack: np.ndarray, array: DeployedArray,
                          linear_indices: Sequence[int] | None
                          ) -> tuple:
        """Run the stacked Section 2.3 stages up to the weighted full circle.

        Returns ``(full_angles, full_power)`` where ``full_power`` is the
        ``(F, K)`` stack of mirrored (and, if configured, W(theta)-weighted)
        spectra -- the common front half of :meth:`compute_many` and
        :meth:`compute_many_with_symmetry`.
        """
        if linear_indices is None:
            linear_indices = list(range(stack.shape[1]))
        else:
            linear_indices = list(linear_indices)
        if len(linear_indices) < 2:
            raise EstimationError("need at least two linear-array antennas")
        linear_stack = stack[:, linear_indices, :]
        linear_geometry = array.geometry.subarray(linear_indices) \
            if len(linear_indices) != array.geometry.num_elements \
            else array.geometry
        if not linear_geometry.is_linear():
            raise EstimationError(
                "the selected antennas do not form a linear array; pass "
                "linear_indices selecting the ULA row")
        half_power = self._half_spectra_stack(linear_stack, linear_geometry,
                                              array.wavelength_m)
        half_points = half_power.shape[1]
        full_angles = np.linspace(0.0, 360.0, 2 * (half_points - 1),
                                  endpoint=False)
        full_power = np.zeros((stack.shape[0], full_angles.shape[0]))
        full_power[:, :half_points] = half_power
        # Vectorized half-circle mirroring: P(360 - theta) = P(theta).
        full_power[:, half_points:] = half_power[:, 1:-1][:, ::-1]
        if self.config.apply_weighting:
            window = cached_geometry_window(full_angles)
            full_power = full_power * window[None, :]
        return full_angles, full_power

    def _build_spectra(self, snapshots_list: Sequence[SnapshotMatrix],
                       array: DeployedArray, full_angles: np.ndarray,
                       full_power: np.ndarray) -> list[AoASpectrum]:
        """Wrap the finished power stack into per-frame spectrum objects."""
        return [AoASpectrum(
                    full_angles, full_power[index],
                    ap_position=array.position,
                    ap_orientation_deg=array.orientation_deg,
                    client_id=snapshots.client_id,
                    ap_id=snapshots.ap_id,
                    timestamp_s=snapshots.timestamp_s)
                for index, snapshots in enumerate(snapshots_list)]

    def _half_spectra_stack(self, linear_stack: np.ndarray,
                            geometry: ArrayGeometry,
                            wavelength_m: float) -> np.ndarray:
        """Return the ``(F, K)`` pseudospectra stack on the [0, 180] range.

        The stacked counterpart of :meth:`_half_spectrum`: each covariance
        variant and each estimator runs one NumPy pass over the whole
        frame stack, producing per-frame rows bit-for-bit identical to the
        serial path.
        """
        config = self.config
        angles = default_angle_grid(config.angle_resolution_deg, full_circle=False)
        num_antennas = linear_stack.shape[1]
        if config.smoothing_groups > 1:
            sub_size = effective_antennas(num_antennas, config.smoothing_groups)
            covariances = smoothed_covariance_many(
                linear_stack, config.smoothing_groups,
                forward_backward=config.forward_backward)
            sub_geometry = geometry.subarray(list(range(sub_size)))
        else:
            covariances = sample_covariance_many(linear_stack)
            sub_geometry = geometry
        if config.method == "music":
            return music_spectrum_many(covariances, sub_geometry, angles,
                                       num_sources=config.num_sources,
                                       wavelength_m=wavelength_m,
                                       elevation_deg=config.elevation_deg)
        if config.method == "bartlett":
            return bartlett_spectrum_many(covariances, sub_geometry, angles,
                                          wavelength_m, config.elevation_deg)
        return capon_spectrum_many(covariances, sub_geometry, angles,
                                   wavelength_m, config.elevation_deg)

    def _half_spectrum(self, linear_samples: np.ndarray,
                       geometry: ArrayGeometry,
                       wavelength_m: float) -> np.ndarray:
        """Return the pseudospectrum on the linear array's [0, 180] range."""
        config = self.config
        angles = default_angle_grid(config.angle_resolution_deg, full_circle=False)
        num_antennas = linear_samples.shape[0]
        if config.smoothing_groups > 1:
            sub_size = effective_antennas(num_antennas, config.smoothing_groups)
            covariance = smoothed_covariance(
                linear_samples, config.smoothing_groups,
                forward_backward=config.forward_backward)
            sub_geometry = geometry.subarray(list(range(sub_size)))
        else:
            covariance = sample_covariance(linear_samples)
            sub_geometry = geometry
        if config.method == "music":
            power = music_spectrum(covariance, sub_geometry, angles,
                                   num_sources=config.num_sources,
                                   wavelength_m=wavelength_m,
                                   elevation_deg=config.elevation_deg)
        elif config.method == "bartlett":
            power = bartlett_spectrum(covariance, sub_geometry, angles,
                                      wavelength_m, config.elevation_deg)
        else:
            power = capon_spectrum(covariance, sub_geometry, angles,
                                   wavelength_m, config.elevation_deg)
        return power
