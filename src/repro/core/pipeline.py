"""Per-AP AoA spectrum computation pipeline (snapshots in, spectrum out).

This module wires the Section 2.3 steps together: sample covariance with
spatial smoothing (2.3.2), the MUSIC pseudospectrum (2.3.1), mirroring of the
linear array's 180-degree spectrum onto the full circle, array-geometry
weighting (2.3.3), and -- when a nine-antenna capture is available --
array-symmetry removal (2.3.4).  Multipath suppression (2.4) operates across
frames and therefore lives one level up, in the server.

The ``method`` knob also exposes the Bartlett and Capon estimators so the
ablation benchmark can swap the spectrum estimator while keeping everything
else fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_ANGLE_RESOLUTION_DEG,
    DEFAULT_SMOOTHING_GROUPS,
)
from repro.errors import EstimationError
from repro.array.deployment import DeployedArray
from repro.array.geometry import ArrayGeometry
from repro.array.receiver import SnapshotMatrix
from repro.core.covariance import sample_covariance
from repro.core.music import bartlett_spectrum, capon_spectrum, music_spectrum
from repro.core.smoothing import effective_antennas, smoothed_covariance
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.core.symmetry import SymmetryResolver
from repro.core.weighting import apply_geometry_weighting

__all__ = ["SpectrumConfig", "SpectrumComputer"]

_VALID_METHODS = ("music", "bartlett", "capon")


@dataclass
class SpectrumConfig:
    """Configuration of the per-AP spectrum computation.

    Attributes
    ----------
    smoothing_groups:
        Number of spatial-smoothing sub-arrays ``NG`` (the paper settles on
        2; 1 disables smoothing).
    angle_resolution_deg:
        Angle grid step of the output spectrum.
    apply_weighting:
        Apply the array-geometry window W(theta) of Section 2.3.3.
    num_sources:
        Force the MUSIC source count; automatic thresholding when None.
    method:
        Spectrum estimator: "music" (the paper), "bartlett" or "capon".
    forward_backward:
        Also apply forward-backward averaging during smoothing (ablation).
    elevation_deg:
        Assumed common elevation of arrivals (0 unless a height difference
        between AP and client is being modelled explicitly).
    symmetry_attenuation:
        Residual scale applied to the rejected half plane during array
        symmetry removal.  A small non-zero value keeps an occasional wrong
        side decision from zeroing the true bearing out of the likelihood
        product entirely.
    """

    smoothing_groups: int = DEFAULT_SMOOTHING_GROUPS
    angle_resolution_deg: float = DEFAULT_ANGLE_RESOLUTION_DEG
    apply_weighting: bool = True
    num_sources: Optional[int] = None
    method: str = "music"
    forward_backward: bool = False
    elevation_deg: float = 0.0
    symmetry_attenuation: float = 0.1

    def __post_init__(self) -> None:
        if self.smoothing_groups < 1:
            raise EstimationError("smoothing_groups must be >= 1")
        if self.method not in _VALID_METHODS:
            raise EstimationError(
                f"unknown spectrum method {self.method!r}; valid: {_VALID_METHODS}")


class SpectrumComputer:
    """Computes a full-circle AoA spectrum from one frame's snapshots.

    Parameters
    ----------
    config:
        Pipeline configuration; a default (paper-faithful) configuration is
        used when omitted.
    """

    def __init__(self, config: Optional[SpectrumConfig] = None) -> None:
        self.config = config if config is not None else SpectrumConfig()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def compute(self, snapshots: SnapshotMatrix, array: DeployedArray,
                linear_indices: Optional[Sequence[int]] = None) -> AoASpectrum:
        """Return the AoA spectrum for one frame captured by ``array``.

        Parameters
        ----------
        snapshots:
            Calibrated snapshot matrix (per-radio phase offsets already
            compensated by the AP).
        array:
            The deployed array the snapshots were captured on; its first
            (or ``linear_indices``-selected) elements must form the uniform
            linear row used for MUSIC.
        linear_indices:
            Rows of the snapshot matrix forming the uniform linear array.
            Defaults to all rows, which is correct for a plain ULA capture;
            pass the ULA subset explicitly when the capture includes the
            ninth symmetry antenna.
        """
        samples = snapshots.samples
        if linear_indices is None:
            linear_indices = list(range(samples.shape[0]))
        else:
            linear_indices = list(linear_indices)
        if len(linear_indices) < 2:
            raise EstimationError("need at least two linear-array antennas")
        linear_samples = samples[linear_indices, :]
        linear_geometry = array.geometry.subarray(linear_indices) \
            if len(linear_indices) != array.geometry.num_elements \
            else array.geometry
        if not linear_geometry.is_linear():
            raise EstimationError(
                "the selected antennas do not form a linear array; pass "
                "linear_indices selecting the ULA row")
        half_power = self._half_spectrum(linear_samples, linear_geometry,
                                         array.wavelength_m)
        half_angles = default_angle_grid(self.config.angle_resolution_deg,
                                         full_circle=False)
        spectrum = AoASpectrum.from_half_spectrum(
            half_angles, half_power,
            ap_position=array.position,
            ap_orientation_deg=array.orientation_deg,
            client_id=snapshots.client_id,
            ap_id=snapshots.ap_id,
            timestamp_s=snapshots.timestamp_s,
        )
        if self.config.apply_weighting:
            spectrum = apply_geometry_weighting(spectrum)
        return spectrum

    def compute_with_symmetry(self, snapshots: SnapshotMatrix,
                              array: DeployedArray,
                              linear_indices: Sequence[int],
                              full_indices: Optional[Sequence[int]] = None
                              ) -> AoASpectrum:
        """Compute a spectrum and resolve its mirror ambiguity (Section 2.3.4).

        ``linear_indices`` select the ULA row used for MUSIC; the remaining
        rows (or ``full_indices``) provide the off-row antenna(s) used by
        the Bartlett side-power comparison.
        """
        spectrum = self.compute(snapshots, array, linear_indices)
        if full_indices is None:
            full_indices = list(range(snapshots.samples.shape[0]))
        full_geometry = array.geometry.subarray(list(full_indices)) \
            if len(list(full_indices)) != array.geometry.num_elements \
            else array.geometry
        resolver = SymmetryResolver(full_geometry, array.wavelength_m)
        return resolver.resolve(spectrum,
                                snapshots.samples[list(full_indices), :],
                                attenuation=self.config.symmetry_attenuation)

    # ------------------------------------------------------------------
    # Cache warm-up
    # ------------------------------------------------------------------
    def warm_caches(self, array: DeployedArray,
                    linear_indices: Optional[Sequence[int]] = None,
                    full_indices: Optional[Sequence[int]] = None) -> None:
        """Precompute the steering matrices this pipeline will look up.

        Populates the shared :class:`~repro.core.cache.SteeringCache` with
        the Equation 6 steering continuum of the (smoothed) MUSIC sub-array
        and, when ``full_indices`` are given, the full-geometry grid the
        symmetry resolver's Bartlett scan uses (Section 2.3.4).  Safe to
        call any number of times; identical geometries share one entry, so
        warming a fleet of identical APs costs one computation total.
        """
        from repro.core.cache import default_steering_cache

        cache = default_steering_cache()
        num_elements = array.geometry.num_elements
        if linear_indices is None:
            linear_indices = list(range(num_elements))
        else:
            linear_indices = list(linear_indices)
        linear_geometry = array.geometry.subarray(linear_indices) \
            if len(linear_indices) != num_elements else array.geometry
        if self.config.smoothing_groups > 1:
            sub_size = effective_antennas(len(linear_indices),
                                          self.config.smoothing_groups)
            linear_geometry = linear_geometry.subarray(list(range(sub_size)))
        half_angles = default_angle_grid(self.config.angle_resolution_deg,
                                         full_circle=False)
        cache.get(linear_geometry, half_angles, array.wavelength_m,
                  self.config.elevation_deg)
        if full_indices is not None:
            full_indices = list(full_indices)
            full_geometry = array.geometry.subarray(full_indices) \
                if len(full_indices) != num_elements else array.geometry
            resolver = SymmetryResolver(full_geometry, array.wavelength_m)
            full_angles = default_angle_grid(resolver.angle_resolution_deg,
                                             full_circle=True)
            cache.get(full_geometry, full_angles, array.wavelength_m, 0.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _half_spectrum(self, linear_samples: np.ndarray,
                       geometry: ArrayGeometry,
                       wavelength_m: float) -> np.ndarray:
        """Return the pseudospectrum on the linear array's [0, 180] range."""
        config = self.config
        angles = default_angle_grid(config.angle_resolution_deg, full_circle=False)
        num_antennas = linear_samples.shape[0]
        if config.smoothing_groups > 1:
            sub_size = effective_antennas(num_antennas, config.smoothing_groups)
            covariance = smoothed_covariance(
                linear_samples, config.smoothing_groups,
                forward_backward=config.forward_backward)
            sub_geometry = geometry.subarray(list(range(sub_size)))
        else:
            covariance = sample_covariance(linear_samples)
            sub_geometry = geometry
        if config.method == "music":
            power = music_spectrum(covariance, sub_geometry, angles,
                                   num_sources=config.num_sources,
                                   wavelength_m=wavelength_m,
                                   elevation_deg=config.elevation_deg)
        elif config.method == "bartlett":
            power = bartlett_spectrum(covariance, sub_geometry, angles,
                                      wavelength_m, config.elevation_deg)
        else:
            power = capon_spectrum(covariance, sub_geometry, angles,
                                   wavelength_m, config.elevation_deg)
        return power
