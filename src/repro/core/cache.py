"""Precomputed-geometry caches shared by the spectrum and synthesis stages.

Two of ArrayTrack's hot-path quantities are pure functions of the *static*
deployment geometry and therefore need to be computed exactly once per
deployment rather than once per frame or per fix:

* the MUSIC/Bartlett/Capon **steering matrix** of Equation 6 -- the array
  response ``a(theta)`` evaluated over the angle grid -- depends only on the
  element positions, the angle grid, the carrier wavelength and the assumed
  elevation (Section 2.3.1);
* the **bearing grid** of Equation 8 -- the bearing ``theta_i(x)`` of every
  candidate grid cell ``x`` as seen from AP ``i`` -- depends only on the
  search bounds, the grid resolution and the AP position (Section 2.5).

The seed implementation recomputed both on every call, which is fine for a
single experiment but dominates the per-fix cost once a server handles many
clients against a fixed set of APs.  :class:`SteeringCache` and
:class:`BearingGridCache` memoize them behind content-derived keys; module
level default instances are shared by :mod:`repro.core.music`,
:mod:`repro.core.likelihood` and :mod:`repro.core.batch` so that every AP
with the same geometry (and every fix against the same floorplan) reuses one
table.

Cached arrays are returned with ``writeable=False``: callers treat them as
immutable lookup tables, never as scratch space.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.dtypes import as_float_array
from repro.errors import EstimationError
from repro.geometry.vector import Point2D

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from repro.array.geometry import ArrayGeometry

__all__ = [
    "BearingGrid",
    "BearingGridCache",
    "CacheStats",
    "SteeringCache",
    "WindowCache",
    "clear_default_caches",
    "default_bearing_cache",
    "default_steering_cache",
    "default_window_cache",
]


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


class SteeringCache:
    """LRU cache of steering matrices keyed on geometry, grid and carrier.

    The key is content-derived -- element positions and angle grid enter via
    their raw bytes -- so two :class:`~repro.array.geometry.ArrayGeometry`
    instances with identical element layouts (every AP built from the same
    :class:`~repro.ap.access_point.APConfig`) share one entry.

    Parameters
    ----------
    max_entries:
        Number of distinct steering matrices retained; least recently used
        entries are evicted beyond that.  A deployment needs one entry per
        distinct (geometry, angle grid, wavelength, elevation) combination,
        so the default is generous.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise EstimationError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()  # guarded-by: _lock
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()  # guarded-by: _lock
        # The service's thread-sharded execution drives this cache from
        # worker threads; the lookup/move-to-end/evict sequences are not
        # atomic on their own (a concurrent eviction between get() and
        # move_to_end() raises KeyError), so every entry/stats mutation
        # takes this lock.  The (expensive) table computation itself stays
        # outside: a racing duplicate compute is benign and identical.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _key(self, element_positions: np.ndarray, angles_deg: np.ndarray,
             wavelength_m: float, elevation_deg: float) -> tuple:
        return (
            element_positions.shape,
            element_positions.tobytes(),
            angles_deg.shape,
            angles_deg.tobytes(),
            float(wavelength_m),
            float(elevation_deg),
        )

    def get(self, geometry: ArrayGeometry, angles_deg: np.ndarray,
            wavelength_m: float, elevation_deg: float = 0.0) -> np.ndarray:
        """Return the ``(M, K)`` steering matrix, computing it on first use.

        Parameters
        ----------
        geometry:
            An :class:`~repro.array.geometry.ArrayGeometry`.
        angles_deg:
            1-D azimuth grid in the array's local frame.
        wavelength_m, elevation_deg:
            Carrier wavelength and common arrival elevation (Equation 6 /
            Appendix A).

        Returns
        -------
        numpy.ndarray
            Read-only complex steering matrix; do not mutate.
        """
        angles = np.ascontiguousarray(as_float_array(angles_deg))
        positions = np.ascontiguousarray(geometry.element_positions)
        key = self._key(positions, angles, wavelength_m, elevation_deg)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.stats.misses += 1
        steering = geometry.steering_matrix(angles, elevation_deg, wavelength_m)
        entry = _readonly(np.ascontiguousarray(steering))
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Another thread computed the same table first; both are
                # identical, keep the stored one.
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``stats.reset()``)."""
        with self._lock:
            self._entries.clear()


@dataclass(frozen=True)
class BearingGrid:
    """Bearing of every search-grid cell as seen from one AP (Equation 8).

    Attributes
    ----------
    x_coords, y_coords:
        Grid coordinates (metres) along each axis, identical to the axes of
        the :class:`~repro.core.likelihood.LikelihoodMap` built on them.
    bearings_deg:
        Read-only ``(len(y_coords) * len(x_coords),)`` flat array of
        building-frame bearings in ``[0, 360)`` degrees, row-major (y rows).
    """

    x_coords: np.ndarray
    y_coords: np.ndarray
    bearings_deg: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, columns)`` of the search grid."""
        return (int(self.y_coords.shape[0]), int(self.x_coords.shape[0]))

    @property
    def num_cells(self) -> int:
        """Total number of grid cells."""
        return int(self.bearings_deg.shape[0])


def grid_axes(bounds: tuple[float, float, float, float],
              resolution_m: float) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``(x_coords, y_coords)`` search-grid axes for ``bounds``.

    This is the single definition of the Section 2.5 grid layout; the
    likelihood synthesis and the bearing cache both build on it so their
    grids can never drift apart.
    """
    xmin, ymin, xmax, ymax = bounds
    if xmax <= xmin or ymax <= ymin:
        raise EstimationError(f"invalid bounds {bounds!r}")
    if resolution_m <= 0:
        raise EstimationError(f"resolution must be positive, got {resolution_m!r}")
    # Exact-count axis build (repro-lint RPR001): the old float-step
    # ``np.arange(xmin, xmax + res/2, res)`` let rounding drift both the
    # point count and the endpoint for resolutions whose reciprocal is
    # inexact.  The counts below reproduce arange's ceil((stop - start) /
    # step) semantics exactly, and ``np.linspace`` pins every coordinate
    # without accumulating the step.
    num_x = int(np.ceil((xmax + resolution_m / 2.0 - xmin) / resolution_m))
    num_y = int(np.ceil((ymax + resolution_m / 2.0 - ymin) / resolution_m))
    x_coords = np.linspace(xmin, xmin + resolution_m * (num_x - 1), num_x)
    y_coords = np.linspace(ymin, ymin + resolution_m * (num_y - 1), num_y)
    return x_coords, y_coords


class BearingGridCache:
    """Cache of per-AP bearing tables over a fixed search grid.

    One entry exists per ``(bounds, resolution, AP position)``: for a static
    deployment that is one ``arctan2`` sweep per AP for the lifetime of the
    server, instead of one per AP *per fix* as in the seed implementation.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise EstimationError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()  # guarded-by: _lock
        self._entries: "OrderedDict[tuple, BearingGrid]" = OrderedDict()  # guarded-by: _lock
        # See SteeringCache: worker threads share this cache, so entry and
        # stats mutations are locked; the arctan2 sweep runs outside.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, bounds: tuple[float, float, float, float],
            resolution_m: float, ap_position: Point2D) -> BearingGrid:
        """Return the bearing grid for ``ap_position`` over ``bounds``.

        The bearings are computed exactly like the seed's inline synthesis
        (``degrees(arctan2(dy, dx)) % 360``) so cached and uncached fixes
        agree bit for bit.
        """
        key = (
            tuple(float(value) for value in bounds),
            float(resolution_m),
            float(ap_position.x),
            float(ap_position.y),
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.stats.misses += 1
        x_coords, y_coords = grid_axes(bounds, resolution_m)
        grid_x, grid_y = np.meshgrid(x_coords, y_coords)
        dx = grid_x - float(ap_position.x)
        dy = grid_y - float(ap_position.y)
        bearings = np.degrees(np.arctan2(dy, dx)) % 360.0
        entry = BearingGrid(
            x_coords=_readonly(x_coords),
            y_coords=_readonly(y_coords),
            bearings_deg=_readonly(np.ascontiguousarray(bearings.ravel())),
        )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def warm(self, bounds: tuple[float, float, float, float],
             resolution_m: float,
             ap_positions: Iterable[Point2D | tuple[float, float]]) -> int:
        """Populate the cache for every AP position of a deployment.

        Used by per-worker initializers (process-backend sharding): a fresh
        worker process starts with empty caches, and warming the known AP
        fleet up front keeps the first sharded batch from paying the
        ``arctan2`` sweeps inline.  ``ap_positions`` may hold
        :class:`~repro.geometry.vector.Point2D`\\ s or ``(x, y)`` pairs.
        Returns the number of positions warmed.
        """
        count = 0
        for position in ap_positions:
            if not isinstance(position, Point2D):
                x, y = position
                position = Point2D(float(x), float(y))
            self.get(bounds, resolution_m, position)
            count += 1
        return count

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``stats.reset()``)."""
        with self._lock:
            self._entries.clear()


class WindowCache:
    """LRU cache of Section 2.3.3 geometry windows keyed on grid and angle.

    The W(theta) window of :func:`repro.core.weighting.geometry_window` is a
    pure function of the angle grid and the reliable-angle parameter, yet the
    seed pipeline recomputed it for every frame.  Like its sibling
    :class:`SteeringCache`, the key is content-derived (the grid enters via
    its raw bytes) so every AP sharing a grid signature shares one window,
    and entry/stats mutations are lock-protected because the service's
    thread-sharded execution drives spectrum computation from worker
    threads.  The computation itself is injected by the caller (keeps this
    module free of a weighting import cycle) and runs outside the lock: a
    racing duplicate compute is benign and identical.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise EstimationError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()  # guarded-by: _lock
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, angles_deg: np.ndarray, reliable_angle_deg: float,
            compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the window for ``angles_deg``, computing it on first use.

        Parameters
        ----------
        angles_deg:
            1-D angle grid the window is evaluated on.
        reliable_angle_deg:
            The endfire-reliability parameter of the window.
        compute:
            Zero-argument callable producing the window on a cache miss.

        Returns
        -------
        numpy.ndarray
            Read-only float window; do not mutate.
        """
        angles = np.ascontiguousarray(as_float_array(angles_deg))
        key = (angles.shape, angles.tobytes(), float(reliable_angle_deg))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.stats.misses += 1
        entry = _readonly(np.ascontiguousarray(compute()))
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``stats.reset()``)."""
        with self._lock:
            self._entries.clear()


# ----------------------------------------------------------------------
# Shared default instances
# ----------------------------------------------------------------------
_DEFAULT_STEERING_CACHE = SteeringCache()
_DEFAULT_BEARING_CACHE = BearingGridCache()
_DEFAULT_WINDOW_CACHE = WindowCache()


def default_steering_cache() -> SteeringCache:
    """Return the process-wide steering cache used by :mod:`repro.core.music`."""
    return _DEFAULT_STEERING_CACHE


def default_bearing_cache() -> BearingGridCache:
    """Return the process-wide bearing cache used by the likelihood synthesis."""
    return _DEFAULT_BEARING_CACHE


def default_window_cache() -> WindowCache:
    """Return the process-wide W(theta) cache used by :mod:`repro.core.weighting`."""
    return _DEFAULT_WINDOW_CACHE


def clear_default_caches() -> None:
    """Empty every shared cache (useful between benchmark configurations)."""
    _DEFAULT_STEERING_CACHE.clear()
    _DEFAULT_BEARING_CACHE.clear()
    _DEFAULT_WINDOW_CACHE.clear()
