"""AoA pseudospectrum container.

An AoA spectrum (Figure 3 of the paper) is "an estimate of the incoming
signal's power as a function of angle of arrival".  ArrayTrack computes one
per overheard frame per AP, post-processes it (weighting, symmetry removal,
multipath suppression) and ships it to the server for synthesis.

The spectrum is stored on a uniform angle grid over the full circle in the
*array's local frame* (0 degrees = along the array axis).  Because the AP
knows its own position and orientation, the spectrum also carries both, so
the server can evaluate the spectrum at the bearing of any candidate
location expressed in building coordinates (Section 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.constants import DEFAULT_ANGLE_RESOLUTION_DEG
from repro.dtypes import as_float_array
from repro.errors import EstimationError
from repro.geometry.vector import Point2D, bearing_deg

__all__ = ["AoASpectrum", "circular_interpolation_table", "default_angle_grid"]


def default_angle_grid(resolution_deg: float = DEFAULT_ANGLE_RESOLUTION_DEG,
                       full_circle: bool = True) -> np.ndarray:
    """Return a uniform angle grid in degrees.

    Parameters
    ----------
    resolution_deg:
        Grid step; must divide 180 evenly to keep the mirror operation exact.
    full_circle:
        True for ``[0, 360)``; False for ``[0, 180]`` (a linear array's
        unambiguous range).
    """
    if resolution_deg <= 0:
        raise EstimationError(
            f"angle resolution must be positive, got {resolution_deg!r}")
    if abs((180.0 / resolution_deg) - round(180.0 / resolution_deg)) > 1e-9:
        raise EstimationError(
            f"angle resolution must divide 180 evenly, got {resolution_deg!r}")
    # Build both grids on their exact point count.  The previous
    # ``np.arange(0, 180 + res/2, res)`` endpoint construction let float
    # accumulation drop or duplicate the 180-degree seam point for
    # resolutions like 0.3 whose reciprocal is inexact; ``np.linspace``
    # pins both the count and the endpoints, so ``grid[-1]`` is exactly
    # 180.0 (half circle) and 360.0 is exactly excluded (full circle).
    half_points = int(round(180.0 / resolution_deg))
    if full_circle:
        return np.linspace(0.0, 360.0, 2 * half_points, endpoint=False)
    return np.linspace(0.0, 180.0, half_points + 1)


def circular_interpolation_table(grid_angles_deg: np.ndarray,
                                 query_angles_deg: ArrayLike
                                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return circular-interpolation indices of query angles on a uniform grid.

    The single definition of the circular lookup used by
    :meth:`AoASpectrum.interpolation_table` and by the batched frontend's
    stacked side-power pass: the table depends only on the grids, never on
    the power values, so one table serves every frame sharing a grid.

    Returns ``(lower, upper, fraction)`` such that the interpolated value at
    each query angle is ``(1 - fraction) * values[lower] + fraction *
    values[upper]``.
    """
    grid_angles_deg = as_float_array(grid_angles_deg)
    query = np.atleast_1d(as_float_array(query_angles_deg)) % 360.0
    resolution = float(grid_angles_deg[1] - grid_angles_deg[0])
    positions = query / resolution
    floor_positions = np.floor(positions)
    lower = floor_positions.astype(int) % len(grid_angles_deg)
    upper = (lower + 1) % len(grid_angles_deg)
    fraction = positions - floor_positions
    return lower, upper, fraction


@dataclass
class AoASpectrum:
    """Power versus angle-of-arrival for one frame at one AP.

    Attributes
    ----------
    angles_deg:
        Uniform grid of angles in the array's local frame, covering
        ``[0, 360)`` degrees.
    power:
        Non-negative pseudospectrum values, one per grid angle.
    ap_position:
        The AP's position in building coordinates (None for synthetic
        spectra used in unit tests).
    ap_orientation_deg:
        Rotation of the array's local +x axis in the building frame.
    client_id, ap_id:
        Identifiers of the transmitting client and receiving AP.
    timestamp_s:
        Capture time of the frame the spectrum came from; used to group
        frames for multipath suppression (Section 2.4).
    """

    angles_deg: np.ndarray
    power: np.ndarray
    ap_position: Point2D | None = None
    ap_orientation_deg: float = 0.0
    client_id: str = ""
    ap_id: str = ""
    timestamp_s: float = 0.0

    def __post_init__(self) -> None:
        angles = np.asarray(self.angles_deg, dtype=float)
        power = np.asarray(self.power, dtype=float)
        if angles.ndim != 1 or power.ndim != 1 or angles.shape != power.shape:
            raise EstimationError(
                "angles and power must be one-dimensional arrays of equal length, "
                f"got {angles.shape} and {power.shape}")
        if angles.shape[0] < 4:
            raise EstimationError("an AoA spectrum needs at least four grid points")
        if np.any(power < 0):
            raise EstimationError("spectrum power values must be non-negative")
        self.angles_deg = angles
        self.power = power

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def resolution_deg(self) -> float:
        """Grid step in degrees."""
        return float(self.angles_deg[1] - self.angles_deg[0])

    @property
    def max_power(self) -> float:
        """Largest pseudospectrum value."""
        return float(np.max(self.power))

    def normalized(self) -> "AoASpectrum":
        """Return a copy scaled so the maximum value is 1."""
        peak = self.max_power
        if peak <= 0:
            raise EstimationError("cannot normalize an all-zero spectrum")
        return replace(self, power=self.power / peak)

    def copy_with_power(self, power: np.ndarray) -> "AoASpectrum":
        """Return a copy of this spectrum carrying different power values."""
        return replace(self, power=as_float_array(power))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def interpolation_table(self, local_angles_deg: ArrayLike
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return circular-interpolation indices for local-frame angles.

        Returns ``(lower, upper, fraction)`` such that the interpolated
        power at each query angle is ``(1 - fraction) * power[lower] +
        fraction * power[upper]``.  The table depends only on the angle
        grid, not on the power values, so it can be computed once per
        (AP, search grid) and reused across every frame and every client
        observed by that AP -- this is what the batched localizer caches.
        """
        return circular_interpolation_table(self.angles_deg, local_angles_deg)

    def power_at_local(self, local_angles_deg: ArrayLike) -> np.ndarray:
        """Return interpolated power at local-frame angles (degrees).

        Linear interpolation on the circular grid, vectorized over the
        input.
        """
        lower, upper, fraction = self.interpolation_table(local_angles_deg)
        return (1.0 - fraction) * self.power[lower] + fraction * self.power[upper]

    def power_at_global(self, global_bearings_deg: ArrayLike) -> np.ndarray:
        """Return interpolated power at building-frame bearings (degrees)."""
        bearings = np.atleast_1d(as_float_array(global_bearings_deg))
        return self.power_at_local(bearings - self.ap_orientation_deg)

    def power_towards(self, position: Point2D) -> float:
        """Return the spectrum value in the direction of a candidate location.

        This is the ``P_i(theta_i)`` term of Equation 8: the AP evaluates
        its spectrum at the bearing of the hypothesised client position.
        """
        if self.ap_position is None:
            raise EstimationError(
                "spectrum has no AP position; cannot evaluate towards a point")
        if self.ap_position.distance_to(position) < 1e-9:
            # The bearing of the AP's own location is undefined; a client is
            # never collocated with the AP antenna array, so rate it zero.
            return 0.0
        bearing = bearing_deg(self.ap_position, position)
        return float(self.power_at_global(bearing)[0])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "AoASpectrum":
        """Return a copy with all power values multiplied by ``factor``."""
        if factor < 0:
            raise EstimationError("scale factor must be non-negative")
        return replace(self, power=self.power * factor)

    def apply_window(self, window: np.ndarray) -> "AoASpectrum":
        """Return a copy multiplied pointwise by ``window`` (same grid)."""
        window = as_float_array(window)
        if window.shape != self.power.shape:
            raise EstimationError(
                f"window shape {window.shape} does not match spectrum "
                f"shape {self.power.shape}")
        if np.any(window < 0):
            raise EstimationError("window values must be non-negative")
        return replace(self, power=self.power * window)

    def half_plane_power(self) -> tuple[float, float]:
        """Return total power in the upper (0-180) and lower (180-360) halves."""
        upper_mask = self.angles_deg < 180.0
        upper = float(np.sum(self.power[upper_mask]))
        lower = float(np.sum(self.power[~upper_mask]))
        return upper, lower

    def suppress_half_plane(self, suppress_lower: bool,
                            attenuation: float = 0.0) -> "AoASpectrum":
        """Return a copy with one half plane scaled by ``attenuation``.

        Used by array-symmetry removal (Section 2.3.4): the half with less
        total power, as judged by the ninth antenna, is removed.
        """
        if not 0.0 <= attenuation <= 1.0:
            raise EstimationError("attenuation must be in [0, 1]")
        mask_lower = self.angles_deg >= 180.0
        power = self.power.copy()
        if suppress_lower:
            power[mask_lower] *= attenuation
        else:
            power[~mask_lower] *= attenuation
        return replace(self, power=power)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_half_spectrum(angles_deg: np.ndarray, power: np.ndarray,
                           **metadata: Any) -> "AoASpectrum":
        """Mirror a ``[0, 180]`` linear-array spectrum onto the full circle.

        A linear array cannot tell which side of the array a signal arrives
        from (Section 2.3.4), so its spectrum on ``[0, 180]`` is mirrored to
        ``(180, 360)``: ``P(360 - theta) = P(theta)``.
        """
        angles_deg = as_float_array(angles_deg)
        power = as_float_array(power)
        if angles_deg.ndim != 1 or angles_deg.shape != power.shape:
            raise EstimationError("angles and power must be 1-D arrays of equal length")
        if angles_deg.shape[0] < 3:
            raise EstimationError("a half spectrum needs at least three grid points")
        if angles_deg[0] != 0.0 or abs(angles_deg[-1] - 180.0) > 1e-9:
            raise EstimationError("half spectrum must cover exactly [0, 180] degrees")
        # Build the full circle on its exact point count.  The previous
        # ``np.arange(0.0, 360.0, resolution)`` construction had the same
        # float-accumulation seam bug ``default_angle_grid`` was cured of:
        # for resolutions like 0.3 the accumulated grid points drift off the
        # exact angles (the 180-degree mirror seam lands on 180.00000000000003)
        # and the point count depends on rounding luck.  ``np.linspace`` on
        # the count derived from the input grid pins both, and yields the
        # identical grid object ``default_angle_grid(resolution)`` builds.
        half_points = angles_deg.shape[0]
        full_angles = np.linspace(0.0, 360.0, 2 * (half_points - 1),
                                  endpoint=False)
        full_power = np.zeros_like(full_angles)
        full_power[:half_points] = power
        # Mirror: P(360 - theta) = P(theta), endpoints excluded.
        mirrored = power[1:-1][::-1]
        full_power[half_points:] = mirrored
        return AoASpectrum(full_angles, full_power, **metadata)
