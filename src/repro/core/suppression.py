"""Multipath suppression across frames (Section 2.4, Figure 8).

Spatial smoothing cleans up the AoA spectrum but does not identify which peak
is the direct path; reflection peaks remain free to mislead the localization
step.  ArrayTrack's multipath suppression algorithm exploits a physical
observation (quantified in Table 1): when the client, receiver or nearby
objects move a few centimetres between frames, the direct-path peak stays
put while reflection-path peaks shift or vanish.

The algorithm (Figure 8):

1. Group two to three AoA spectra from frames spaced closer than 100 ms in
   time; if no such grouping exists for a spectrum, output it unchanged.
2. Arbitrarily choose one spectrum as the primary, and remove peaks from the
   primary not paired with peaks on the other spectra.
3. Output the primary to the synthesis step.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.constants import (
    MULTIPATH_SUPPRESSION_WINDOW_S,
    PEAK_MATCH_TOLERANCE_DEG,
)
from repro.errors import EstimationError
from repro.core.peaks import SpectrumPeak, find_peaks, match_peak, peak_regions
from repro.core.spectrum import AoASpectrum

__all__ = ["MultipathSuppressor", "SuppressorConfig", "suppress_multipath",
           "group_spectra_by_time"]


def group_spectra_by_time(spectra: Sequence[AoASpectrum],
                          window_s: float = MULTIPATH_SUPPRESSION_WINDOW_S,
                          max_group_size: int = 3,
                          max_span_s: float | None = None,
                          timestamps: Sequence[float] | None = None
                          ) -> list[list[AoASpectrum]]:
    """Group spectra whose frames were captured closely together in time.

    Spectra are sorted by timestamp and greedily packed into groups of up to
    ``max_group_size`` frames; a frame joins the current group when the gap
    to the *previous* frame is at most ``window_s`` seconds (Section 2.4
    groups "two to three AoA spectra from frames spaced closer than 100 ms"
    -- the spacing constraint is between neighbouring frames, so frames at
    0 / 60 / 120 ms form one group rather than splitting the third frame
    away from its 60 ms-near companion).  A spectrum with no close-enough
    companion ends up in a singleton group.

    Parameters
    ----------
    spectra:
        The spectra to group.
    window_s:
        Maximum gap between *consecutive* frames of one group.
    max_group_size:
        Maximum frames per group.
    max_span_s:
        Explicit cap on a group's total time span (first to last frame).
        When None the span is bounded only implicitly, by
        ``(max_group_size - 1) * window_s``.
    timestamps:
        Capture times overriding each spectrum's own ``timestamp_s`` (one
        per spectrum) -- the streaming sessions group on their
        ingest-resolved times, which may legitimately differ.
    """
    if max_group_size < 1:
        raise EstimationError("max_group_size must be >= 1")
    if window_s < 0:
        raise EstimationError("window_s must be non-negative")
    if max_span_s is not None and max_span_s < 0:
        raise EstimationError("max_span_s must be non-negative or None")
    spectra = list(spectra)
    if timestamps is None:
        times = [spectrum.timestamp_s for spectrum in spectra]
    else:
        times = [float(timestamp) for timestamp in timestamps]
        if len(times) != len(spectra):
            raise EstimationError(
                f"got {len(times)} timestamps for {len(spectra)} spectra")
    order = sorted(range(len(spectra)), key=lambda i: times[i])
    groups: list[list[AoASpectrum]] = []
    group_first_ts = 0.0
    group_last_ts = 0.0
    for i in order:
        timestamp = times[i]
        if (groups
                and len(groups[-1]) < max_group_size
                and timestamp - group_last_ts <= window_s
                and (max_span_s is None
                     or timestamp - group_first_ts <= max_span_s)):
            groups[-1].append(spectra[i])
        else:
            groups.append([spectra[i]])
            group_first_ts = timestamp
        group_last_ts = timestamp
    return groups


@dataclass
class MultipathSuppressor:
    """Removes reflection peaks from a primary spectrum using companion frames.

    Parameters
    ----------
    tolerance_deg:
        Peaks within this angular distance across frames count as "the same
        bearing" (five degrees in the paper).
    min_relative_height:
        Peak detection floor relative to the spectrum maximum, in ``[0, 1]``.
    residual_fraction:
        Unmatched lobes are scaled down to this fraction of their original
        value rather than hard-zeroed, so the likelihood synthesis
        (a product across APs, Equation 8) never multiplies by exactly zero
        because of one noisy companion frame.
    window_s:
        Maximum gap between consecutive frames of one suppression group
        (the paper's 100 ms window).
    max_group_size:
        Maximum frames per suppression group ("two to three" in the paper).
    max_span_s:
        Explicit cap on a group's first-to-last time span (None bounds it
        only implicitly, by ``(max_group_size - 1) * window_s``).
    """

    tolerance_deg: float = PEAK_MATCH_TOLERANCE_DEG
    min_relative_height: float = 0.1
    residual_fraction: float = 0.05
    window_s: float = MULTIPATH_SUPPRESSION_WINDOW_S
    max_group_size: int = 3
    max_span_s: float | None = None

    def __post_init__(self) -> None:
        if self.tolerance_deg < 0:
            raise EstimationError("tolerance_deg must be non-negative")
        if not 0.0 <= self.min_relative_height <= 1.0:
            # Validated here so a bad value fails at construction/config-load
            # time instead of surfacing as a find_peaks error mid-stream.
            raise EstimationError("min_relative_height must be in [0, 1]")
        if not 0.0 <= self.residual_fraction < 1.0:
            raise EstimationError("residual_fraction must be in [0, 1)")
        if self.window_s < 0:
            raise EstimationError("window_s must be non-negative")
        if self.max_group_size < 1:
            raise EstimationError("max_group_size must be >= 1")
        if self.max_span_s is not None and self.max_span_s < 0:
            raise EstimationError("max_span_s must be non-negative or None")

    # ------------------------------------------------------------------
    # Core algorithm
    # ------------------------------------------------------------------
    def suppress(self, group: Sequence[AoASpectrum],
                 primary_index: int = 0) -> AoASpectrum:
        """Run the Figure 8 algorithm on one group of spectra.

        Parameters
        ----------
        group:
            Two or three spectra of frames captured within the suppression
            window.  A singleton group is returned unchanged (step 1 of the
            algorithm).
        primary_index:
            Which spectrum of the group acts as the primary.
        """
        if len(group) == 0:
            raise EstimationError("cannot suppress an empty spectrum group")
        if not 0 <= primary_index < len(group):
            raise EstimationError(
                f"primary_index {primary_index} out of range for a group of "
                f"{len(group)} spectra")
        primary = group[primary_index]
        companions = [s for i, s in enumerate(group) if i != primary_index]
        if not companions:
            return primary
        primary_peaks = find_peaks(primary, self.min_relative_height)
        companion_peaks = [find_peaks(s, self.min_relative_height) for s in companions]
        stable_peaks = [peak for peak in primary_peaks
                        if self._is_stable(peak, companion_peaks)]
        unstable_peaks = [peak for peak in primary_peaks if peak not in stable_peaks]
        # Grid points belonging to a stable (matched) peak's lobe are
        # protected: an adjacent unstable lobe must never erase the bearing
        # of a peak the algorithm decided to keep (typically the direct path).
        protected = np.zeros(primary.power.shape[0], dtype=bool)
        for peak in stable_peaks:
            protected |= peak_regions(primary, peak)
        power = primary.power.copy()
        for peak in unstable_peaks:
            lobe = peak_regions(primary, peak) & ~protected
            power[lobe] *= self.residual_fraction
        return primary.copy_with_power(power)

    def _is_stable(self, peak: SpectrumPeak,
                   companion_peaks: Sequence[Sequence[SpectrumPeak]]) -> bool:
        """A peak is stable when every companion spectrum has a matching peak."""
        return all(
            match_peak(peak, peaks, self.tolerance_deg) is not None
            for peaks in companion_peaks
        )

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def process(self, spectra: Sequence[AoASpectrum],
                window_s: float | None = None,
                timestamps: Sequence[float] | None = None
                ) -> list[AoASpectrum]:
        """Group ``spectra`` by time and suppress each group.

        Returns one output spectrum per group (the processed primary), which
        is what the synthesis step consumes.  ``window_s`` overrides the
        configured window for this call; ``timestamps`` overrides the
        spectra's own capture times (see :func:`group_spectra_by_time`).
        """
        window = self.window_s if window_s is None else window_s
        groups = group_spectra_by_time(spectra, window, self.max_group_size,
                                       self.max_span_s, timestamps)
        return [self.suppress(group) for group in groups]


#: The suppression step is configured by the same dataclass that implements
#: it: :class:`MultipathSuppressor` carries only plain parameters, so the
#: service-level configuration tree (:class:`repro.api.ArrayTrackConfig`)
#: composes it directly under this alias.
SuppressorConfig = MultipathSuppressor


def suppress_multipath(group: Sequence[AoASpectrum],
                       tolerance_deg: float = PEAK_MATCH_TOLERANCE_DEG) -> AoASpectrum:
    """Convenience wrapper: suppress one group with default parameters."""
    return MultipathSuppressor(tolerance_deg=tolerance_deg).suppress(group)
