"""AoA spectra synthesis: combining per-AP spectra into a location likelihood.

Section 2.5, Equation 8: given processed spectra ``P_1 .. P_N`` from N APs,
the likelihood of the client being at position x is

    L(x) = prod_i  P_i(theta_i(x))

where ``theta_i(x)`` is the bearing of x as seen from AP i.  ArrayTrack
evaluates L on a 10 cm grid (the "heatmaps" of Figure 14) and then refines
the best grid cells by hill climbing (:mod:`repro.core.optimizer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.constants import DEFAULT_GRID_RESOLUTION_M
from repro.errors import EstimationError
from repro.geometry.vector import Point2D
from repro.core.cache import (
    BearingGrid,
    BearingGridCache,
    default_bearing_cache,
    grid_axes,
)
from repro.core.spectrum import AoASpectrum

__all__ = [
    "LikelihoodMap",
    "likelihood_at",
    "spectrum_grid_powers",
    "synthesize_likelihood",
]


@dataclass
class LikelihoodMap:
    """The location-likelihood heatmap of Equation 8 evaluated on a grid.

    Attributes
    ----------
    x_coords, y_coords:
        Grid coordinates (metres) along each axis.
    values:
        ``(len(y_coords), len(x_coords))`` likelihood values (row = y).
    """

    x_coords: np.ndarray
    y_coords: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.x_coords = np.asarray(self.x_coords, dtype=float)
        self.y_coords = np.asarray(self.y_coords, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (self.y_coords.shape[0], self.x_coords.shape[0]):
            raise EstimationError(
                f"heatmap shape {self.values.shape} does not match grid "
                f"({self.y_coords.shape[0]}, {self.x_coords.shape[0]})")

    @property
    def resolution_m(self) -> float:
        """Grid spacing in metres (assumed equal along x and y).

        Tight search bounds can collapse an axis to a single cell (the
        seed code then died with a bare ``IndexError`` on ``x_coords[1]``,
        taking :meth:`top_positions` and hill-climb seeding down with it).
        A one-cell axis carries no spacing information, so the other axis
        answers for it; a fully degenerate 1x1 map reports 0.0, which
        :meth:`top_positions` handles naturally (its single cell is always
        returned, no separation applies).
        """
        if self.x_coords.shape[0] >= 2:
            return float(self.x_coords[1] - self.x_coords[0])
        if self.y_coords.shape[0] >= 2:
            return float(self.y_coords[1] - self.y_coords[0])
        return 0.0

    def peak_position(self) -> Point2D:
        """Return the grid point with the highest likelihood."""
        flat_index = int(np.argmax(self.values))
        row, column = np.unravel_index(flat_index, self.values.shape)
        return Point2D(float(self.x_coords[column]), float(self.y_coords[row]))

    def top_positions(self, count: int) -> list[tuple[Point2D, float]]:
        """Return the ``count`` best grid points and their likelihoods.

        The positions are chosen greedily with a minimum mutual separation of
        three grid cells so that the hill-climbing seeds (Section 2.5 uses
        the three highest positions) do not all sit on the same lobe.
        """
        if count < 1:
            raise EstimationError("count must be >= 1")
        order = np.argsort(self.values, axis=None)[::-1]
        min_separation = 3.0 * self.resolution_m
        results: list[tuple[Point2D, float]] = []
        for flat_index in order:
            row, column = np.unravel_index(int(flat_index), self.values.shape)
            candidate = Point2D(float(self.x_coords[column]), float(self.y_coords[row]))
            if any(candidate.distance_to(existing) < min_separation
                   for existing, _ in results):
                continue
            results.append((candidate, float(self.values[row, column])))
            if len(results) == count:
                break
        return results

    def normalized(self) -> "LikelihoodMap":
        """Return a copy scaled so the maximum value is 1."""
        peak = float(np.max(self.values))
        if peak <= 0:
            raise EstimationError("cannot normalize an all-zero likelihood map")
        return LikelihoodMap(self.x_coords, self.y_coords, self.values / peak)


def likelihood_at(spectra: Sequence[AoASpectrum], position: Point2D,
                  floor: float = 0.0) -> float:
    """Return ``L(position)`` (Equation 8) for a set of per-AP spectra.

    Parameters
    ----------
    floor:
        Minimum value (relative to each spectrum's maximum) a spectrum
        contributes to the product.  A small positive floor keeps a single
        AP whose spectrum happens to be blind towards the true location
        from vetoing it outright; 0 reproduces the plain product.
    """
    if not spectra:
        raise EstimationError("need at least one AoA spectrum")
    likelihood = 1.0
    for spectrum in spectra:
        value = spectrum.power_towards(position)
        if floor > 0:
            value = max(value, floor * spectrum.max_power)
        likelihood *= value
    return float(likelihood)


def spectrum_grid_powers(spectrum: AoASpectrum,
                         bearing_grid: BearingGrid,
                         floor: float = 0.0) -> np.ndarray:
    """Evaluate one spectrum's ``P_i(theta_i(x))`` over a cached bearing grid.

    Returns the flat ``(num_cells,)`` power plane this spectrum contributes
    to the Equation 8 product.  Both the single-client synthesis below and
    the stacked evaluation in :mod:`repro.core.batch` reduce to this same
    arithmetic, which is what guarantees batched and sequential fixes agree
    bit for bit.
    """
    lower, upper, fraction = spectrum.interpolation_table(
        bearing_grid.bearings_deg - spectrum.ap_orientation_deg)
    power = (1.0 - fraction) * spectrum.power[lower] \
        + fraction * spectrum.power[upper]
    if floor > 0:
        power = np.maximum(power, floor * spectrum.max_power)
    return power


def synthesize_likelihood(spectra: Sequence[AoASpectrum],
                          bounds: tuple[float, float, float, float],
                          resolution_m: float = DEFAULT_GRID_RESOLUTION_M,
                          normalize_spectra: bool = True,
                          floor: float = 0.0,
                          bearing_cache: BearingGridCache | None = None
                          ) -> LikelihoodMap:
    """Evaluate Equation 8 on a regular grid covering ``bounds``.

    Parameters
    ----------
    spectra:
        Processed AoA spectra, one (or more) per AP; each must carry its
        AP's position and orientation.
    bounds:
        ``(xmin, ymin, xmax, ymax)`` of the search area, in metres.
    resolution_m:
        Grid spacing; the paper uses a 10 cm grid.
    normalize_spectra:
        Normalize each spectrum to unit maximum before multiplying, so no
        single AP dominates the product through its absolute scale.
    floor:
        Minimum relative value each spectrum contributes (see
        :func:`likelihood_at`).
    bearing_cache:
        Cache of per-AP bearing tables; the shared default cache is used
        when omitted, so repeated fixes against a static deployment reuse
        the same ``arctan2`` sweep per AP.
    """
    if not spectra:
        raise EstimationError("need at least one AoA spectrum")
    cache = bearing_cache if bearing_cache is not None else default_bearing_cache()
    x_coords, y_coords = grid_axes(bounds, resolution_m)
    shape = (y_coords.shape[0], x_coords.shape[0])
    values: np.ndarray | None = None
    for spectrum in spectra:
        if spectrum.ap_position is None:
            raise EstimationError(
                "every spectrum must carry its AP position for synthesis")
        usable = spectrum.normalized() if normalize_spectra else spectrum
        bearing_grid = cache.get(bounds, resolution_m, usable.ap_position)
        power = spectrum_grid_powers(usable, bearing_grid, floor=floor)
        values = power if values is None else values * power
    assert values is not None
    return LikelihoodMap(x_coords, y_coords, values.reshape(shape))
