"""Array-geometry weighting of AoA spectra (Section 2.3.3).

A linear array's bearing estimates are not equally reliable at every angle:
near endfire (bearings close to 0 or 180 degrees, i.e. along the line of the
antennas) the derivative of the inter-element phase with respect to bearing
vanishes, so small phase errors translate into large bearing errors.  The
paper therefore multiplies each spectrum by a windowing function

    W(theta) = 1        if 15 deg < |theta| < 165 deg
             = sin(theta)  otherwise

weighting the spectrum "in proportion to the confidence that we have in the
data".  Section 4.2 credits this weighting with much of ArrayTrack's
improvement over raw spectra.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import as_float_array
from repro.errors import EstimationError
from repro.core.cache import default_window_cache
from repro.core.spectrum import AoASpectrum

__all__ = ["geometry_window", "cached_geometry_window", "apply_geometry_weighting"]

#: Bearing (degrees away from the array axis) beyond which the spectrum is
#: considered fully reliable; the paper uses 15 degrees.
DEFAULT_RELIABLE_ANGLE_DEG = 15.0


def geometry_window(angles_deg: np.ndarray,
                    reliable_angle_deg: float = DEFAULT_RELIABLE_ANGLE_DEG) -> np.ndarray:
    """Return the paper's W(theta) window evaluated on ``angles_deg``.

    The window is defined on the linear array's natural range and extended
    to the full circle by mirror symmetry: an angle theta in (180, 360) has
    the same endfire distance as 360 - theta.
    """
    if not 0.0 < reliable_angle_deg < 90.0:
        raise EstimationError(
            f"reliable_angle_deg must be in (0, 90), got {reliable_angle_deg!r}")
    angles = as_float_array(angles_deg) % 360.0
    # Fold onto [0, 180]: the distance from the array axis is symmetric.
    folded = np.where(angles > 180.0, 360.0 - angles, angles)
    window = np.ones_like(folded)
    near_endfire = ((folded < reliable_angle_deg)
                    | (folded > 180.0 - reliable_angle_deg))
    window[near_endfire] = np.abs(np.sin(np.radians(folded[near_endfire])))
    return window


def cached_geometry_window(angles_deg: np.ndarray,
                           reliable_angle_deg: float = DEFAULT_RELIABLE_ANGLE_DEG
                           ) -> np.ndarray:
    """Return the (shared, read-only) W(theta) window for ``angles_deg``.

    The window is a pure function of the angle grid and the reliable-angle
    parameter, so it is served from the shared
    :class:`~repro.core.cache.WindowCache` -- one computation per (grid
    signature, reliable angle) for the lifetime of the process instead of
    one per frame.  Validation runs before the lookup so an invalid
    parameter fails identically whether or not the grid is already cached.
    """
    if not 0.0 < reliable_angle_deg < 90.0:
        raise EstimationError(
            f"reliable_angle_deg must be in (0, 90), got {reliable_angle_deg!r}")
    return default_window_cache().get(
        angles_deg, reliable_angle_deg,
        lambda: geometry_window(angles_deg, reliable_angle_deg))


def apply_geometry_weighting(spectrum: AoASpectrum,
                             reliable_angle_deg: float = DEFAULT_RELIABLE_ANGLE_DEG
                             ) -> AoASpectrum:
    """Return ``spectrum`` multiplied by the array-geometry window W(theta).

    The window is looked up in the shared cache, so repeated calls over the
    same grid (every frame of every AP with the default resolution) cost a
    dictionary lookup plus the elementwise multiply.
    """
    window = cached_geometry_window(spectrum.angles_deg, reliable_angle_deg)
    return spectrum.apply_window(window)
