"""One-call helpers for first-time users of the library.

These wrap the full pipeline (testbed -> channels -> APs -> spectra ->
server -> location estimate) into single functions so that the README's
quick-start snippet and interactive exploration stay short.  Real
applications should use the underlying classes directly; see
``examples/`` for complete walk-throughs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import LocalizerConfig, LocationEstimate
from repro.geometry import Point2D
from repro.server import ArrayTrackServer, ServerConfig
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed

__all__ = ["localize_one_client", "localize_all_clients"]


def localize_one_client(client_id: str = "client-17",
                        num_aps: int = 6,
                        grid_resolution_m: float = 0.25,
                        seed: int = 7) -> Tuple[LocationEstimate, Point2D]:
    """Localize one client of the default office testbed.

    Returns the location estimate and the ground-truth position, so the
    caller can immediately compute the error.
    """
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed, ScenarioConfig(seed=seed))
    server = ArrayTrackServer(
        testbed.bounds,
        ServerConfig(localizer=LocalizerConfig(grid_resolution_m=grid_resolution_m,
                                               spectrum_floor=0.05)))
    ap_ids = testbed.ap_ids()[:num_aps]
    spectra = deployment.collect_client_spectra(client_id, ap_ids)
    estimate = server.localize_spectra(spectra, client_id)
    return estimate, testbed.client_position(client_id)


def localize_all_clients(num_clients: int = 10,
                         grid_resolution_m: float = 0.25,
                         seed: int = 7) -> Dict[str, float]:
    """Localize the first ``num_clients`` clients; return errors in centimetres."""
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed, ScenarioConfig(seed=seed))
    server = ArrayTrackServer(
        testbed.bounds,
        ServerConfig(localizer=LocalizerConfig(grid_resolution_m=grid_resolution_m,
                                               spectrum_floor=0.05)))
    errors: Dict[str, float] = {}
    for client_id in testbed.client_ids()[:num_clients]:
        deployment.clear()
        spectra = deployment.collect_client_spectra(client_id)
        estimate = server.localize_spectra(spectra, client_id)
        errors[client_id] = estimate.error_to(testbed.client_position(client_id)) * 100.0
    return errors
