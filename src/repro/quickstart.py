"""Deprecated one-call helpers, kept as thin shims over the facade.

These predate :class:`repro.api.ArrayTrackService`; they now build the
same service the README documents and emit ``DeprecationWarning``\\ s while
returning bit-for-bit the results they always did.  New code should use
the facade directly::

    from repro import ArrayTrackConfig, ArrayTrackService

See ``docs/api.md`` and ``examples/quickstart.py``.
"""

from __future__ import annotations

import warnings

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.core import LocationEstimate
from repro.geometry import Point2D
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed

__all__ = ["localize_one_client", "localize_all_clients"]


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"repro.quickstart.{name}() is deprecated; use "
        f"repro.api.ArrayTrackService (see docs/api.md)",
        DeprecationWarning, stacklevel=3)


def _service(bounds: tuple[float, float, float, float],
             grid_resolution_m: float) -> ArrayTrackService:
    """The facade configuration these helpers always used.

    Only the grid resolution is dialled in; the spectrum floor is the
    facade's documented default (``DEFAULT_SPECTRUM_FLOOR = 0.05``), which
    is exactly the value these helpers historically hardcoded.
    """
    return ArrayTrackService(ArrayTrackConfig(bounds=bounds).updated(
        {"server.localizer.grid_resolution_m": grid_resolution_m}))


def localize_one_client(client_id: str = "client-17",
                        num_aps: int = 6,
                        grid_resolution_m: float = 0.25,
                        seed: int = 7) -> tuple[LocationEstimate, Point2D]:
    """Deprecated: localize one client of the default office testbed.

    Returns the location estimate and the ground-truth position, so the
    caller can immediately compute the error.
    """
    _warn_deprecated("localize_one_client")
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed, ScenarioConfig(seed=seed))
    service = _service(testbed.bounds, grid_resolution_m)
    ap_ids = testbed.ap_ids()[:num_aps]
    spectra = deployment.collect_client_spectra(client_id, ap_ids)
    estimate = service.localize(spectra, client_id)
    return estimate, testbed.client_position(client_id)


def localize_all_clients(num_clients: int = 10,
                         grid_resolution_m: float = 0.25,
                         seed: int = 7) -> dict[str, float]:
    """Deprecated: localize the first ``num_clients`` clients (errors in cm)."""
    _warn_deprecated("localize_all_clients")
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed, ScenarioConfig(seed=seed))
    service = _service(testbed.bounds, grid_resolution_m)
    errors: dict[str, float] = {}
    for client_id in testbed.client_ids()[:num_clients]:
        deployment.clear()
        spectra = deployment.collect_client_spectra(client_id)
        estimate = service.localize(spectra, client_id)
        errors[client_id] = estimate.error_to(testbed.client_position(client_id)) * 100.0
    return errors
