"""Exception hierarchy for the ArrayTrack reproduction library."""

from __future__ import annotations


class ArrayTrackError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GeometryError(ArrayTrackError):
    """Raised for invalid geometric input (degenerate walls, bad floorplans)."""


class SignalError(ArrayTrackError):
    """Raised for invalid waveform or sampling parameters."""


class ChannelError(ArrayTrackError):
    """Raised when a propagation channel cannot be constructed or applied."""


class ArrayError(ArrayTrackError):
    """Raised for invalid antenna-array configuration or calibration input."""


class DetectionError(ArrayTrackError):
    """Raised when packet detection is configured or used incorrectly."""


class EstimationError(ArrayTrackError):
    """Raised when an AoA spectrum or location estimate cannot be produced."""


class ConfigurationError(ArrayTrackError):
    """Raised for invalid system-level (AP/server/testbed) configuration."""
