"""Exception hierarchy for the ArrayTrack reproduction library."""

from __future__ import annotations


class ArrayTrackError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GeometryError(ArrayTrackError):
    """Raised for invalid geometric input (degenerate walls, bad floorplans)."""


class SignalError(ArrayTrackError):
    """Raised for invalid waveform or sampling parameters."""


class ChannelError(ArrayTrackError):
    """Raised when a propagation channel cannot be constructed or applied."""


class ArrayError(ArrayTrackError):
    """Raised for invalid antenna-array configuration or calibration input."""


class DetectionError(ArrayTrackError):
    """Raised when packet detection is configured or used incorrectly."""


class EstimationError(ArrayTrackError):
    """Raised when an AoA spectrum or location estimate cannot be produced."""


class ConfigurationError(ArrayTrackError):
    """Raised for invalid system-level (AP/server/testbed) configuration."""


class TransientError(ArrayTrackError):
    """Infrastructure failure that a retry or a degraded backend may absorb.

    The resilience layer treats this family -- and only this family -- as
    recoverable: the process pool retries shards on it, and the service's
    circuit breaker falls down the backend ladder (process -> thread ->
    serial) instead of failing the batch.  Deterministic data errors
    (:class:`EstimationError`, :class:`ConfigurationError`, ...) stay
    outside it on purpose: retrying them would re-fail identically.
    """


class PoolSupervisionError(TransientError):
    """A supervised worker pool exhausted its retry budget for a batch."""


class FaultInjectedError(TransientError):
    """Raised by :mod:`repro.testing.faults` when an injected fault fires."""


class BackpressureError(ArrayTrackError):
    """Raised when ingest exceeds the service's pending-frame budget.

    Only raised under ``resilience.shed_policy = "reject"``; the default
    ``"shed-oldest"`` policy drops the oldest pending frame instead.
    """


class PoisonFrameError(ArrayTrackError):
    """Raised when a rejected frame (NaN/inf values, mismatched grid) is ingested.

    Rejecting the single frame at the door -- with the client and AP named
    -- keeps one poisoned spectrum from corrupting a whole stacked
    frontend or synthesis pass.
    """
