"""Experiment runners regenerating every table and figure of the paper.

Each public function reproduces one evaluation artefact (Figures 3-21,
Table 1, the Section 4.3/4.4 analyses and the related-work baselines) on the
simulated testbed and returns a plain-data result object that the report
module renders and the benchmark suite asserts against.  The experiment ids
match DESIGN.md's per-experiment index (E-FIG13, E-TAB1, ...).

All experiments accept sizing parameters so that unit tests can run a small
slice quickly while the benchmark harness runs the paper-sized version.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.ap.collision import CollisionResolver, merge_channels
from repro.ap.latency import LatencyModel
from repro.api import ArrayTrackConfig, ArrayTrackService, create_baseline
from repro.baselines import (
    FingerprintLocalizer,
    ModelBasedRssLocalizer,
    RssFingerprint,
)
from repro.channel import movement_track, perturb_position, random_waypoint_track
from repro.constants import DEFAULT_SPECTRUM_FLOOR
from repro.core import (
    LocalizerConfig,
    LocationEstimator,
    MultipathSuppressor,
    SpectrumConfig,
    find_peaks,
    match_peak,
)
from repro.core.spectrum import AoASpectrum
from repro.errors import EstimationError
from repro.eval.metrics import ErrorStatistics, empirical_cdf, summarize_errors
from repro.geometry import Point2D, bearing_deg
from repro.geometry.vector import angle_difference_deg
from repro.signal import (
    MatchedFilterDetector,
    SchmidlCoxDetector,
    add_awgn,
    generate_preamble,
)
from repro.testbed import OfficeTestbed, ScenarioConfig, SimulatedDeployment, build_office_testbed

__all__ = [
    "LocalizationSweepResult",
    "run_localization_sweep",
    "fig3_example_spectrum",
    "fig7_spatial_smoothing",
    "table1_peak_stability",
    "fig9_multipath_suppression",
    "fig13_static_localization",
    "fig14_heatmaps",
    "fig15_arraytrack_localization",
    "fig16_antenna_count",
    "fig17_pillar_blocking",
    "fig18_height_orientation",
    "fig19_sample_count",
    "fig20_snr_sweep",
    "fig21_latency",
    "appendix_a_height_error",
    "sec434_detection_snr",
    "sec435_collisions",
    "baseline_comparison",
    "RoamingTrackingResult",
    "roaming_tracking",
    "roaming_tracking_comparison",
]


# ----------------------------------------------------------------------
# Shared infrastructure
# ----------------------------------------------------------------------
@dataclass
class LocalizationSweepResult:
    """Result of a localization campaign over AP-count subsets.

    Attributes
    ----------
    statistics:
        Mapping of the number of APs to the error statistics across all
        evaluated (client, AP-subset) pairs.
    cdfs:
        Mapping of the number of APs to ``(grid_cm, fraction)`` CDF arrays.
    errors_cm:
        Raw error samples per AP count (for downstream analysis).
    """

    statistics: dict[int, ErrorStatistics]
    cdfs: dict[int, tuple[np.ndarray, np.ndarray]]
    errors_cm: dict[int, list[float]]


def _default_scenario(**overrides) -> ScenarioConfig:
    """Scenario defaults shared by the localization experiments."""
    parameters = dict(frames_per_client=3, seed=2013)
    parameters.update(overrides)
    return ScenarioConfig(**parameters)


def _localizer_config(grid_resolution_m: float) -> LocalizerConfig:
    """Localizer settings for experiments driving the bare estimator.

    Matches the facade's documented defaults (notably the
    :data:`~repro.constants.DEFAULT_SPECTRUM_FLOOR` floor) so estimator-
    level and service-level experiments stay comparable.
    """
    return LocalizerConfig(grid_resolution_m=grid_resolution_m,
                           spectrum_floor=DEFAULT_SPECTRUM_FLOOR)


def _service(bounds: tuple[float, float, float, float],
             grid_resolution_m: float, **server_overrides) -> ArrayTrackService:
    """The facade every end-to-end experiment localizes through.

    Spectrum floor and all other knobs are the facade defaults; only the
    grid resolution and explicit server overrides are dialled in.
    """
    overrides = {"server.localizer.grid_resolution_m": grid_resolution_m}
    overrides.update({f"server.{key}": value
                      for key, value in server_overrides.items()})
    return ArrayTrackService(ArrayTrackConfig(bounds=bounds).updated(overrides))


def _ap_subsets(ap_ids: Sequence[str], subset_size: int,
                max_subsets: int | None) -> list[tuple[str, ...]]:
    """Return AP-id subsets of the given size (optionally capped, spread evenly)."""
    subsets = list(itertools.combinations(ap_ids, subset_size))
    if max_subsets is not None and len(subsets) > max_subsets:
        indices = np.linspace(0, len(subsets) - 1, max_subsets).astype(int)
        subsets = [subsets[i] for i in indices]
    return subsets


def run_localization_sweep(testbed: OfficeTestbed | None = None,
                           scenario: ScenarioConfig | None = None,
                           ap_counts: Sequence[int] = (3, 4, 5, 6),
                           num_clients: int | None = None,
                           max_subsets_per_count: int | None = 4,
                           grid_resolution_m: float = 0.25,
                           enable_multipath_suppression: bool = True,
                           ) -> LocalizationSweepResult:
    """Run the core localization campaign behind Figures 13 and 15.

    For every requested AP count, every (capped) subset of that many APs and
    every client, the client's buffered frames are localized and the error
    against ground truth recorded.

    Parameters
    ----------
    testbed:
        Environment description (the default 41-client office when omitted).
    scenario:
        Capture scenario; the semi-static 3-frame default when omitted.
    ap_counts:
        AP subset sizes to sweep (the paper uses 3, 4, 5 and 6).
    num_clients:
        Number of clients evaluated (all 41 when omitted).
    max_subsets_per_count:
        Cap on the number of AP subsets per count (None evaluates every
        combination, as the paper does).
    grid_resolution_m:
        Localization grid resolution (the paper uses 0.10 m).
    enable_multipath_suppression:
        Run the Section 2.4 suppression at the server.
    """
    testbed = testbed if testbed is not None else build_office_testbed()
    scenario = scenario if scenario is not None else _default_scenario()
    deployment = SimulatedDeployment(testbed, scenario)
    service = _service(
        testbed.bounds, grid_resolution_m,
        enable_multipath_suppression=enable_multipath_suppression)
    clients = testbed.client_ids()
    if num_clients is not None:
        clients = clients[:num_clients]
    errors: dict[int, list[float]] = {count: [] for count in ap_counts}
    for client_id in clients:
        deployment.clear()
        spectra = deployment.collect_client_spectra(client_id)
        ground_truth = testbed.client_position(client_id)
        for count in ap_counts:
            for subset in _ap_subsets(testbed.ap_ids(), count, max_subsets_per_count):
                subset_spectra = {ap: spectra[ap] for ap in subset if ap in spectra}
                if not subset_spectra:
                    continue
                estimate = service.localize(subset_spectra, client_id)
                errors[count].append(estimate.error_to(ground_truth) * 100.0)
    statistics = {count: summarize_errors(samples)
                  for count, samples in errors.items() if samples}
    cdfs = {count: empirical_cdf(samples)
            for count, samples in errors.items() if samples}
    return LocalizationSweepResult(statistics=statistics, cdfs=cdfs, errors_cm=errors)


# ----------------------------------------------------------------------
# Spectrum-level experiments (Figures 3, 7, 9, 17; Table 1)
# ----------------------------------------------------------------------
@dataclass
class SpectrumExperimentResult:
    """A collection of labelled spectra with the relevant summary numbers."""

    spectra: dict[str, AoASpectrum]
    summary: dict[str, float]


def _single_link_deployment(scenario: ScenarioConfig | None = None
                            ) -> tuple[OfficeTestbed, SimulatedDeployment]:
    testbed = build_office_testbed()
    scenario = scenario if scenario is not None else _default_scenario(frames_per_client=1)
    return testbed, SimulatedDeployment(testbed, scenario)


def fig3_example_spectrum(client_id: str = "client-17",
                          ap_id: str = "2") -> SpectrumExperimentResult:
    """E-FIG3: a representative AoA spectrum of one client at one AP."""
    testbed, deployment = _single_link_deployment()
    ap = deployment.aps[ap_id]
    position = testbed.client_position(client_id)
    channel = deployment.channel_builder.build(position, ap.position,
                                               client_id=client_id, ap_id=ap_id)
    entry = ap.overhear(channel)
    spectrum = ap.compute_spectrum(entry)
    true_bearing = bearing_deg(ap.position, position)
    peaks = find_peaks(spectrum, min_relative_height=0.1)
    direct_offset = min(
        (angle_difference_deg((p.angle_deg + spectrum.ap_orientation_deg) % 360.0,
                              true_bearing) for p in peaks),
        default=float("nan"))
    return SpectrumExperimentResult(
        spectra={"example": spectrum},
        summary={
            "num_peaks": float(len(peaks)),
            "true_bearing_deg": float(true_bearing),
            "closest_peak_offset_deg": float(direct_offset),
        })


def fig7_spatial_smoothing(group_counts: Sequence[int] = (1, 2, 3, 4),
                           client_id: str = "client-20",
                           ap_id: str = "2") -> SpectrumExperimentResult:
    """E-FIG7: the effect of the number of spatial smoothing groups."""
    testbed, deployment = _single_link_deployment()
    ap = deployment.aps[ap_id]
    position = testbed.client_position(client_id)
    channel = deployment.channel_builder.build(position, ap.position,
                                               client_id=client_id, ap_id=ap_id)
    entry = ap.overhear(channel)
    spectra: dict[str, AoASpectrum] = {}
    summary: dict[str, float] = {}
    from repro.core.pipeline import SpectrumComputer  # local import to avoid cycle

    for groups in group_counts:
        config = SpectrumConfig(smoothing_groups=groups, apply_weighting=False)
        computer = SpectrumComputer(config)
        snapshots = ap._compensate(entry.snapshots)
        spectrum = computer.compute(snapshots, ap.array, ap.linear_indices)
        label = f"NG={groups}"
        spectra[label] = spectrum
        summary[f"num_peaks_NG{groups}"] = float(
            len(find_peaks(spectrum, min_relative_height=0.15)))
    return SpectrumExperimentResult(spectra=spectra, summary=summary)


@dataclass
class PeakStabilityResult:
    """E-TAB1: frequency of direct/reflection peak changes under movement."""

    total_positions: int
    fraction_direct_same_reflection_changed: float
    fraction_direct_same_reflection_same: float
    fraction_direct_changed_reflection_changed: float
    fraction_direct_changed_reflection_same: float

    def as_dict(self) -> dict[str, float]:
        return {
            "direct same / reflections changed":
                self.fraction_direct_same_reflection_changed,
            "direct same / reflections same":
                self.fraction_direct_same_reflection_same,
            "direct changed / reflections changed":
                self.fraction_direct_changed_reflection_changed,
            "direct changed / reflections same":
                self.fraction_direct_changed_reflection_same,
        }

    @property
    def fraction_direct_same(self) -> float:
        """Total fraction of positions where the direct-path peak was stable."""
        return (self.fraction_direct_same_reflection_changed
                + self.fraction_direct_same_reflection_same)


def table1_peak_stability(num_positions: int = 100,
                          movement_m: float = 0.05,
                          seed: int = 41) -> PeakStabilityResult:
    """E-TAB1: peak stability microbenchmark at randomly chosen positions.

    For each random position an AoA spectrum is generated there and at a
    point ``movement_m`` away; the peak nearest the true bearing is labelled
    the direct path and the others reflections; a peak is "unchanged" if the
    second spectrum has a peak within five degrees.
    """
    if num_positions < 1:
        raise EstimationError("num_positions must be >= 1")
    testbed, deployment = _single_link_deployment()
    rng = np.random.default_rng(seed)
    counts = np.zeros(4, dtype=int)
    evaluated = 0
    while evaluated < num_positions:
        position = Point2D(float(rng.uniform(2.0, 38.0)), float(rng.uniform(2.0, 16.0)))
        ap_id = str(rng.integers(1, 7))
        ap = deployment.aps[ap_id]
        site = testbed.ap_site(ap_id)
        entries = []
        for point in (position, perturb_position(position, movement_m, rng=rng)):
            channel = deployment.channel_builder.build(point, ap.position,
                                                       client_id="probe", ap_id=ap_id)
            entries.append(ap.overhear(channel, rng=rng))
            ap.clear()
        # Both captures run through the batched frontend in one pass.
        spectra = ap.compute_spectra(entries)
        local_true = (bearing_deg(site.position, position) - site.orientation_deg) % 360.0
        first_peaks = find_peaks(spectra[0], min_relative_height=0.15)
        second_peaks = find_peaks(spectra[1], min_relative_height=0.15)
        if not first_peaks:
            continue
        direct = min(first_peaks,
                     key=lambda p: angle_difference_deg(p.angle_deg, local_true))
        if angle_difference_deg(direct.angle_deg, local_true) > 10.0:
            continue  # The direct path did not produce an identifiable peak.
        reflections = [p for p in first_peaks if p is not direct]
        if not reflections:
            continue
        direct_same = match_peak(direct, second_peaks) is not None
        changed = sum(1 for p in reflections if match_peak(p, second_peaks) is None)
        reflections_changed = changed >= max(1, len(reflections)) / 2.0
        index = (0 if direct_same else 2) + (0 if reflections_changed else 1)
        counts[index] += 1
        evaluated += 1
    fractions = counts / max(evaluated, 1)
    return PeakStabilityResult(
        total_positions=evaluated,
        fraction_direct_same_reflection_changed=float(fractions[0]),
        fraction_direct_same_reflection_same=float(fractions[1]),
        fraction_direct_changed_reflection_changed=float(fractions[2]),
        fraction_direct_changed_reflection_same=float(fractions[3]),
    )


def fig9_multipath_suppression(client_id: str = "client-23",
                               ap_id: str = "4") -> SpectrumExperimentResult:
    """E-FIG9: the multipath suppression algorithm on a pair of spectra."""
    testbed, deployment = _single_link_deployment(_default_scenario(frames_per_client=3))
    deployment.capture_client(client_id, ap_ids=[ap_id])
    spectra = deployment.spectra_for_client(client_id, [ap_id])[ap_id]
    suppressor = MultipathSuppressor()
    suppressed = suppressor.suppress(spectra)
    primary_peaks = find_peaks(spectra[0], min_relative_height=0.15)
    # A primary peak counts as "retained" if the suppression step left at
    # least half of its power in place; the others were judged unstable
    # (reflection paths) and removed.
    retained = sum(
        1 for peak in primary_peaks
        if suppressed.power_at_local(peak.angle_deg)[0] >= 0.5 * peak.power)
    result_spectra = {f"frame-{i}": s for i, s in enumerate(spectra)}
    result_spectra["suppressed"] = suppressed
    return SpectrumExperimentResult(
        spectra=result_spectra,
        summary={
            "peaks_before": float(len(primary_peaks)),
            "peaks_after": float(retained),
        })


def fig17_pillar_blocking() -> SpectrumExperimentResult:
    """E-FIG17: spectra of clients whose direct path crosses 0, 1 or 2 pillars.

    The paper keeps the client on a line with the AP while blocking the
    direct path with more pillars; even behind two pillars the direct-path
    peak remains among the strongest few.  The office floorplan has pillars
    1 and 2 on the y = 9 m line, so the probe AP is placed on that line near
    the west wall and the clients progressively further east behind the
    pillars.
    """
    from repro.ap.access_point import APConfig, ArrayTrackAP

    testbed, deployment = _single_link_deployment()
    ap = ArrayTrackAP("fig17-probe", Point2D(2.0, 9.0), orientation_deg=60.0,
                      config=APConfig(apply_phase_offsets=False),
                      rng=np.random.default_rng(17))
    clients = {
        "no blocking": Point2D(6.0, 9.0),
        "blocked by 1 pillar": Point2D(13.0, 9.0),
        "blocked by 2 pillars": Point2D(23.0, 9.0),
    }
    spectra: dict[str, AoASpectrum] = {}
    summary: dict[str, float] = {}
    for label, position in clients.items():
        channel = deployment.channel_builder.build(position, ap.position,
                                                   client_id=label, ap_id=ap.ap_id)
        entry = ap.overhear(channel)
        spectrum = ap.compute_spectrum(entry)
        ap.clear()
        spectra[label] = spectrum
        local_true = (bearing_deg(ap.position, position)
                      - ap.array.orientation_deg) % 360.0
        peaks = find_peaks(spectrum, min_relative_height=0.05)
        rank = _peak_rank_near(peaks, local_true, tolerance_deg=8.0)
        summary[f"direct_peak_rank [{label}]"] = float(rank)
        summary[f"pillars_crossed [{label}]"] = float(
            len(testbed.floorplan.pillars_crossed(position, ap.position)))
    return SpectrumExperimentResult(spectra=spectra, summary=summary)


def _peak_rank_near(peaks: Sequence, angle_deg: float, tolerance_deg: float) -> int:
    """Return the 1-based power rank of the peak nearest ``angle_deg`` (0 if none)."""
    for rank, peak in enumerate(peaks, start=1):
        if angle_difference_deg(peak.angle_deg, angle_deg) <= tolerance_deg:
            return rank
    return 0


# ----------------------------------------------------------------------
# Localization experiments (Figures 13-16, 18)
# ----------------------------------------------------------------------
def fig13_static_localization(num_clients: int | None = 20,
                              max_subsets_per_count: int | None = 3,
                              grid_resolution_m: float = 0.25
                              ) -> LocalizationSweepResult:
    """E-FIG13: raw (unoptimized) localization error CDFs for 3-6 APs.

    "Unoptimized" means: single frame per client, no array geometry
    weighting, no symmetry removal and no multipath suppression -- the plain
    Equation 8 synthesis of mirrored MUSIC spectra.
    """
    scenario = _default_scenario(
        frames_per_client=1,
        use_symmetry_antenna=False,
        spectrum=SpectrumConfig(apply_weighting=False),
    )
    return run_localization_sweep(
        scenario=scenario, num_clients=num_clients,
        max_subsets_per_count=max_subsets_per_count,
        grid_resolution_m=grid_resolution_m,
        enable_multipath_suppression=False)


def fig15_arraytrack_localization(num_clients: int | None = 20,
                                  max_subsets_per_count: int | None = 3,
                                  grid_resolution_m: float = 0.25
                                  ) -> dict[str, LocalizationSweepResult]:
    """E-FIG15: full-ArrayTrack vs unoptimized CDFs for 3-6 APs."""
    arraytrack = run_localization_sweep(
        num_clients=num_clients, max_subsets_per_count=max_subsets_per_count,
        grid_resolution_m=grid_resolution_m)
    unoptimized = fig13_static_localization(
        num_clients=num_clients, max_subsets_per_count=max_subsets_per_count,
        grid_resolution_m=grid_resolution_m)
    return {"arraytrack": arraytrack, "unoptimized": unoptimized}


def fig14_heatmaps(client_id: str = "client-19",
                   grid_resolution_m: float = 0.25) -> dict[int, float]:
    """E-FIG14: heatmap peak error as APs are added one at a time.

    Returns the localization error (cm) of the heatmap maximum when the
    spectra of the first k APs (k = 1..6) are combined; the paper's figure
    shows the corresponding likelihood surfaces.
    """
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed, _default_scenario())
    estimator = LocationEstimator(testbed.bounds,
                                  _localizer_config(grid_resolution_m))
    spectra = deployment.collect_client_spectra(client_id)
    ground_truth = testbed.client_position(client_id)
    suppressor = MultipathSuppressor()
    processed = {ap: suppressor.process(ap_spectra)[0]
                 for ap, ap_spectra in spectra.items()}
    errors: dict[int, float] = {}
    ap_order = testbed.ap_ids()
    for count in range(1, len(ap_order) + 1):
        subset = [processed[ap] for ap in ap_order[:count] if ap in processed]
        estimate = estimator.estimate(subset, client_id)
        errors[count] = estimate.error_to(ground_truth) * 100.0
    return errors


def fig16_antenna_count(antenna_counts: Sequence[int] = (4, 6, 8),
                        num_clients: int | None = 20,
                        grid_resolution_m: float = 0.25
                        ) -> dict[int, ErrorStatistics]:
    """E-FIG16: localization accuracy with 4-, 6- and 8-antenna APs."""
    results: dict[int, ErrorStatistics] = {}
    for antennas in antenna_counts:
        scenario = _default_scenario(num_antennas=antennas)
        sweep = run_localization_sweep(
            scenario=scenario, ap_counts=(6,), num_clients=num_clients,
            max_subsets_per_count=1, grid_resolution_m=grid_resolution_m)
        results[antennas] = sweep.statistics[6]
    return results


def fig18_height_orientation(num_clients: int | None = 20,
                             height_offset_m: float = 1.5,
                             orientation_mismatch_deg: float = 90.0,
                             grid_resolution_m: float = 0.25
                             ) -> dict[str, ErrorStatistics]:
    """E-FIG18: robustness to client height and antenna orientation changes."""
    results: dict[str, ErrorStatistics] = {}
    variants = {
        "original": {},
        "different antenna heights": {"height_offset_m": height_offset_m},
        "different antenna orientations": {
            "polarization_mismatch_deg": orientation_mismatch_deg,
            # The received power drop shows up as a lower capture SNR.
            "snr_db": 25.0 - 15.0,
        },
    }
    for label, overrides in variants.items():
        scenario = _default_scenario(**overrides)
        sweep = run_localization_sweep(
            scenario=scenario, ap_counts=(6,), num_clients=num_clients,
            max_subsets_per_count=1, grid_resolution_m=grid_resolution_m)
        results[label] = sweep.statistics[6]
    return results


# ----------------------------------------------------------------------
# Robustness experiments (Figures 19-20, Sections 4.3.4-4.3.5, Appendix A)
# ----------------------------------------------------------------------
def fig19_sample_count(sample_counts: Sequence[int] = (1, 5, 10, 100),
                       num_packets: int = 30,
                       client_id: str = "client-11",
                       ap_id: str = "2",
                       snr_db: float = 12.0,
                       seed: int = 19) -> dict[int, dict[str, float]]:
    """E-FIG19: AoA spectrum stability versus the number of preamble samples.

    For each sample count, ``num_packets`` packets from the same client are
    processed and the spread (standard deviation) of the strongest peak's
    bearing across packets is reported, along with the mean absolute bearing
    error against the direct path.  The paper observes that spectra are
    already stable with about five samples.
    """
    testbed, deployment = _single_link_deployment()
    ap = deployment.aps[ap_id]
    site = testbed.ap_site(ap_id)
    position = testbed.client_position(client_id)
    channel = deployment.channel_builder.build(position, ap.position,
                                               client_id=client_id, ap_id=ap_id)
    local_true = (bearing_deg(site.position, position) - site.orientation_deg) % 360.0
    rng = np.random.default_rng(seed)
    results: dict[int, dict[str, float]] = {}
    for count in sample_counts:
        bearings: list[float] = []
        entries = [ap.overhear(channel, num_snapshots=count, snr_db=snr_db,
                               rng=rng)
                   for _ in range(num_packets)]
        ap.clear()
        # All packets of one sample count share one batched-frontend pass.
        for spectrum in ap.compute_spectra(entries):
            peaks = find_peaks(spectrum, min_relative_height=0.3)
            if peaks:
                bearings.append(peaks[0].angle_deg)
        if not bearings:
            results[count] = {"bearing_std_deg": float("nan"),
                              "mean_error_deg": float("nan")}
            continue
        errors = [angle_difference_deg(b, local_true) for b in bearings]
        mean_bearing = float(np.mean(bearings))
        spread = float(np.sqrt(np.mean(
            [angle_difference_deg(b, mean_bearing) ** 2 for b in bearings])))
        results[count] = {
            "bearing_std_deg": spread,
            "mean_error_deg": float(np.mean(errors)),
        }
    return results


def fig20_snr_sweep(snrs_db: Sequence[float] = (15.0, 8.0, 2.0, -5.0),
                    client_id: str = "client-11",
                    ap_id: str = "2",
                    seed: int = 20) -> dict[float, dict[str, float]]:
    """E-FIG20: AoA spectrum quality versus SNR.

    Reports, per SNR, the fraction of the spectrum's power concentrated
    within ten degrees of the true bearing (a numeric proxy for the paper's
    visual "spectrum stays sharp / large side lobes appear" comparison) and
    the bearing error of the strongest peak.  Both degrade markedly once
    the SNR drops below roughly 0 dB.
    """
    testbed, deployment = _single_link_deployment()
    ap = deployment.aps[ap_id]
    site = testbed.ap_site(ap_id)
    position = testbed.client_position(client_id)
    channel = deployment.channel_builder.build(position, ap.position,
                                               client_id=client_id, ap_id=ap_id)
    local_true = (bearing_deg(site.position, position) - site.orientation_deg) % 360.0
    rng = np.random.default_rng(seed)
    results: dict[float, dict[str, float]] = {}
    for snr_db in snrs_db:
        concentration_samples = []
        error_samples = []
        entries = [ap.overhear(channel, snr_db=snr_db, rng=rng)
                   for _ in range(10)]
        ap.clear()
        # All packets of one SNR share one batched-frontend pass.
        for spectrum in ap.compute_spectra(entries):
            distances = np.minimum(np.abs(spectrum.angles_deg - local_true),
                                   360.0 - np.abs(spectrum.angles_deg - local_true))
            near_true = float(np.sum(spectrum.power[distances <= 10.0]))
            concentration_samples.append(near_true / max(float(np.sum(spectrum.power)),
                                                         1e-12))
            peaks = find_peaks(spectrum, min_relative_height=0.3)
            if peaks:
                error_samples.append(angle_difference_deg(peaks[0].angle_deg, local_true))
        results[snr_db] = {
            "power_near_true_bearing": float(np.mean(concentration_samples)),
            "strongest_peak_error_deg": float(np.mean(error_samples))
            if error_samples else float("nan"),
        }
    return results


def sec434_detection_snr(snrs_db: Sequence[float] = (10.0, 0.0, -5.0, -10.0, -15.0),
                         num_trials: int = 20,
                         seed: int = 434) -> dict[float, dict[str, float]]:
    """E-SEC434: packet detection rate versus SNR for both detectors.

    The matched-filter detector that correlates against all the known
    training symbols should keep detecting down to about -10 dB; the plain
    Schmidl-Cox autocorrelation gives up earlier.
    """
    rng = np.random.default_rng(seed)
    preamble = generate_preamble()
    silence_samples = len(preamble) // 2
    matched = MatchedFilterDetector()
    schmidl_cox = SchmidlCoxDetector()
    results: dict[float, dict[str, float]] = {}
    for snr_db in snrs_db:
        matched_hits = 0
        schmidl_hits = 0
        for _ in range(num_trials):
            delayed = preamble.delayed(silence_samples)
            noisy = add_awgn(delayed, snr_db, rng=rng,
                             reference_power=preamble.power())
            if matched.detect(noisy).detected:
                matched_hits += 1
            if schmidl_cox.detect(noisy).detected:
                schmidl_hits += 1
        results[snr_db] = {
            "matched_filter_rate": matched_hits / num_trials,
            "schmidl_cox_rate": schmidl_hits / num_trials,
        }
    return results


def sec435_collisions(num_trials: int = 10, seed: int = 435) -> dict[str, float]:
    """E-SEC435: AoA recovery for two colliding packets via cancellation.

    The first client's preamble arrives alone; by the time the second
    client's preamble arrives, both signals are on the air.  The resolver
    removes the first client's bearings from the combined spectrum; success
    means the strongest remaining peak points at the second client.
    """
    testbed, deployment = _single_link_deployment()
    ap_id = "2"
    ap = deployment.aps[ap_id]
    site = testbed.ap_site(ap_id)
    rng = np.random.default_rng(seed)
    resolver = CollisionResolver()
    successes = 0
    bearing_errors: list[float] = []
    # Collisions between clients the AP can barely hear are uninteresting
    # (the AP would not decode either of them anyway); pick colliding
    # clients within normal coverage range of the probe AP.
    client_ids = [cid for cid in testbed.client_ids()
                  if testbed.client_position(cid).distance_to(ap.position) < 16.0]
    for _trial in range(num_trials):
        first_id, second_id = rng.choice(client_ids, size=2, replace=False)
        first_pos = testbed.client_position(str(first_id))
        second_pos = testbed.client_position(str(second_id))
        try:
            first_channel = deployment.channel_builder.build(
                first_pos, ap.position, client_id=str(first_id), ap_id=ap_id)
            second_channel = deployment.channel_builder.build(
                second_pos, ap.position, client_id=str(second_id), ap_id=ap_id)
        except EstimationError:
            continue
        except Exception:
            # A client the probe AP cannot hear at all: not a collision case.
            continue
        entry_first = ap.overhear(first_channel, rng=rng)
        first_spectrum = ap.compute_spectrum(entry_first)
        ap.clear()
        combined = merge_channels(first_channel, second_channel, ap_id=ap_id)
        entry_combined = ap.overhear(combined, rng=rng)
        combined_spectrum = ap.compute_spectrum(entry_combined)
        ap.clear()
        recovered = resolver.cancel(first_spectrum, combined_spectrum)
        peaks = find_peaks(recovered, min_relative_height=0.2, max_peaks=3)
        if not peaks:
            continue
        local_second = (bearing_deg(site.position, second_pos)
                        - site.orientation_deg) % 360.0
        # Success: the second transmitter's bearing (or its linear-array
        # mirror) appears among the strongest remaining peaks.
        candidate_errors = []
        for peak in peaks:
            candidate_errors.append(angle_difference_deg(peak.angle_deg, local_second))
            candidate_errors.append(angle_difference_deg(
                (360.0 - peak.angle_deg) % 360.0, local_second))
        error = min(candidate_errors)
        bearing_errors.append(error)
        if error <= 10.0:
            successes += 1
    return {
        "success_rate": successes / num_trials,
        "mean_bearing_error_deg": float(np.mean(bearing_errors))
        if bearing_errors else float("nan"),
    }


def appendix_a_height_error(height_m: float = 1.5,
                            distances_m: Sequence[float] = (5.0, 10.0)
                            ) -> dict[float, float]:
    """Appendix A: analytic percentage error from an AP/client height offset.

    ``error = 1 / cos(phi) - 1`` with ``cos(phi) = d / sqrt(d^2 + h^2)``;
    roughly 4% at 5 m and 1% at 10 m for a 1.5 m height difference.
    """
    results = {}
    for distance in distances_m:
        if distance <= 0:
            raise EstimationError("distances must be positive")
        cos_phi = distance / math.hypot(distance, height_m)
        results[distance] = (1.0 / cos_phi) - 1.0
    return results


# ----------------------------------------------------------------------
# System-level experiments (Figure 21, baselines)
# ----------------------------------------------------------------------
def fig21_latency(payload_bytes: int = 1500,
                  bitrates_mbps: Sequence[float] = (54.0, 1.0),
                  measure_python_processing: bool = True,
                  grid_resolution_m: float = 0.25) -> dict[str, dict[str, float]]:
    """E-FIG21: the end-to-end latency breakdown for slow and fast frames."""
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed, _default_scenario())
    service = _service(testbed.bounds, grid_resolution_m,
                       measure_processing_time=True)
    client_id = testbed.client_ids()[0]
    spectra = deployment.collect_client_spectra(client_id)
    service.localize(spectra, client_id)
    results: dict[str, dict[str, float]] = {}
    for bitrate in bitrates_mbps:
        breakdown = service.latency_breakdown(
            payload_bytes, bitrate,
            use_measured_processing=measure_python_processing)
        results[f"{bitrate:g} Mbit/s"] = breakdown.as_dict()
    results["paper model"] = LatencyModel().breakdown(payload_bytes, 54.0).as_dict()
    return results


def _survey_axis(start: float, stop: float, step: float) -> np.ndarray:
    """Survey positions in ``[start, stop)`` on their exact point count.

    The float-step ``np.arange(start, stop, step)`` form drifts both count
    and endpoint with rounding (repro-lint RPR001); this keeps arange's
    ``ceil((stop - start) / step)`` count but pins the values with
    ``np.linspace`` so the survey grid is reproducible.
    """
    num = max(int(np.ceil((stop - start) / step)), 0)
    return np.linspace(start, start + step * (num - 1), num)


def baseline_comparison(num_clients: int | None = 15,
                        survey_grid_m: float = 2.0,
                        grid_resolution_m: float = 0.25,
                        seed: int = 99) -> dict[str, ErrorStatistics]:
    """E-BASE: ArrayTrack versus RSSI fingerprinting / model / centroid.

    All systems run against the same clients and the same channel model; the
    fingerprinting baseline gets a dense offline survey (which ArrayTrack
    does not need), and still lands in the metre range.
    """
    testbed = build_office_testbed()
    deployment = SimulatedDeployment(testbed, _default_scenario())
    service = _service(testbed.bounds, grid_resolution_m)
    ap_positions = {site.ap_id: site.position for site in testbed.ap_sites}
    transmit_power_dbm = 15.0
    rng = np.random.default_rng(seed)

    def observe_rssi(position: Point2D) -> dict[str, float]:
        observation = {}
        for ap_id, ap_position in ap_positions.items():
            try:
                channel = deployment.channel_builder.build(position, ap_position,
                                                           client_id="rss", ap_id=ap_id)
            except Exception:
                # The AP cannot hear the client at all: report the noise floor.
                observation[ap_id] = -95.0
                continue
            # Commodity NICs report whole-dB RSSI with a little measurement noise.
            observation[ap_id] = channel.rssi_dbm(transmit_power_dbm) + float(
                rng.normal(scale=1.0))
        return observation

    # Offline survey for the fingerprinting baseline.
    xmin, ymin, xmax, ymax = testbed.bounds
    fingerprints = []
    for x in _survey_axis(xmin + 1.0, xmax - 0.5, survey_grid_m):
        for y in _survey_axis(ymin + 1.0, ymax - 0.5, survey_grid_m):
            point = Point2D(float(x), float(y))
            fingerprints.append(RssFingerprint(point, observe_rssi(point)))
    fingerprint_localizer = FingerprintLocalizer(k=3)
    fingerprint_localizer.train(fingerprints)
    model_localizer = ModelBasedRssLocalizer(ap_positions, transmit_power_dbm)
    # The weighted-centroid baseline is looked up by name in the estimator
    # registry, the same way benchmark sweeps select it.
    centroid_localizer = create_baseline("rssi", ap_positions)

    clients = testbed.client_ids()
    if num_clients is not None:
        clients = clients[:num_clients]
    errors: dict[str, list[float]] = {
        "arraytrack": [], "rss fingerprinting": [],
        "rss model": [], "weighted centroid": [],
    }
    for client_id in clients:
        ground_truth = testbed.client_position(client_id)
        deployment.clear()
        spectra = deployment.collect_client_spectra(client_id)
        estimate = service.localize(spectra, client_id)
        errors["arraytrack"].append(estimate.error_to(ground_truth) * 100.0)
        rssi = observe_rssi(ground_truth)
        errors["rss fingerprinting"].append(
            fingerprint_localizer.locate(rssi).distance_to(ground_truth) * 100.0)
        errors["rss model"].append(
            model_localizer.locate(rssi, testbed.bounds).distance_to(ground_truth) * 100.0)
        errors["weighted centroid"].append(
            centroid_localizer.locate(rssi).distance_to(ground_truth) * 100.0)
    return {name: summarize_errors(samples) for name, samples in errors.items()}


# ----------------------------------------------------------------------
# Streaming mobility experiment (roaming clients, Section 2.4 end to end)
# ----------------------------------------------------------------------
@dataclass
class RoamingTrackingResult:
    """E-ROAM: streaming fixes for clients roaming through the office.

    Attributes
    ----------
    num_clients:
        Concurrently tracked clients.
    num_fixes:
        Fixes emitted over the whole walk (ideally clients x steps).
    errors_cm:
        Per-fix localization error against the burst's true position.
    median_error_cm / mean_error_cm:
        Summary statistics over ``errors_cm``.
    fixes_per_s:
        Tracked-clients-per-second throughput of the service side of the
        loop (ingest + tick wall-clock; the channel simulation that
        produces the frames is excluded).
    path_length_m:
        Smoothed trajectory length per client, from the service tracker.
    """

    num_clients: int
    num_fixes: int
    errors_cm: list[float]
    median_error_cm: float
    mean_error_cm: float
    fixes_per_s: float
    path_length_m: dict[str, float]


def roaming_tracking(num_clients: int = 3,
                     num_steps: int = 8,
                     frames_per_burst: int = 3,
                     ap_count: int = 3,
                     suppress: bool = True,
                     grid_resolution_m: float = 0.25,
                     snr_db: float = 8.0,
                     movement_max_step_m: float = 0.05,
                     step_interval_s: float = 0.5,
                     seed: int = 2013) -> RoamingTrackingResult:
    """E-ROAM: track roaming clients through the streaming service.

    Each client walks a corridor waypoint track; at every step it transmits
    a burst of ``frames_per_burst`` frames 30 ms apart while inadvertently
    moving a few centimetres between frames (the Section 2.4 premise:
    direct-path peaks stay put while multipath/noise peaks wander).  Every
    frame is streamed into the client's session and ``tick`` drains the
    burst through the batched synthesis, with the multipath-suppression
    stage on or off.  The server-side (batch-path) suppressor stays
    disabled in both variants so the comparison isolates the streaming
    stage.

    The defaults model roaming at the edge of coverage: only three APs
    overhear the clients and the capture SNR is low (8 dB -- Figure 20
    territory, where spurious sidelobes rival the direct peak).  Spurious
    peaks decorrelate between the burst's frames while the direct-path
    peak stays put, which is precisely the regime the Figure 8 algorithm
    targets; at high SNR with dense AP coverage the synthesis is already
    multipath-robust and suppression has nothing to fix.  The same
    ``seed`` produces identical captures for both ``suppress`` settings,
    so paired runs are directly comparable.
    """
    if num_steps < 2:
        raise EstimationError("num_steps must be >= 2")
    if num_clients < 1:
        raise EstimationError("num_clients must be >= 1")
    testbed = build_office_testbed()
    scenario = ScenarioConfig(frames_per_client=frames_per_burst,
                              snr_db=snr_db, seed=seed)
    deployment = SimulatedDeployment(testbed, scenario)
    ap_ids = testbed.ap_ids()[:ap_count]
    config = ArrayTrackConfig(bounds=testbed.bounds).updated({
        "server.localizer.grid_resolution_m": grid_resolution_m,
        "server.enable_multipath_suppression": False,
        "session.emit_every_frames": frames_per_burst,
        "session.suppress_multipath": bool(suppress),
    })
    service = ArrayTrackService(config)
    walk_rng = np.random.default_rng(seed)
    # Corridor walks on staggered lanes, west to east.
    lanes = (9.5, 5.0, 13.0)
    tracks = {
        f"roamer-{index}": random_waypoint_track(
            Point2D(6.0 + 2.0 * index, lanes[index % len(lanes)]),
            Point2D(34.0 - 2.0 * index, lanes[index % len(lanes)]),
            num_samples=num_steps)
        for index in range(num_clients)
    }
    errors_cm: list[float] = []
    num_fixes = 0
    service_time_s = 0.0
    for step in range(num_steps):
        now = step * step_interval_s
        for client_id, track in tracks.items():
            burst = movement_track(track[step], frames_per_burst,
                                   max_step_m=movement_max_step_m,
                                   rng=walk_rng)
            deployment.capture_client(client_id, ap_ids, positions=burst,
                                      start_time_s=now)
        # Spectrum computation happens AP-side (outside the timed region):
        # only the service's share of the loop -- ingest + tick -- counts
        # towards the tracked-clients-per-second figure.
        frames = [(ap_id, spectrum, client_id)
                  for client_id in tracks
                  for ap_id, spectra in deployment.spectra_for_client(
                      client_id, ap_ids).items()
                  for spectrum in spectra]
        start = time.perf_counter()
        for ap_id, spectrum, client_id in frames:
            service.ingest(ap_id, spectrum, client_id=client_id)
        fixes = service.tick(now_s=now)
        service_time_s += time.perf_counter() - start
        deployment.clear()
        for client_id, estimate in fixes.items():
            errors_cm.append(
                estimate.position.distance_to(tracks[client_id][step]) * 100.0)
            num_fixes += 1
    # summarize_errors validates the sample (rejects NaN/inf) before any
    # quantile runs -- the repro-lint RPR007 contract.
    stats = summarize_errors(errors_cm) if errors_cm else None
    return RoamingTrackingResult(
        num_clients=num_clients,
        num_fixes=num_fixes,
        errors_cm=errors_cm,
        median_error_cm=stats.median_cm if stats is not None else float("nan"),
        mean_error_cm=stats.mean_cm if stats is not None else float("nan"),
        fixes_per_s=num_fixes / service_time_s if service_time_s > 0 else 0.0,
        path_length_m={client_id: service.tracker.path_length_m(client_id)
                       for client_id in tracks},
    )


def roaming_tracking_comparison(**kwargs) -> dict[str, RoamingTrackingResult]:
    """E-ROAM: the roaming scenario with and without multipath suppression.

    Both variants run the identical captures (same seed, same walks), so
    the error difference is attributable to the suppression stage alone.
    """
    return {
        "suppressed": roaming_tracking(suppress=True, **kwargs),
        "unsuppressed": roaming_tracking(suppress=False, **kwargs),
    }
