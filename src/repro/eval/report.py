"""Plain-text rendering of experiment results.

The benchmark harness prints, for every reproduced table and figure, the
same rows/series the paper reports, using the helpers below.  Keeping the
rendering separate from the experiments keeps the experiment functions pure
(data in, data out) and easily assertable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.eval.metrics import ErrorStatistics

__all__ = [
    "format_table",
    "format_error_statistics",
    "format_cdf_series",
    "format_key_values",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    cells = [[str(h) for h in headers]] + [[_format_cell(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths, strict=True)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_error_statistics(statistics: Mapping[object, ErrorStatistics],
                            label: str = "configuration",
                            title: str = "") -> str:
    """Render a mapping of configuration -> error statistics as a table."""
    headers = [label, "median (cm)", "mean (cm)", "90% (cm)", "95% (cm)", "max (cm)", "n"]
    rows = []
    for key, stats in statistics.items():
        rows.append([key, stats.median_cm, stats.mean_cm, stats.p90_cm,
                     stats.p95_cm, stats.max_cm, stats.count])
    return format_table(headers, rows, title=title)


def format_cdf_series(cdfs: Mapping[object, tuple[np.ndarray, np.ndarray]],
                      percentiles: Sequence[float] = (0.5, 0.9, 0.95),
                      title: str = "") -> str:
    """Render CDF curves as the error value reached at chosen percentiles."""
    headers = ["series"] + [f"p{int(100 * p)} (cm)" for p in percentiles]
    rows = []
    for key, (grid, fractions) in cdfs.items():
        row = [key]
        for target in percentiles:
            index = int(np.searchsorted(fractions, target))
            value = grid[min(index, len(grid) - 1)]
            row.append(float(value))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_key_values(values: Mapping[object, object], title: str = "") -> str:
    """Render a flat mapping as an aligned two-column listing."""
    lines = [title] if title else []
    width = max((len(str(k)) for k in values), default=0)
    for key, value in values.items():
        lines.append(f"  {str(key).ljust(width)} : {_format_cell(value)}")
    return "\n".join(lines)
