"""Error metrics and CDF utilities for the evaluation experiments.

All of the paper's accuracy results are reported as medians/means of the
location error distribution and as CDF plots (Figures 13, 15, 16, 18); this
module provides those summaries in a plotting-free, assertable form.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.dtypes import as_float_array
from repro.errors import EstimationError

__all__ = ["ErrorStatistics", "empirical_cdf", "summarize_errors"]


@dataclass(frozen=True)
class ErrorStatistics:
    """Summary statistics of a localization-error sample, in centimetres.

    Attributes
    ----------
    count:
        Number of error samples.
    median_cm, mean_cm, p90_cm, p95_cm, p98_cm, max_cm:
        The usual summary quantiles the paper quotes (e.g. "95% of clients
        to within 90 cm").
    """

    count: int
    median_cm: float
    mean_cm: float
    p90_cm: float
    p95_cm: float
    p98_cm: float
    max_cm: float

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for report tables)."""
        return {
            "count": self.count,
            "median_cm": self.median_cm,
            "mean_cm": self.mean_cm,
            "p90_cm": self.p90_cm,
            "p95_cm": self.p95_cm,
            "p98_cm": self.p98_cm,
            "max_cm": self.max_cm,
        }


def summarize_errors(errors_cm: Sequence[float] | np.ndarray) -> ErrorStatistics:
    """Return :class:`ErrorStatistics` for a sample of errors in centimetres.

    Raises
    ------
    EstimationError
        If the sample is empty, contains non-finite values (every
        comparison against NaN is False, so the old ``errors < 0`` guard
        silently admitted NaN and poisoned every quantile; +inf slips the
        same guard and poisons the mean/max), or contains negative values.
    """
    errors = as_float_array(list(errors_cm))
    if errors.size == 0:
        raise EstimationError("cannot summarize an empty error sample")
    bad_count = int(np.count_nonzero(~np.isfinite(errors)))
    if bad_count:
        raise EstimationError(
            f"error sample contains {bad_count} non-finite value(s) "
            f"(NaN/inf) out of {errors.size}; they would silently poison "
            f"every quantile")
    if np.any(errors < 0):
        raise EstimationError("errors must be non-negative")
    return ErrorStatistics(
        count=int(errors.size),
        median_cm=float(np.median(errors)),
        mean_cm=float(np.mean(errors)),
        p90_cm=float(np.percentile(errors, 90)),
        p95_cm=float(np.percentile(errors, 95)),
        p98_cm=float(np.percentile(errors, 98)),
        max_cm=float(np.max(errors)),
    )


def empirical_cdf(errors_cm: Sequence[float] | np.ndarray,
                  grid_cm: Sequence[float] | np.ndarray | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(grid, fraction_below)`` pairs describing the error CDF.

    Parameters
    ----------
    errors_cm:
        Error samples in centimetres.
    grid_cm:
        Evaluation grid; a logarithmic grid from 1 cm to the sample maximum
        (matching the paper's log-scaled CDF plots) is used when omitted.
    """
    errors = np.sort(as_float_array(list(errors_cm)))
    if errors.size == 0:
        raise EstimationError("cannot compute the CDF of an empty sample")
    bad_count = int(np.count_nonzero(~np.isfinite(errors)))
    if bad_count:
        raise EstimationError(
            f"error sample contains {bad_count} non-finite value(s) "
            f"(NaN/inf) out of {errors.size}; they sort above every grid "
            f"point and would silently deflate the CDF")
    if grid_cm is None:
        # Pad the top of the grid slightly so the largest sample is always
        # counted despite floating-point rounding of the log spacing.
        upper = max(float(errors[-1]), 1.0) * 1.001
        grid = np.logspace(0.0, np.log10(upper), 64)
    else:
        grid = as_float_array(list(grid_cm))
    fractions = np.searchsorted(errors, grid, side="right") / errors.size
    return grid, fractions
