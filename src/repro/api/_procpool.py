"""Process-backend sharding: a persistent spawn pool + shared-memory spectra.

``ParallelConfig.backend = "thread"`` shards batches across threads, which
only overlaps the GIL-releasing NumPy regions; everything Python-bound in a
shard still serializes on one interpreter lock.  This module is the
``"process"`` backend that breaks that ceiling: a lazy, persistent pool of
*spawned* worker processes, each owning its own :class:`~repro.server.
backend.ArrayTrackServer` (and therefore its own steering/bearing/window
caches, warmed in the worker initializer), with the bulk frame data --
angle grids and spectrum power rows -- moved through one
``multiprocessing.shared_memory`` segment per batched call.  Only small
things cross the pickle pipe:

* down: the segment name, per-array ``(offset, length)`` specs and per-shard
  index metadata (client/AP ids, positions, timestamps);
* up: the per-shard fix dictionaries (:class:`~repro.core.localizer.
  LocationEstimate` objects).

Workers rebuild each shard's :class:`~repro.core.spectrum.AoASpectrum`
objects as zero-copy read-only views into the segment, run the *identical*
suppression + synthesis stages the thread backend runs, and return fixes.
Because every stage is deterministic and the shard merge preserves the
caller's client order, process-sharded results are bit-for-bit identical to
the serial path (asserted by ``tests/api/test_process_backend.py``).

Shared-memory lifecycle: the parent creates one segment per batched call and
always closes *and unlinks* it in a ``finally`` -- success, worker
exception, or worker crash alike -- so no segment outlives the call.  The
module-level :func:`live_segments` registry backs the teardown assertions in
the test suite.  Spawn (not fork) is used so a pool started from a threaded
parent is safe on every platform.
"""

from __future__ import annotations

import os
import uuid
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.localizer import LocationEstimate
from repro.core.spectrum import AoASpectrum
from repro.core.suppression import MultipathSuppressor
from repro.errors import ConfigurationError, EstimationError
from repro.geometry.vector import Point2D
from repro.server.backend import ArrayTrackServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.config import ArrayTrackConfig

__all__ = ["ProcessShardPool", "SEGMENT_PREFIX", "live_segments"]

#: Prefix of every shared-memory segment this module creates; the teardown
#: tests scan ``/dev/shm`` for it to prove nothing leaked.
SEGMENT_PREFIX = "arraytrack_"

#: Parent-side registry of segments created but not yet unlinked.
_LIVE_SEGMENTS: set = set()


def live_segments() -> frozenset[str]:
    """Return the names of this process's currently live shm segments.

    Empty whenever no sharded call is in flight; the equality suite asserts
    it is empty after every call and after ``close()``.
    """
    return frozenset(_LIVE_SEGMENTS)


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{uuid.uuid4().hex[:12]}"


# ----------------------------------------------------------------------
# Shared-memory packing (parent side)
# ----------------------------------------------------------------------
#: One spectrum, flattened to picklable metadata plus two array indices:
#: ``(angles_index, power_index, ap_xy, orientation_deg, client_id, ap_id,
#: timestamp_s)``.
_SpectrumRef = tuple[int, int, tuple[float, float] | None, float,
                     str, str, float]


@dataclass(frozen=True)
class _SegmentHandle:
    """Everything a worker needs to map the batch arrays: name + layout."""

    name: str
    #: Per-array ``(byte offset, element count)``; all arrays are 1-D
    #: float64, so the layout stays self-describing and 8-byte aligned.
    specs: tuple[tuple[int, int], ...]


class _ArrayPacker:
    """Collects the batch's float arrays and writes them into one segment.

    Arrays are deduplicated by source-object identity: every spectrum of a
    deployment typically shares one angle-grid object, so the grid is
    stored once per segment instead of once per frame.
    """

    def __init__(self) -> None:
        self._arrays: list[np.ndarray] = []
        self._specs: list[tuple[int, int]] = []
        self._by_source: dict[int, int] = {}
        self._nbytes = 0

    def add(self, array: np.ndarray) -> int:
        """Register one 1-D array; returns its index into the segment."""
        index = self._by_source.get(id(array))
        if index is not None:
            return index
        # dtype-pinned: float64 -- the shared-memory segment's wire format is fixed float64
        data = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
        index = len(self._arrays)
        self._arrays.append(data)
        self._specs.append((self._nbytes, int(data.shape[0])))
        self._nbytes += data.nbytes
        self._by_source[id(array)] = index
        return index

    def pack(self) -> tuple[shared_memory.SharedMemory, _SegmentHandle]:
        """Create the segment, copy every array in, return it + its handle.

        The segment's lifetime is split across functions: every caller
        must release it (``_run()`` does, in its ``finally``, via
        ``_release_segment``).  repro-lint's RPR012 flow analysis proves
        that contract on each run; the zero-leak behavior is additionally
        asserted against ``live_segments()`` and ``/dev/shm`` by
        ``tests/api/test_process_backend.py``.
        """
        segment = shared_memory.SharedMemory(
            create=True, size=max(self._nbytes, 8), name=_new_segment_name())
        _LIVE_SEGMENTS.add(segment.name)
        for (offset, length), data in zip(self._specs, self._arrays, strict=True):
            # dtype-pinned: float64 -- views into the fixed float64 wire format
            target = np.ndarray((length,), dtype=np.float64,
                                buffer=segment.buf, offset=offset)
            target[:] = data
            # Drop the view immediately so the buffer has no exports left
            # when the parent closes the segment.
            del target
        return segment, _SegmentHandle(segment.name, tuple(self._specs))


def _release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment, tolerating partial prior cleanup."""
    name = segment.name
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a view escaped; GC releases it
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
    _LIVE_SEGMENTS.discard(name)


def _encode_spectrum(packer: _ArrayPacker,
                     spectrum: AoASpectrum) -> _SpectrumRef:
    position = spectrum.ap_position
    return (
        packer.add(spectrum.angles_deg),
        packer.add(spectrum.power),
        None if position is None else (float(position.x), float(position.y)),
        float(spectrum.ap_orientation_deg),
        spectrum.client_id,
        spectrum.ap_id,
        float(spectrum.timestamp_s),
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass
class _WorkerState:
    server: ArrayTrackServer
    suppressor: MultipathSuppressor


_WORKER: _WorkerState | None = None


def _initialize_worker(config: "ArrayTrackConfig",
                       warm_positions: tuple[tuple[float, float], ...]) -> None:
    """Build this worker's server once and warm its geometry caches.

    Runs in the spawned child before any task.  ``config`` arrives through
    the :class:`~repro.api.config.ArrayTrackConfig` dict-round-trip pickle
    contract, so every validator re-runs on this side of the pipe; the
    bearing grids of the known AP fleet are precomputed so the first real
    shard does not pay the arctan2 sweeps.
    """
    global _WORKER
    assert config.bounds is not None
    server = ArrayTrackServer(config.bounds, config.server)
    server.warm_geometry_caches(warm_positions)
    _WORKER = _WorkerState(server=server, suppressor=config.suppressor)


def _require_worker() -> _WorkerState:
    if _WORKER is None:  # pragma: no cover - initializer always runs first
        raise EstimationError(
            "process-pool worker task ran before the worker was initialized")
    return _WORKER


@contextmanager
def _attached_arrays(handle: _SegmentHandle) -> Iterator[list[np.ndarray]]:
    """Attach the segment and yield its arrays as read-only views.

    The views are zero-copy; callers must drop every reference derived from
    them before the context exits so the mapping can be released.  If a
    view escapes into an in-flight exception's traceback the close is
    skipped (the worker releases the mapping when the traceback is
    collected) -- the *parent's* unlink removes the segment name either
    way, so nothing leaks system-wide.
    """
    segment = shared_memory.SharedMemory(name=handle.name)
    arrays: list[np.ndarray] = []
    try:
        for offset, length in handle.specs:
            view = np.ndarray((length,), dtype=np.float64,
                              buffer=segment.buf, offset=offset)
            view.flags.writeable = False
            arrays.append(view)
        yield arrays
    finally:
        arrays.clear()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view held by a traceback
            pass


def _decode_spectrum(arrays: Sequence[np.ndarray],
                     ref: _SpectrumRef) -> AoASpectrum:
    angles_index, power_index, position, orientation, client_id, ap_id, \
        timestamp_s = ref
    return AoASpectrum(
        arrays[angles_index], arrays[power_index],
        ap_position=None if position is None else Point2D(*position),
        ap_orientation_deg=orientation, client_id=client_id, ap_id=ap_id,
        timestamp_s=timestamp_s)


#: One shard as shipped to a worker: ordered ``(client_id, per_ap)`` pairs,
#: where ``per_ap`` preserves the caller's AP order exactly (the order is
#: part of the bit-equality contract).
_LocalizeShard = tuple[tuple[str, tuple[tuple[str, tuple[_SpectrumRef, ...]],
                                        ...]], ...]
_TickShard = tuple[tuple[str, tuple[tuple[str, tuple[tuple[float,
                                                           _SpectrumRef],
                                                     ...]], ...]], ...]


def _localize_shard(handle: _SegmentHandle,
                    shard: _LocalizeShard) -> dict[str, LocationEstimate]:
    """Worker task behind ``localize_many`` / ``localize_buffered``."""
    worker = _require_worker()
    with _attached_arrays(handle) as arrays:
        batch = {
            client_id: {ap_id: [_decode_spectrum(arrays, ref) for ref in refs]
                        for ap_id, refs in per_ap}
            for client_id, per_ap in shard}
        estimates = worker.server.localize_batch(batch)
        del batch
    return estimates


def _tick_shard(handle: _SegmentHandle, shard: _TickShard,
                suppress: bool) -> dict[str, LocationEstimate]:
    """Worker task behind ``tick`` / ``flush``.

    Replicates the thread backend's shard closure exactly: with the
    streaming suppression stage on, each AP's pending frames are suppressed
    per time group (on the ingest-resolved timestamps) and the primaries
    enter the raw synthesis; with it off, the raw pending spectra go
    through the full batch path.
    """
    worker = _require_worker()
    with _attached_arrays(handle) as arrays:
        if suppress:
            flat: dict[str, list[AoASpectrum]] = {}
            for client_id, per_ap in shard:
                processed: list[AoASpectrum] = []
                for _ap_id, frames in per_ap:
                    spectra = [_decode_spectrum(arrays, ref)
                               for _ts, ref in frames]
                    timestamps = [timestamp for timestamp, _ref in frames]
                    processed.extend(worker.suppressor.process(
                        spectra, timestamps=timestamps))
                flat[client_id] = processed
            estimates = worker.server.synthesize_batch(flat)
            del flat
        else:
            batch = {
                client_id: {ap_id: [_decode_spectrum(arrays, ref)
                                    for _ts, ref in frames]
                            for ap_id, frames in per_ap}
                for client_id, per_ap in shard}
            estimates = worker.server.localize_batch(batch)
            del batch
    return estimates


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ProcessShardPool:
    """A lazy, persistent spawn pool sharding batched calls across processes.

    Owned by :class:`~repro.api.ArrayTrackService` when
    ``parallel.backend = "process"``.  Workers are spawned on the first
    sharded call and persist across calls (the per-worker server and its
    warmed caches amortize over the service lifetime); :meth:`close` shuts
    them down.  Each batched call moves its frame arrays through one
    shared-memory segment that is unconditionally unlinked before the call
    returns -- on success, on a worker exception (which re-raises here with
    the original remote traceback chained), and on a worker crash (which
    surfaces as ``concurrent.futures.process.BrokenProcessPool`` rather
    than a hang).
    """

    def __init__(self, config: "ArrayTrackConfig",
                 warm_positions: Iterable[tuple[float, float]] = ()) -> None:
        if config.bounds is None:
            raise ConfigurationError(
                "a process shard pool needs config.bounds to build its "
                "per-worker servers")
        self._config = config
        self._warm_positions = tuple(
            (float(x), float(y)) for x, y in warm_positions)
        self._executor: ProcessPoolExecutor | None = None

    @property
    def started(self) -> bool:
        """True once workers have been spawned (and not yet closed)."""
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._config.parallel.num_workers,
                mp_context=get_context("spawn"),
                initializer=_initialize_worker,
                initargs=(self._config, self._warm_positions))
        return self._executor

    # ------------------------------------------------------------------
    # Batched calls
    # ------------------------------------------------------------------
    def localize_shards(self, shards: Sequence[Sequence[str]],
                        spectra_by_client: Mapping[str, Mapping[str, Sequence[AoASpectrum]]]
                        ) -> dict[str, LocationEstimate]:
        """Run ``localize_batch`` per shard on the pool and merge in order."""
        packer = _ArrayPacker()
        encoded = {
            client_id: tuple(
                (ap_id, tuple(_encode_spectrum(packer, spectrum)
                              for spectrum in spectra))
                for ap_id, spectra in spectra_by_client[client_id].items())
            for shard in shards for client_id in shard}
        return self._run(_localize_shard, packer, shards, encoded)

    def tick_shards(self, shards: Sequence[Sequence[str]],
                    pending_by_client: Mapping[str, Mapping[str, Sequence[tuple[float, AoASpectrum]]]],
                    suppress: bool) -> dict[str, LocationEstimate]:
        """Run the streaming drain (suppression + synthesis) per shard."""
        packer = _ArrayPacker()
        encoded = {
            client_id: tuple(
                (ap_id, tuple((float(timestamp),
                               _encode_spectrum(packer, spectrum))
                              for timestamp, spectrum in frames))
                for ap_id, frames in pending_by_client[client_id].items())
            for shard in shards for client_id in shard}
        return self._run(_tick_shard, packer, shards, encoded, suppress)

    def _run(self, task: Callable[..., dict[str, LocationEstimate]],
             packer: _ArrayPacker,
             shards: Sequence[Sequence[str]], encoded: dict[str, tuple],
             *extra: object) -> dict[str, LocationEstimate]:
        executor = self._ensure()
        segment, handle = packer.pack()
        try:
            futures = [
                executor.submit(
                    task, handle,
                    tuple((client_id, encoded[client_id])
                          for client_id in shard),
                    *extra)
                for shard in shards]
            merged: dict[str, LocationEstimate] = {}
            try:
                for future in futures:
                    merged.update(future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
            return merged
        finally:
            _release_segment(segment)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
