"""Process-backend sharding: a persistent spawn pool + shared-memory spectra.

``ParallelConfig.backend = "thread"`` shards batches across threads, which
only overlaps the GIL-releasing NumPy regions; everything Python-bound in a
shard still serializes on one interpreter lock.  This module is the
``"process"`` backend that breaks that ceiling: a lazy, persistent pool of
*spawned* worker processes, each owning its own :class:`~repro.server.
backend.ArrayTrackServer` (and therefore its own steering/bearing/window
caches, warmed in the worker initializer), with the bulk frame data --
angle grids and spectrum power rows -- moved through one
``multiprocessing.shared_memory`` segment per batched call.  Only small
things cross the pickle pipe:

* down: the segment name, per-array ``(offset, length)`` specs and per-shard
  index metadata (client/AP ids, positions, timestamps);
* up: the per-shard fix dictionaries (:class:`~repro.core.localizer.
  LocationEstimate` objects).

Workers rebuild each shard's :class:`~repro.core.spectrum.AoASpectrum`
objects as zero-copy read-only views into the segment, run the *identical*
suppression + synthesis stages the thread backend runs, and return fixes.
Because every stage is deterministic and the shard merge preserves the
caller's client order, process-sharded results are bit-for-bit identical to
the serial path (asserted by ``tests/api/test_process_backend.py``).

Shared-memory lifecycle: the parent creates one segment per batched call and
always closes *and unlinks* it in a ``finally`` -- success, worker
exception, or worker crash alike -- so no segment outlives the call.  The
module-level :func:`live_segments` registry backs the teardown assertions in
the test suite.  Spawn (not fork) is used so a pool started from a threaded
parent is safe on every platform.
"""

from __future__ import annotations

import concurrent.futures
import os
import random
import threading
import time
import uuid
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.localizer import LocationEstimate
from repro.core.spectrum import AoASpectrum
from repro.core.suppression import MultipathSuppressor
from repro.errors import (ConfigurationError, EstimationError,
                          PoolSupervisionError)
from repro.geometry.vector import Point2D
from repro.server.backend import ArrayTrackServer
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.config import ArrayTrackConfig

__all__ = ["ProcessShardPool", "PoolStats", "SEGMENT_PREFIX",
           "live_segments", "shm_leak_events"]

#: Prefix of every shared-memory segment this module creates; the teardown
#: tests scan ``/dev/shm`` for it to prove nothing leaked.
SEGMENT_PREFIX = "arraytrack_"

#: Parent-side registry of segments created but not yet unlinked.
_LIVE_SEGMENTS: set = set()

#: Times a segment's ``close()`` failed with :class:`BufferError` (a view
#: into the mapping escaped, so the parent-side mapping lives until the GC
#: collects the view).  Never silently reset; surfaced by
#: ``ArrayTrackService.health()`` so leak drift is observable in
#: production, not just in the test suite's teardown assertions.
_LEAK_EVENTS = 0


def live_segments() -> frozenset[str]:
    """Return the names of this process's currently live shm segments.

    Empty whenever no sharded call is in flight; the equality suite asserts
    it is empty after every call and after ``close()``.
    """
    return frozenset(_LIVE_SEGMENTS)


def shm_leak_events() -> int:
    """Times a segment close leaked its parent-side mapping (monotonic)."""
    return _LEAK_EVENTS


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{uuid.uuid4().hex[:12]}"


# ----------------------------------------------------------------------
# Shared-memory packing (parent side)
# ----------------------------------------------------------------------
#: One spectrum, flattened to picklable metadata plus two array indices:
#: ``(angles_index, power_index, ap_xy, orientation_deg, client_id, ap_id,
#: timestamp_s)``.
_SpectrumRef = tuple[int, int, tuple[float, float] | None, float,
                     str, str, float]


@dataclass(frozen=True)
class _SegmentHandle:
    """Everything a worker needs to map the batch arrays: name + layout."""

    name: str
    #: Per-array ``(byte offset, element count)``; all arrays are 1-D
    #: float64, so the layout stays self-describing and 8-byte aligned.
    specs: tuple[tuple[int, int], ...]


class _ArrayPacker:
    """Collects the batch's float arrays and writes them into one segment.

    Arrays are deduplicated by source-object identity: every spectrum of a
    deployment typically shares one angle-grid object, so the grid is
    stored once per segment instead of once per frame.
    """

    def __init__(self) -> None:
        self._arrays: list[np.ndarray] = []
        self._specs: list[tuple[int, int]] = []
        self._by_source: dict[int, int] = {}
        self._nbytes = 0

    def add(self, array: np.ndarray) -> int:
        """Register one 1-D array; returns its index into the segment."""
        index = self._by_source.get(id(array))
        if index is not None:
            return index
        # dtype-pinned: float64 -- the shared-memory segment's wire format is fixed float64
        data = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
        index = len(self._arrays)
        self._arrays.append(data)
        self._specs.append((self._nbytes, int(data.shape[0])))
        self._nbytes += data.nbytes
        self._by_source[id(array)] = index
        return index

    def pack(self) -> tuple[shared_memory.SharedMemory, _SegmentHandle]:
        """Create the segment, copy every array in, return it + its handle.

        The segment's lifetime is split across functions: every caller
        must release it (``_run()`` does, in its ``finally``, via
        ``_release_segment``).  repro-lint's RPR012 flow analysis proves
        that contract on each run; the zero-leak behavior is additionally
        asserted against ``live_segments()`` and ``/dev/shm`` by
        ``tests/api/test_process_backend.py``.
        """
        faults.shm_allocation()
        segment = shared_memory.SharedMemory(
            create=True, size=max(self._nbytes, 8), name=_new_segment_name())
        _LIVE_SEGMENTS.add(segment.name)
        for (offset, length), data in zip(self._specs, self._arrays, strict=True):
            # dtype-pinned: float64 -- views into the fixed float64 wire format
            target = np.ndarray((length,), dtype=np.float64,
                                buffer=segment.buf, offset=offset)
            target[:] = data
            # Drop the view immediately so the buffer has no exports left
            # when the parent closes the segment.
            del target
        return segment, _SegmentHandle(segment.name, tuple(self._specs))


def _release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment, tolerating partial prior cleanup.

    A :class:`BufferError` from ``close()`` means a view into the mapping
    escaped; the GC will release the mapping eventually, but the event is
    *counted* (see :func:`shm_leak_events`) rather than swallowed, so a
    code path that habitually leaks views shows up in ``health()``.  The
    unlink still runs either way -- the segment name must not outlive the
    call system-wide.
    """
    global _LEAK_EVENTS
    name = segment.name
    try:
        segment.close()
    except BufferError:
        _LEAK_EVENTS += 1
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    _LIVE_SEGMENTS.discard(name)


def _encode_spectrum(packer: _ArrayPacker,
                     spectrum: AoASpectrum) -> _SpectrumRef:
    position = spectrum.ap_position
    return (
        packer.add(spectrum.angles_deg),
        packer.add(spectrum.power),
        None if position is None else (float(position.x), float(position.y)),
        float(spectrum.ap_orientation_deg),
        spectrum.client_id,
        spectrum.ap_id,
        float(spectrum.timestamp_s),
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass
class _WorkerState:
    server: ArrayTrackServer
    suppressor: MultipathSuppressor


_WORKER: _WorkerState | None = None


def _initialize_worker(config: "ArrayTrackConfig",
                       warm_positions: tuple[tuple[float, float], ...]) -> None:
    """Build this worker's server once and warm its geometry caches.

    Runs in the spawned child before any task.  ``config`` arrives through
    the :class:`~repro.api.config.ArrayTrackConfig` dict-round-trip pickle
    contract, so every validator re-runs on this side of the pipe; the
    bearing grids of the known AP fleet are precomputed so the first real
    shard does not pay the arctan2 sweeps.
    """
    global _WORKER
    assert config.bounds is not None
    server = ArrayTrackServer(config.bounds, config.server)
    server.warm_geometry_caches(warm_positions)
    _WORKER = _WorkerState(server=server, suppressor=config.suppressor)


def _require_worker() -> _WorkerState:
    if _WORKER is None:  # pragma: no cover - initializer always runs first
        raise EstimationError(
            "process-pool worker task ran before the worker was initialized")
    return _WORKER


@contextmanager
def _attached_arrays(handle: _SegmentHandle) -> Iterator[list[np.ndarray]]:
    """Attach the segment and yield its arrays as read-only views.

    The views are zero-copy; callers must drop every reference derived from
    them before the context exits so the mapping can be released.  If a
    view escapes into an in-flight exception's traceback the close is
    skipped (the worker releases the mapping when the traceback is
    collected) -- the *parent's* unlink removes the segment name either
    way, so nothing leaks system-wide.
    """
    segment = shared_memory.SharedMemory(name=handle.name)
    arrays: list[np.ndarray] = []
    try:
        for offset, length in handle.specs:
            view = np.ndarray((length,), dtype=np.float64,
                              buffer=segment.buf, offset=offset)
            view.flags.writeable = False
            arrays.append(view)
        yield arrays
    finally:
        arrays.clear()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view held by a traceback
            pass


def _decode_spectrum(arrays: Sequence[np.ndarray],
                     ref: _SpectrumRef) -> AoASpectrum:
    angles_index, power_index, position, orientation, client_id, ap_id, \
        timestamp_s = ref
    return AoASpectrum(
        arrays[angles_index], arrays[power_index],
        ap_position=None if position is None else Point2D(*position),
        ap_orientation_deg=orientation, client_id=client_id, ap_id=ap_id,
        timestamp_s=timestamp_s)


#: One shard as shipped to a worker: ordered ``(client_id, per_ap)`` pairs,
#: where ``per_ap`` preserves the caller's AP order exactly (the order is
#: part of the bit-equality contract).
_LocalizeShard = tuple[tuple[str, tuple[tuple[str, tuple[_SpectrumRef, ...]],
                                        ...]], ...]
_TickShard = tuple[tuple[str, tuple[tuple[str, tuple[tuple[float,
                                                           _SpectrumRef],
                                                     ...]], ...]], ...]


def _localize_shard(handle: _SegmentHandle,
                    shard: _LocalizeShard) -> dict[str, LocationEstimate]:
    """Worker task behind ``localize_many`` / ``localize_buffered``."""
    worker = _require_worker()
    faults.worker_shard("before-attach")
    with _attached_arrays(handle) as arrays:
        faults.worker_shard("after-attach")
        batch = {
            client_id: {ap_id: [_decode_spectrum(arrays, ref) for ref in refs]
                        for ap_id, refs in per_ap}
            for client_id, per_ap in shard}
        estimates = worker.server.localize_batch(batch)
        del batch
    faults.worker_shard("before-return")
    return estimates


def _tick_shard(handle: _SegmentHandle, shard: _TickShard,
                suppress: bool) -> dict[str, LocationEstimate]:
    """Worker task behind ``tick`` / ``flush``.

    Replicates the thread backend's shard closure exactly: with the
    streaming suppression stage on, each AP's pending frames are suppressed
    per time group (on the ingest-resolved timestamps) and the primaries
    enter the raw synthesis; with it off, the raw pending spectra go
    through the full batch path.
    """
    worker = _require_worker()
    faults.worker_shard("before-attach")
    with _attached_arrays(handle) as arrays:
        faults.worker_shard("after-attach")
        if suppress:
            flat: dict[str, list[AoASpectrum]] = {}
            for client_id, per_ap in shard:
                processed: list[AoASpectrum] = []
                for _ap_id, frames in per_ap:
                    spectra = [_decode_spectrum(arrays, ref)
                               for _ts, ref in frames]
                    timestamps = [timestamp for timestamp, _ref in frames]
                    processed.extend(worker.suppressor.process(
                        spectra, timestamps=timestamps))
                flat[client_id] = processed
            estimates = worker.server.synthesize_batch(flat)
            del flat
        else:
            batch = {
                client_id: {ap_id: [_decode_spectrum(arrays, ref)
                                    for _ts, ref in frames]
                            for ap_id, frames in per_ap}
                for client_id, per_ap in shard}
            estimates = worker.server.localize_batch(batch)
            del batch
    faults.worker_shard("before-return")
    return estimates


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Monotonic supervision counters of one :class:`ProcessShardPool`.

    Surfaced (merged with the module-level shm counters) through
    ``ArrayTrackService.health()``; the counters never reset over the
    pool's lifetime, so deltas between snapshots are meaningful.
    """

    #: Executors torn down and respawned by the supervisor.
    rebuilds: int = 0
    #: Shard failures that surfaced as a broken executor (worker death).
    broken_pools: int = 0
    #: Shard failures that surfaced as a blown ``shard_timeout_s`` deadline.
    shard_timeouts: int = 0
    #: Individual shard re-submissions across all retry rounds.
    shard_retries: int = 0
    #: Batches that exhausted ``max_retries`` (raised PoolSupervisionError).
    supervision_failures: int = 0
    #: Total backoff delay slept by the supervisor, in seconds.
    backoff_slept_s: float = 0.0

    def snapshot(self) -> dict[str, int | float]:
        """JSON-safe counter state."""
        return {
            "rebuilds": self.rebuilds,
            "broken_pools": self.broken_pools,
            "shard_timeouts": self.shard_timeouts,
            "shard_retries": self.shard_retries,
            "supervision_failures": self.supervision_failures,
            "backoff_slept_s": self.backoff_slept_s,
        }


class ProcessShardPool:
    """A lazy, persistent spawn pool sharding batched calls across processes.

    Owned by :class:`~repro.api.ArrayTrackService` when
    ``parallel.backend = "process"``.  Workers are spawned on the first
    sharded call and persist across calls (the per-worker server and its
    warmed caches amortize over the service lifetime); :meth:`close` shuts
    them down.  Each batched call moves its frame arrays through one
    shared-memory segment that is unconditionally unlinked before the call
    returns -- on success, on a worker exception (which re-raises here with
    the original remote traceback chained), and on a worker crash.

    With ``resilience.supervise_pool`` (the default) a worker crash or a
    blown per-shard deadline does not fail the batch: the supervisor tears
    the executor down, respawns it, and re-runs only the failed shards --
    up to ``resilience.max_retries`` times with exponential backoff --
    before giving up with :class:`~repro.errors.PoolSupervisionError` (a
    :class:`~repro.errors.TransientError`, so the service's circuit
    breaker can still serve the batch on a slower backend).  Completed
    shards are never re-run, every stage is deterministic, and the merge
    happens in shard order, so supervised results stay bit-identical to
    the serial path.  With supervision off, a crash surfaces as
    ``concurrent.futures.process.BrokenProcessPool`` exactly as before.

    The started/closed lifecycle is guarded by a lock: a ``close()``
    racing an in-flight call can neither resurrect the executor nor shut
    it down twice, and any later call fails fast with
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self, config: "ArrayTrackConfig",
                 warm_positions: Iterable[tuple[float, float]] = ()) -> None:
        if config.bounds is None:
            raise ConfigurationError(
                "a process shard pool needs config.bounds to build its "
                "per-worker servers")
        self._config = config
        self._warm_positions = tuple(
            (float(x), float(y)) for x, y in warm_positions)
        #: Guards the executor lifecycle (spawn / discard / close).
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._pool_closed = False
        self.stats = PoolStats()
        #: Deterministic jitter stream of the supervisor's backoff delays.
        self._backoff_rng = random.Random(config.resilience.retry_seed)

    @property
    def started(self) -> bool:
        """True once workers have been spawned (and not yet discarded)."""
        with self._lock:
            return self._executor is not None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; the pool cannot be restarted."""
        with self._lock:
            return self._pool_closed

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            return self._ensure_locked()

    def _ensure_locked(self) -> ProcessPoolExecutor:
        if self._pool_closed:
            raise ConfigurationError(
                "this ProcessShardPool is closed; build a new service "
                "instead of reusing it")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._config.parallel.num_workers,
                mp_context=get_context("spawn"),
                initializer=_initialize_worker,
                initargs=(self._config, self._warm_positions))
        return self._executor

    def _discard_executor(self, executor: ProcessPoolExecutor) -> None:
        """Tear one executor down so the next attempt spawns a fresh pool.

        Compare-and-swap under the lock: if a concurrent :meth:`close` (or
        another supervisor round) already took this executor, it is not
        popped -- and shutting an already-shut executor down again is a
        no-op, so the two paths cannot double-free.  Timed-out workers may
        still be running; they are terminated best-effort so a wedged
        worker cannot pin the old pool's resources.
        """
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False, cancel_futures=True)
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            if process.is_alive():
                process.terminate()

    # ------------------------------------------------------------------
    # Batched calls
    # ------------------------------------------------------------------
    def localize_shards(self, shards: Sequence[Sequence[str]],
                        spectra_by_client: Mapping[str, Mapping[str, Sequence[AoASpectrum]]]
                        ) -> dict[str, LocationEstimate]:
        """Run ``localize_batch`` per shard on the pool and merge in order."""
        packer = _ArrayPacker()
        encoded = {
            client_id: tuple(
                (ap_id, tuple(_encode_spectrum(packer, spectrum)
                              for spectrum in spectra))
                for ap_id, spectra in spectra_by_client[client_id].items())
            for shard in shards for client_id in shard}
        return self._run(_localize_shard, packer, shards, encoded)

    def tick_shards(self, shards: Sequence[Sequence[str]],
                    pending_by_client: Mapping[str, Mapping[str, Sequence[tuple[float, AoASpectrum]]]],
                    suppress: bool) -> dict[str, LocationEstimate]:
        """Run the streaming drain (suppression + synthesis) per shard."""
        packer = _ArrayPacker()
        encoded = {
            client_id: tuple(
                (ap_id, tuple((float(timestamp),
                               _encode_spectrum(packer, spectrum))
                              for timestamp, spectrum in frames))
                for ap_id, frames in pending_by_client[client_id].items())
            for shard in shards for client_id in shard}
        return self._run(_tick_shard, packer, shards, encoded, suppress)

    def _run(self, task: Callable[..., dict[str, LocationEstimate]],
             packer: _ArrayPacker,
             shards: Sequence[Sequence[str]], encoded: dict[str, tuple],
             *extra: object) -> dict[str, LocationEstimate]:
        executor = self._ensure()
        try:
            segment, handle = packer.pack()
        except OSError as exc:
            # No /dev/shm headroom (or an injected allocation failure
            # raised FaultInjectedError before this point): transient
            # infrastructure, not data -- let the breaker degrade.
            raise PoolSupervisionError(
                f"could not allocate the batch's shared-memory segment: "
                f"{exc}") from exc
        try:
            payloads = [
                tuple((client_id, encoded[client_id]) for client_id in shard)
                for shard in shards]
            if not self._config.resilience.supervise_pool:
                return self._run_once(executor, task, handle, payloads, extra)
            return self._run_supervised(executor, task, handle, payloads,
                                        extra)
        finally:
            _release_segment(segment)

    def _run_once(self, executor: ProcessPoolExecutor,
                  task: Callable[..., dict[str, LocationEstimate]],
                  handle: _SegmentHandle, payloads: Sequence[tuple],
                  extra: tuple[object, ...]) -> dict[str, LocationEstimate]:
        """The unsupervised fan out: any failure fails the whole batch."""
        futures = [executor.submit(task, handle, payload, *extra)
                   for payload in payloads]
        merged: dict[str, LocationEstimate] = {}
        try:
            for future in futures:
                merged.update(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return merged

    def _run_supervised(self, executor: ProcessPoolExecutor,
                        task: Callable[..., dict[str, LocationEstimate]],
                        handle: _SegmentHandle, payloads: Sequence[tuple],
                        extra: tuple[object, ...]
                        ) -> dict[str, LocationEstimate]:
        """Fan out with pool supervision: rebuild + retry failed shards.

        Each round submits only the still-failed shards; completed shard
        results are kept across rounds and merged in shard order at the
        end, so a recovered batch is bit-identical to an undisturbed one.
        Attempts are bounded by ``resilience.max_retries`` and separated
        by exponential backoff with deterministic jitter; an exhausted
        budget raises :class:`~repro.errors.PoolSupervisionError` chained
        to the last infrastructure failure.
        """
        resilience = self._config.resilience
        results: list[dict[str, LocationEstimate] | None] = \
            [None] * len(payloads)
        pending = list(range(len(payloads)))
        attempt = 0
        while pending:
            failure, failed = self._collect(executor, task, handle, payloads,
                                            extra, pending, results)
            if failure is None:
                break
            self._discard_executor(executor)
            self.stats.rebuilds += 1
            if attempt >= resilience.max_retries:
                self.stats.supervision_failures += 1
                raise PoolSupervisionError(
                    f"{len(failed)} shard(s) still failing after "
                    f"{attempt + 1} attempt(s); retry budget "
                    f"(max_retries={resilience.max_retries}) exhausted"
                ) from failure
            attempt += 1
            self.stats.shard_retries += len(failed)
            delay = self._backoff_delay(attempt)
            self.stats.backoff_slept_s += delay
            time.sleep(delay)
            pending = failed
            executor = self._ensure()
        merged: dict[str, LocationEstimate] = {}
        for result in results:
            assert result is not None  # every index left `pending` resolved
            merged.update(result)
        return merged

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with deterministic, seeded jitter."""
        resilience = self._config.resilience
        delay = min(resilience.backoff_base_s * 2.0 ** (attempt - 1),
                    resilience.backoff_max_s)
        jitter = resilience.backoff_jitter
        if jitter:
            delay *= 1.0 + jitter * (2.0 * self._backoff_rng.random() - 1.0)
        return delay

    def _collect(self, executor: ProcessPoolExecutor,
                 task: Callable[..., dict[str, LocationEstimate]],
                 handle: _SegmentHandle, payloads: Sequence[tuple],
                 extra: tuple[object, ...], pending: Sequence[int],
                 results: list[dict[str, LocationEstimate] | None]
                 ) -> tuple[BaseException | None, list[int]]:
        """Run one supervision round over the pending shard indices.

        Fills ``results`` for every shard that completed and returns
        ``(failure, failed_indices)``, where ``failure`` is the
        representative *infrastructure* failure of the round (broken
        executor or deadline) or None when everything completed.  A
        task-level exception -- the worker itself raised -- is not an
        infrastructure failure: it cancels the round and propagates with
        the remote traceback chained, exactly like the unsupervised path
        (retrying a deterministic error would re-fail identically).
        """
        resilience = self._config.resilience
        deadline = None if resilience.shard_timeout_s is None \
            else time.monotonic() + resilience.shard_timeout_s
        try:
            futures: dict[int, Future[dict[str, LocationEstimate]]] = {
                index: executor.submit(task, handle, payloads[index], *extra)
                for index in pending}
        except BrokenExecutor as exc:
            # The pool was already broken (e.g. by a crash in a previous
            # call) and refused the submission: the whole round failed.
            self.stats.broken_pools += 1
            return exc, list(pending)
        failure: BaseException | None = None
        failed: list[int] = []
        try:
            for index, future in futures.items():
                remaining = None if deadline is None \
                    else max(deadline - time.monotonic(), 0.0)
                try:
                    results[index] = future.result(timeout=remaining)
                except (TimeoutError, concurrent.futures.TimeoutError) as exc:
                    self.stats.shard_timeouts += 1
                    failure = exc
                    failed.append(index)
                except BrokenExecutor as exc:
                    self.stats.broken_pools += 1
                    failure = exc
                    failed.append(index)
        except BaseException:
            for future in futures.values():
                future.cancel()
            raise
        if failure is not None:
            for future in futures.values():
                future.cancel()
        return failure, failed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and mark the pool closed (idempotent).

        The executor is popped and the closed flag set under the lock, so
        a close racing an in-flight call's rebuild can neither be undone
        (any later ``_ensure`` raises) nor shut the same executor down
        twice; the potentially slow worker join happens outside the lock.
        """
        with self._lock:
            executor = self._executor
            self._executor = None
            self._pool_closed = True
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
