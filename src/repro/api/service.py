"""The unified ArrayTrack service facade: one object, three workloads.

The paper's system is a *service*: APs stream detections to a central
server that continuously emits location fixes.  :class:`ArrayTrackService`
is that service as a single public object, built from one
:class:`~repro.api.config.ArrayTrackConfig` tree:

* **batch localization** -- :meth:`ArrayTrackService.localize` /
  :meth:`ArrayTrackService.localize_many` are the validated front door of
  the batched synthesis engine (PR 1's
  :class:`~repro.core.batch.BatchLocalizer`);
* **streaming sessions** -- :meth:`ArrayTrackService.ingest` accumulates
  per-client frames into :class:`Session` objects and
  :meth:`ArrayTrackService.tick` drains every *ready* session (every-N-
  frames and/or max-age triggers) through one batched synthesis pass, so
  the streaming path inherits batched throughput and is bit-for-bit
  identical to localizing the same frames in one batch call.  With
  ``session.suppress_multipath`` enabled, a drain first groups each AP's
  pending frames by capture time and runs the Section 2.4 multipath
  suppression per group, feeding the suppressed primaries to the same
  synthesis; every fix lands in the built-in per-client tracker
  (:meth:`ArrayTrackService.track` / :meth:`ArrayTrackService.latest_fix`);
* **AP fleet wiring** -- :meth:`ArrayTrackService.build_ap` constructs
  :class:`~repro.ap.access_point.ArrayTrackAP`\\ s from the config tree's
  ``ap`` section (with the registry-resolved estimator applied), so the
  whole deployment is configured from one place.

The legacy entry points (``ArrayTrackServer.localize_spectra``,
``repro.quickstart.*``) remain as deprecated shims over this facade.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.ap.access_point import ArrayTrackAP
from repro.ap.buffer import BufferEntry
from repro.ap.latency import LatencyBreakdown, LatencyModel
from repro.api._procpool import (PoolStats, ProcessShardPool, live_segments,
                                 shm_leak_events)
from repro.api._resilience import (CircuitBreaker, ResilienceStats,
                                   backend_ladder)
from repro.api.config import ArrayTrackConfig, SessionConfig
from repro.api.registry import EstimatorSpec, get_estimator
from repro.core.localizer import LocationEstimate
from repro.core.pipeline import SpectrumConfig
from repro.core.spectrum import AoASpectrum
from repro.errors import (BackpressureError, ConfigurationError,
                          PoisonFrameError, TransientError)
from repro.geometry.vector import Point2D
from repro.server.backend import ArrayTrackServer
from repro.server.tracker import ClientTracker, TrackPoint
from repro.testing import faults

__all__ = ["Session", "ArrayTrackService"]


class Session:
    """One client's streaming state: pending frames and emitted fixes.

    Sessions are created lazily by :meth:`ArrayTrackService.ingest` /
    :meth:`ArrayTrackService.session`; callers never construct them
    directly.  A session accumulates AoA spectra per AP until one of its
    configured triggers fires, at which point the service drains it
    through the batched synthesis engine and records the fix.
    """

    def __init__(self, client_id: str, config: SessionConfig,
                 on_delta: Callable[[int], None] | None = None) -> None:
        self.client_id = client_id
        self.config = config
        #: Owning service's pending-frame accounting callback: called with
        #: +1 per buffered frame and -1 per dropped/drained frame, keeping
        #: the service-wide backpressure budget exact without rescanning
        #: every session on each ingest.
        self._on_delta = on_delta
        #: Pending ``(timestamp, spectrum)`` pairs per AP, in first-ingest
        #: AP order (this order is what makes a drained session
        #: bit-identical to the same frames passed to
        #: :meth:`ArrayTrackService.localize_many` directly).  The stored
        #: timestamp is the ingest-resolved one, which may legitimately
        #: differ from ``spectrum.timestamp_s``.
        self._pending: dict[str, list[tuple[float, AoASpectrum]]] = {}
        self._oldest_pending_s: float | None = None
        #: Timestamp of the most recently ingested frame (simulation time).
        self.last_ingest_s: float | None = None
        #: Every fix emitted for this client, as tracker points in
        #: *emission order* -- frozen snapshots of each fix as it was
        #: recorded.  The authoritative, timestamp-sorted and currently-
        #: smoothed history is :meth:`ArrayTrackService.track`; the two
        #: can differ once out-of-order fixes were inserted.
        self.fixes: list[TrackPoint] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def pending_frames(self) -> int:
        """Number of frames waiting to be folded into the next fix."""
        return sum(len(frames) for frames in self._pending.values())

    @property
    def pending_aps(self) -> list[str]:
        """APs that contributed at least one pending frame."""
        return [ap_id for ap_id, frames in self._pending.items() if frames]

    @property
    def oldest_pending_s(self) -> float | None:
        """Timestamp of the oldest pending frame (None when empty)."""
        return self._oldest_pending_s

    @property
    def last_fix(self) -> TrackPoint | None:
        """The most recently emitted fix, or None."""
        return self.fixes[-1] if self.fixes else None

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add(self, ap_id: str, spectrum: AoASpectrum,
            timestamp_s: float) -> None:
        """Append one frame's spectrum to the pending buffer."""
        self._pending.setdefault(ap_id, []).append((timestamp_s, spectrum))
        if self._on_delta is not None:
            self._on_delta(1)
        if self._oldest_pending_s is None or timestamp_s < self._oldest_pending_s:
            self._oldest_pending_s = timestamp_s
        if self.last_ingest_s is None or timestamp_s > self.last_ingest_s:
            self.last_ingest_s = timestamp_s
        while self.pending_frames > self.config.max_pending_frames:
            self.shed_oldest()

    def shed_oldest(self) -> bool:
        """Drop the oldest pending frame; True if one was dropped.

        Backs both the per-session ``max_pending_frames`` cap and the
        service-level ``resilience.max_total_pending_frames`` budget's
        ``shed-oldest`` policy.  "Oldest" means the smallest
        ingest-resolved timestamp across *all* pending frames -- frames
        may arrive out of timestamp order within one AP (network
        reordering), so every entry is inspected, not just the head of
        each AP's list.
        """
        oldest_ap: str | None = None
        oldest_index = -1
        oldest_ts = float("inf")
        for ap_id, frames in self._pending.items():
            for index, (timestamp, _) in enumerate(frames):
                if timestamp < oldest_ts:
                    oldest_ts = timestamp
                    oldest_ap = ap_id
                    oldest_index = index
        if oldest_ap is None:
            return False
        self._pending[oldest_ap].pop(oldest_index)
        if not self._pending[oldest_ap]:
            del self._pending[oldest_ap]
        if self._on_delta is not None:
            self._on_delta(-1)
        remaining = [timestamp for frames in self._pending.values()
                     for timestamp, _ in frames]
        self._oldest_pending_s = min(remaining) if remaining else None
        return True

    # ------------------------------------------------------------------
    # Triggers and draining
    # ------------------------------------------------------------------
    def ready(self, now_s: float | None = None) -> bool:
        """True when a configured trigger fires for the pending frames.

        ``now_s`` anchors the max-age trigger; when omitted, the latest
        ingested timestamp stands in (pure simulation-time semantics, no
        wall clock involved).
        """
        if self.pending_frames == 0:
            return False
        config = self.config
        if config.emit_every_frames \
                and self.pending_frames >= config.emit_every_frames:
            return True
        if config.max_age_s is not None and self._oldest_pending_s is not None:
            now = now_s if now_s is not None else self.last_ingest_s
            if now is not None and now - self._oldest_pending_s >= config.max_age_s:
                return True
        return False

    def pending_spectra(self) -> dict[str, list[AoASpectrum]]:
        """Return the pending per-AP spectra without removing them."""
        return {ap_id: [spectrum for _, spectrum in frames]
                for ap_id, frames in self._pending.items()}

    def pending_timestamped(self) -> dict[str, list[tuple[float, AoASpectrum]]]:
        """Return the pending per-AP ``(timestamp, spectrum)`` pairs.

        The timestamps are the ingest-resolved ones (which the multipath
        suppression stage groups on); the pairs are not removed.
        """
        return {ap_id: list(frames)
                for ap_id, frames in self._pending.items()}

    def pending_grid_shape(self, ap_id: str) -> tuple[int, ...] | None:
        """Angle-grid shape of this AP's pending frames (None when empty).

        The poison-frame gate compares arriving frames against this: all
        of one AP's frames in a drain are stacked into one matrix, so a
        mismatched grid would fail deep inside the synthesis pass instead
        of at the door.
        """
        frames = self._pending.get(ap_id)
        if not frames:
            return None
        return tuple(frames[0][1].angles_deg.shape)

    def drain(self) -> dict[str, list[AoASpectrum]]:
        """Remove and return the pending per-AP spectra."""
        batch = self.pending_spectra()
        dropped = self.pending_frames
        self._pending = {}
        self._oldest_pending_s = None
        if dropped and self._on_delta is not None:
            self._on_delta(-dropped)
        return batch


class ArrayTrackService:
    """The public facade over the whole ArrayTrack pipeline.

    Parameters
    ----------
    config:
        The service configuration tree; documented defaults when omitted.
    bounds:
        Convenience override for ``config.bounds`` (one of the two must
        be set).
    latency_model:
        Hardware latency model used to annotate fixes; a WARP-like
        default when omitted.

    Examples
    --------
    One-shot localization from collected spectra::

        from repro import ArrayTrackConfig, ArrayTrackService

        service = ArrayTrackService(ArrayTrackConfig(bounds=testbed.bounds))
        estimate = service.localize(spectra_by_ap, "client-17")

    Streaming fixes::

        for spectrum in incoming_frames:
            service.ingest(spectrum.ap_id, spectrum)
        fixes = service.tick()          # {client_id: LocationEstimate}
    """

    def __init__(self, config: ArrayTrackConfig | None = None, *,
                 bounds: Sequence[float] | None = None,
                 latency_model: LatencyModel | None = None) -> None:
        config = config if config is not None else ArrayTrackConfig()
        if bounds is not None:
            config = replace(config, bounds=tuple(bounds))
        if config.bounds is None:
            raise ConfigurationError(
                "ArrayTrackService needs a search area: set "
                "ArrayTrackConfig.bounds or pass bounds=(xmin, ymin, xmax, ymax)")
        spec = get_estimator(config.estimator)
        spectrum = spec.specialize(config.ap.spectrum)
        if spectrum != config.ap.spectrum:
            config = replace(config, ap=replace(config.ap, spectrum=spectrum))
        self.config = config
        self.estimator_spec: EstimatorSpec = spec
        self._server = ArrayTrackServer(config.bounds, config.server,
                                        latency_model)
        self.tracker: ClientTracker = config.tracker.build()
        #: The streaming suppression stage (SuppressorConfig *is* the
        #: suppressor dataclass, so the config section is used directly).
        self._suppressor = config.suppressor
        self._sessions: dict[str, Session] = {}
        self._aps: dict[str, ArrayTrackAP] = {}
        #: Lazily created worker pools of the ``parallel`` config section
        #: (thread backend / process backend respectively).
        self._executor: ThreadPoolExecutor | None = None
        self._procpool: ProcessShardPool | None = None
        self._closed = False
        #: The resilience layer: degradation ladder + breaker, service
        #: counters, and the exact count of frames pending across all
        #: sessions (kept incrementally via each session's delta callback).
        self._ladder = backend_ladder(config.parallel.backend)
        self._breaker = CircuitBreaker(
            self._ladder,
            threshold=config.resilience.breaker_threshold,
            recovery_s=config.resilience.breaker_recovery_s,
            enabled=config.resilience.breaker_enabled)
        self._resilience_stats = ResilienceStats()
        self._pending_total = 0
        if config.resilience.fault_plan is not None:
            faults.activate_json(config.resilience.fault_plan)

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  **kwargs: Any) -> "ArrayTrackService":
        """Build a service from a plain config mapping."""
        return cls(ArrayTrackConfig.from_dict(data), **kwargs)

    @classmethod
    def from_json(cls, text: str, **kwargs: Any) -> "ArrayTrackService":
        """Build a service from a JSON config document."""
        return cls(ArrayTrackConfig.from_json(text), **kwargs)

    @classmethod
    def from_file(cls, path: str, **kwargs: Any) -> "ArrayTrackService":
        """Build a service from a JSON config file."""
        return cls(ArrayTrackConfig.from_file(path), **kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """Search-area bounds in metres."""
        assert self.config.bounds is not None
        return self.config.bounds

    @property
    def spectrum_config(self) -> SpectrumConfig:
        """The effective per-frame spectrum config (estimator applied)."""
        return self.config.ap.spectrum

    @property
    def server(self) -> ArrayTrackServer:
        """The underlying central server (advanced use)."""
        return self._server

    # ------------------------------------------------------------------
    # AP fleet wiring
    # ------------------------------------------------------------------
    def build_ap(self, ap_id: str, position: Point2D,
                 orientation_deg: float = 0.0,
                 rng: np.random.Generator | None = None) -> ArrayTrackAP:
        """Construct (and register) one AP from the config tree's ``ap`` section.

        Each AP gets its own copy of the section (nested spectrum config
        included), so tweaking one AP's configuration afterwards never
        leaks into the service config or its siblings.
        """
        ap_config = replace(self.config.ap,
                            spectrum=replace(self.config.ap.spectrum))
        ap = ArrayTrackAP(ap_id, position, orientation_deg,
                          config=ap_config, rng=rng)
        self._aps[ap_id] = ap
        return ap

    def adopt_aps(self, aps: Iterable[ArrayTrackAP]) -> None:
        """Register externally constructed APs (e.g. a simulated deployment's)."""
        for ap in aps:
            self._aps[ap.ap_id] = ap

    @property
    def aps(self) -> dict[str, ArrayTrackAP]:
        """The registered AP fleet, by AP id (a copy)."""
        return dict(self._aps)

    # ------------------------------------------------------------------
    # Sharded parallel execution (the ``parallel`` config section)
    # ------------------------------------------------------------------
    def _shards(self, keys: Sequence[str]) -> list[list[str]] | None:
        """Split client keys into contiguous worker shards, or None.

        Returns None when the configured backend is ``none`` or the batch
        is too small to win from fanning out (fewer than two shards of
        ``min_clients_per_worker`` clients each).  Contiguous slicing keeps
        the merged result in the caller's original client order.
        """
        parallel = self.config.parallel
        if parallel.backend not in ("thread", "process"):
            return None
        num_shards = min(parallel.num_workers,
                         len(keys) // parallel.min_clients_per_worker)
        if num_shards < 2:
            return None
        bounds = np.linspace(0, len(keys), num_shards + 1).astype(int)
        return [list(keys[start:stop])
                for start, stop in zip(bounds[:-1], bounds[1:], strict=True)
                if stop > start]

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "this ArrayTrackService is closed (its worker pools are "
                "shut down); build a new service instead of reusing it")

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.parallel.num_workers,
                thread_name_prefix="arraytrack-worker")
        return self._executor

    def _process_pool(self) -> ProcessShardPool:
        if self._procpool is None:
            warm = [(ap.position.x, ap.position.y)
                    for ap in self._aps.values()]
            self._procpool = ProcessShardPool(self.config,
                                              warm_positions=warm)
        return self._procpool

    def _timed_pass(self, run: Callable[[], dict[str, LocationEstimate]]
                    ) -> dict[str, LocationEstimate]:
        """Run one parallel pass, recording its whole wall-clock duration.

        Each shard's own processing-time measurement only covers that
        shard, so after a parallel pass the duration of the *entire* fan
        out is recorded on the server instead.
        """
        measure = self.config.server.measure_processing_time
        start = time.perf_counter() if measure else None
        estimates = run()
        if start is not None:
            self._server.record_processing_time(time.perf_counter() - start)
        return estimates

    def _run_sharded(self, shards: list[list[str]],
                     synthesize: Callable[[list[str]],
                                          dict[str, LocationEstimate]]
                     ) -> dict[str, LocationEstimate]:
        """Run ``synthesize`` per shard on the thread pool, merge in order.

        The NumPy reductions inside each shard's Equation 8 fold release
        the GIL, so shards genuinely overlap.
        """
        def run() -> dict[str, LocationEstimate]:
            faults.thread_shard()
            futures = [self._pool().submit(synthesize, shard)
                       for shard in shards]
            estimates: dict[str, LocationEstimate] = {}
            for future in futures:
                estimates.update(future.result())
            return estimates

        return self._timed_pass(run)

    def _fanout(self, shards: list[list[str]],
                process_run: Callable[[], dict[str, LocationEstimate]],
                synthesize: Callable[[list[str]],
                                     dict[str, LocationEstimate]],
                serial_run: Callable[[], dict[str, LocationEstimate]]
                ) -> dict[str, LocationEstimate]:
        """Serve one sharded batch, walking the degradation ladder.

        The circuit breaker picks the entry rung (the configured backend
        while closed; a degraded rung while open; one rung back up on a
        half-open probe).  A rung that fails with a
        :class:`~repro.errors.TransientError` trips the breaker and the
        batch *immediately* falls to the next rung -- a batch that serial
        execution could serve is never failed.  Non-transient errors
        (deterministic data problems) propagate from whichever rung hit
        them: retrying or degrading those would re-fail identically.
        Every rung runs the identical suppression + synthesis stages, so
        the result is bit-for-bit the same wherever the batch lands.
        """
        entry = self._breaker.entry_index()
        for index in range(entry, len(self._ladder)):
            rung = self._ladder[index]
            try:
                if rung == "process":
                    estimates = self._timed_pass(process_run)
                elif rung == "thread":
                    estimates = self._run_sharded(shards, synthesize)
                else:
                    estimates = self._timed_pass(serial_run)
            except TransientError as exc:
                self._breaker.record_failure(index)
                if index + 1 >= len(self._ladder) \
                        or not self.config.resilience.breaker_enabled:
                    raise
                self._resilience_stats.record_fallback(
                    self._ladder[index + 1], exc)
                continue
            self._breaker.record_success(index)
            return estimates
        raise AssertionError("unreachable: the serial rung cannot "
                             "fail transiently")  # pragma: no cover

    def close(self) -> None:
        """Shut down the worker pools and mark the service closed.

        Idempotent.  After ``close()`` the localization entry points
        (:meth:`localize`, :meth:`localize_many`,
        :meth:`localize_buffered`, :meth:`tick`, :meth:`flush`) raise
        :class:`~repro.errors.ConfigurationError` instead of silently
        rebuilding the pools -- with the process backend a rebuilt pool
        would re-spawn workers, which is far too expensive to happen by
        accident.  Build a new service to continue.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._procpool is not None:
            self._procpool.close()
            self._procpool = None
        self._closed = True

    def __enter__(self) -> "ArrayTrackService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch localization
    # ------------------------------------------------------------------
    def localize(self, spectra_by_ap: Mapping[str, Sequence[AoASpectrum]],
                 client_id: str = "") -> LocationEstimate:
        """Localize one client from per-AP lists of AoA spectra."""
        self._ensure_open()
        return self._server._localize_spectra(spectra_by_ap, client_id)

    def localize_many(self,
                      spectra_by_client: Mapping[str, Mapping[str, Sequence[AoASpectrum]]]
                      ) -> dict[str, LocationEstimate]:
        """Localize many clients in one vectorized synthesis pass.

        With ``parallel.backend="thread"`` or ``"process"`` and a large
        enough batch, the clients are split into contiguous shards and
        each shard's suppression + synthesis runs on a worker thread or a
        worker process (spectra travel through shared memory); results are
        bit-for-bit identical to the serial path either way.
        """
        self._ensure_open()
        keys = list(spectra_by_client.keys())
        shards = self._shards(keys)
        if shards is None:
            return self._server.localize_batch(spectra_by_client)
        return self._fanout(
            shards,
            lambda: self._process_pool().localize_shards(
                shards, spectra_by_client),
            lambda shard: self._server.localize_batch(
                {client_id: spectra_by_client[client_id]
                 for client_id in shard}),
            lambda: self._server.localize_batch(spectra_by_client))

    def localize_buffered(self, client_ids: Sequence[str],
                          aps: Sequence[ArrayTrackAP] | None = None
                          ) -> dict[str, LocationEstimate]:
        """Batch-localize clients from frames buffered at the AP fleet.

        Uses the registered fleet when ``aps`` is omitted.  Shards across
        the worker pool exactly like :meth:`localize_many`.
        """
        self._ensure_open()
        fleet = list(aps) if aps is not None else list(self._aps.values())
        return self.localize_many(
            self._server.collect_buffered(fleet, list(client_ids)))

    # ------------------------------------------------------------------
    # Streaming sessions
    # ------------------------------------------------------------------
    def session(self, client_id: str) -> Session:
        """Return (creating if needed) the client's streaming session."""
        if not client_id:
            raise ConfigurationError("a session needs a non-empty client id")
        existing = self._sessions.get(client_id)
        if existing is None:
            existing = Session(client_id, self.config.session,
                               on_delta=self._note_pending_delta)
            self._sessions[client_id] = existing
        return existing

    def _note_pending_delta(self, delta: int) -> None:
        """Session callback keeping the service-wide pending count exact."""
        self._pending_total += delta

    @property
    def sessions(self) -> dict[str, Session]:
        """All live sessions, by client id (a copy)."""
        return dict(self._sessions)

    def ingest(self, ap: str | ArrayTrackAP | None,
               item: AoASpectrum | BufferEntry,
               client_id: str | None = None,
               timestamp_s: float | None = None) -> Session:
        """Accumulate one frame into the client's streaming session.

        Parameters
        ----------
        ap:
            The receiving AP: an AP id, a registered/constructed
            :class:`~repro.ap.access_point.ArrayTrackAP`, or None when the
            spectrum itself carries its ``ap_id``.
        item:
            Either a computed :class:`~repro.core.spectrum.AoASpectrum`,
            or a raw :class:`~repro.ap.buffer.BufferEntry` (a detected
            packet's snapshots), in which case the capturing AP computes
            the spectrum -- so callers can stream either processed spectra
            or raw detections.
        client_id:
            Client identity; defaults to the frame's own ``client_id``.
        timestamp_s:
            Frame time; defaults to the frame's own ``timestamp_s``.

        Returns
        -------
        Session
            The client's session (``session.ready()`` tells whether the
            next :meth:`tick` will emit a fix for it).
        """
        spectrum, ap_id = self._resolve_frame(ap, item)
        spectrum = faults.poison(spectrum)
        resolved_client = client_id if client_id else spectrum.client_id
        if not resolved_client:
            raise ConfigurationError(
                "cannot ingest a frame without a client id (pass client_id= "
                "or use spectra that carry one)")
        resolved_ts = timestamp_s if timestamp_s is not None \
            else spectrum.timestamp_s
        if self.config.resilience.reject_poison_frames:
            self._reject_if_poison(resolved_client, ap_id, spectrum, {})
        session = self.session(resolved_client)
        self._admit(session, ap_id, spectrum, resolved_ts)
        return session

    def ingest_many(self, ap: str | ArrayTrackAP | None,
                    items: Sequence[AoASpectrum | BufferEntry],
                    client_id: str | None = None,
                    timestamp_s: float | None = None) -> list[Session]:
        """Accumulate many frames of one AP in a single batched pass.

        The streaming counterpart of the batched Section 2.3 frontend:
        where :meth:`ingest` computes one spectrum per raw
        :class:`~repro.ap.buffer.BufferEntry`, this entry point stacks all
        of the batch's raw entries into one
        :meth:`~repro.ap.access_point.ArrayTrackAP.compute_spectra` call
        (already-computed :class:`~repro.core.spectrum.AoASpectrum` items
        pass straight through), then feeds every frame into its client's
        session exactly like repeated :meth:`ingest` calls would -- same
        sessions, same pending order, bit-for-bit identical fixes at the
        next :meth:`tick`.

        Parameters
        ----------
        ap:
            The receiving AP, as in :meth:`ingest`; raw buffer entries
            require a resolvable :class:`~repro.ap.access_point.ArrayTrackAP`.
        items:
            The frames, in arrival order: spectra and/or raw buffer entries.
        client_id, timestamp_s:
            Optional overrides applied to every frame, as in :meth:`ingest`.

        Returns
        -------
        list of Session
            The per-frame sessions, in input order (one client streaming a
            burst yields the same session object repeated).
        """
        items = list(items)
        entry_indices = [index for index, item in enumerate(items)
                         if isinstance(item, BufferEntry)]
        entries = [item for item in items if isinstance(item, BufferEntry)]
        spectra: list[AoASpectrum | BufferEntry] = list(items)
        if entries:
            ap_obj = self._resolve_ap(ap)
            if ap_obj is None:
                raise ConfigurationError(
                    "ingesting raw BufferEntries needs their capturing AP: "
                    "pass the ArrayTrackAP object, or register it first via "
                    "build_ap()/adopt_aps()")
            if self.config.resilience.reject_poison_frames:
                # Raw entries are screened BEFORE the stacked frontend
                # pass: one NaN snapshot matrix would otherwise blow up
                # the whole batch's eigendecomposition.
                for entry in entries:
                    self._reject_poison_entry(entry, ap_obj.ap_id)
            batch = ap_obj.compute_spectra(entries)
            for index, spectrum in zip(entry_indices, batch, strict=True):
                spectra[index] = spectrum
        resolved_frames: list[tuple[str, str, AoASpectrum, float]] = []
        for item_spectrum in spectra:
            resolved, ap_id = self._resolve_frame(ap, item_spectrum)
            resolved = faults.poison(resolved)
            resolved_client = client_id if client_id else resolved.client_id
            if not resolved_client:
                raise ConfigurationError(
                    "cannot ingest a frame without a client id (pass "
                    "client_id= or use spectra that carry one)")
            resolved_ts = timestamp_s if timestamp_s is not None \
                else resolved.timestamp_s
            resolved_frames.append(
                (resolved_client, ap_id, resolved, resolved_ts))
        if self.config.resilience.reject_poison_frames:
            # Validate the whole batch before touching any session, so one
            # poison frame rejects the call atomically -- no session ends
            # up holding half a burst.  Intra-batch grid consistency per
            # (client, AP) is enforced through the shared shape map.
            batch_shapes: dict[tuple[str, str], tuple[int, ...]] = {}
            for resolved_client, ap_id, resolved, _ts in resolved_frames:
                self._reject_if_poison(resolved_client, ap_id, resolved,
                                       batch_shapes)
        sessions: list[Session] = []
        for resolved_client, ap_id, resolved, resolved_ts in resolved_frames:
            session = self.session(resolved_client)
            self._admit(session, ap_id, resolved, resolved_ts)
            sessions.append(session)
        return sessions

    def _resolve_ap(self, ap: str | ArrayTrackAP | None
                    ) -> ArrayTrackAP | None:
        """Resolve an AP argument to a registered ArrayTrackAP, if possible."""
        if isinstance(ap, ArrayTrackAP):
            return ap
        if ap is not None:
            return self._aps.get(str(ap))
        return None

    def _resolve_frame(self, ap: str | ArrayTrackAP | None,
                       item: AoASpectrum | BufferEntry
                       ) -> tuple[AoASpectrum, str]:
        if isinstance(item, BufferEntry):
            ap_obj = self._resolve_ap(ap)
            if ap_obj is None:
                raise ConfigurationError(
                    "ingesting a raw BufferEntry needs its capturing AP: "
                    "pass the ArrayTrackAP object, or register it first via "
                    "build_ap()/adopt_aps()")
            if self.config.resilience.reject_poison_frames:
                self._reject_poison_entry(item, ap_obj.ap_id)
            return ap_obj.compute_spectrum(item), ap_obj.ap_id
        if isinstance(item, AoASpectrum):
            if isinstance(ap, ArrayTrackAP):
                ap_id = ap.ap_id
            elif ap is not None:
                ap_id = str(ap)
            else:
                ap_id = item.ap_id
            if not ap_id:
                raise ConfigurationError(
                    "cannot ingest a spectrum without an AP id (pass ap= or "
                    "use spectra that carry one)")
            return item, ap_id
        raise ConfigurationError(
            f"cannot ingest a {type(item).__name__}; expected an AoASpectrum "
            f"or a BufferEntry")

    # ------------------------------------------------------------------
    # Admission control (the ``resilience`` config section)
    # ------------------------------------------------------------------
    def _reject_poison_entry(self, entry: BufferEntry, ap_id: str) -> None:
        """Reject a raw buffer entry with non-finite snapshot samples."""
        if not np.all(np.isfinite(entry.snapshots.samples)):
            self._resilience_stats.poison_rejected += 1
            raise PoisonFrameError(
                f"rejecting raw frame from client {entry.client_id!r} at AP "
                f"{ap_id!r}: non-finite snapshot samples")

    def _reject_if_poison(self, client_id: str, ap_id: str,
                          spectrum: AoASpectrum,
                          batch_shapes: dict[tuple[str, str],
                                             tuple[int, ...]]) -> None:
        """Reject one frame that would poison a stacked pipeline pass.

        Two gates: non-finite values (NaN/inf power or angles -- legal by
        :class:`~repro.core.spectrum.AoASpectrum` construction, since its
        non-negativity check is False for NaN), and an angle-grid shape
        that contradicts the client's pending frames at the same AP or an
        earlier frame of the same batch (``batch_shapes`` accumulates
        per-``(client, ap)`` shapes across one ``ingest_many`` call).
        """
        reason: str | None = None
        if not np.all(np.isfinite(spectrum.power)):
            reason = "non-finite power values"
        elif not np.all(np.isfinite(spectrum.angles_deg)):
            reason = "non-finite angle-grid values"
        else:
            shape = tuple(spectrum.angles_deg.shape)
            key = (client_id, ap_id)
            expected = batch_shapes.get(key)
            if expected is None:
                session = self._sessions.get(client_id)
                expected = None if session is None \
                    else session.pending_grid_shape(ap_id)
            if expected is not None and shape != expected:
                reason = (f"angle-grid shape {shape} contradicts the "
                          f"client's other frames at this AP {expected}")
            else:
                batch_shapes[key] = shape
        if reason is not None:
            self._resilience_stats.poison_rejected += 1
            raise PoisonFrameError(
                f"rejecting frame from client {client_id!r} at AP "
                f"{ap_id!r}: {reason}")

    def _admit(self, session: Session, ap_id: str, spectrum: AoASpectrum,
               timestamp_s: float) -> None:
        """Buffer one validated frame, enforcing the service-wide budget."""
        budget = self.config.resilience.max_total_pending_frames
        if budget is not None and self._pending_total >= budget:
            if self.config.resilience.shed_policy == "reject":
                self._resilience_stats.backpressure_rejected += 1
                raise BackpressureError(
                    f"service pending-frame budget is full "
                    f"({self._pending_total}/{budget} frames); rejecting "
                    f"frame from client {session.client_id!r} "
                    f"(shed_policy='reject')")
            self._shed_for(session, budget)
        session.add(ap_id, spectrum, timestamp_s)

    def _shed_for(self, session: Session, budget: int) -> None:
        """Make room under the budget: ingesting client's own oldest
        pending frame goes first (per-client fairness), falling back to
        the session holding the globally oldest frame."""
        while self._pending_total >= budget:
            victim: Session | None = \
                session if session.pending_frames else None
            if victim is None:
                candidates = [other for other in self._sessions.values()
                              if other.pending_frames]
                if not candidates:
                    break
                victim = min(
                    candidates,
                    key=lambda other: other.oldest_pending_s
                    if other.oldest_pending_s is not None else float("inf"))
            if not victim.shed_oldest():
                break
            self._resilience_stats.shed_frames += 1

    def health(self) -> dict[str, Any]:
        """A JSON-safe snapshot of the service's resilience state.

        Schema (see ``docs/robustness.md``): ``closed`` (bool);
        ``backend`` (``configured`` backend and the ladder rung batches
        currently enter at); ``breaker`` (the
        :meth:`~repro.api._resilience.CircuitBreaker.snapshot` dict);
        ``pool`` (``started`` plus the supervision counters and the
        module-wide shm accounting); ``ingest`` (pending frames vs budget
        and the shed/reject counters); ``fallbacks`` (batches served per
        degraded rung and the last transient error); ``sessions`` (live
        session count).
        """
        stats = self._resilience_stats
        pool = self._procpool
        pool_health: dict[str, Any] = {
            "started": pool.started if pool is not None else False}
        pool_health.update(pool.stats.snapshot() if pool is not None
                           else PoolStats().snapshot())
        return {
            "closed": self._closed,
            "backend": {
                "configured": self.config.parallel.backend,
                "active": self._ladder[self._breaker.entry_index()],
            },
            "breaker": self._breaker.snapshot(),
            "pool": {
                **pool_health,
                "shm_leak_events": shm_leak_events(),
                "live_segments": sorted(live_segments()),
            },
            "ingest": {
                "pending_frames": self._pending_total,
                "pending_budget":
                    self.config.resilience.max_total_pending_frames,
                "shed_frames": stats.shed_frames,
                "backpressure_rejected": stats.backpressure_rejected,
                "poison_rejected": stats.poison_rejected,
            },
            "fallbacks": {
                "served_by": dict(stats.fallbacks),
                "last_error": stats.last_fallback_error,
            },
            "sessions": len(self._sessions),
        }

    def tick(self, now_s: float | None = None
             ) -> dict[str, LocationEstimate]:
        """Drain every ready session through one batched synthesis pass.

        Returns one fix per ready client (empty dict when no trigger has
        fired).  With the suppression stage off (the
        ``session.suppress_multipath`` default), fixes are bit-for-bit
        identical to passing the same pending frames to
        :meth:`localize_many` in one batch; with it on, each AP's frames
        are first grouped by capture time and suppressed per group.
        """
        self._ensure_open()
        ready = {client_id: session
                 for client_id, session in self._sessions.items()
                 if session.ready(now_s)}
        return self._emit(ready, now_s)

    def flush(self) -> dict[str, LocationEstimate]:
        """Drain every session with pending frames, triggers or not."""
        self._ensure_open()
        pending = {client_id: session
                   for client_id, session in self._sessions.items()
                   if session.pending_frames}
        return self._emit(pending, None)

    def _emit(self, sessions: Mapping[str, Session],
              now_s: float | None) -> dict[str, LocationEstimate]:
        if not sessions:
            return {}
        # Peek first, drain only after a successful synthesis: a failing
        # batch (e.g. a spectrum without its AP position) must not destroy
        # every drained client's pending frames.  On such an error the
        # exception propagates with all sessions intact; the caller can
        # discard a poisoned session explicitly via session.drain().
        if self.config.session.suppress_multipath:
            # detect -> buffer -> spectrum -> multipath suppression ->
            # synthesis (the paper's full pipeline): each AP's pending
            # frames are grouped by capture time and every group's
            # suppressed primary enters the one-pass synthesis.  The raw
            # batch entry is skipped so the server's batch-path suppressor
            # cannot run a second time over the already-suppressed output.
            def synthesize(shard: list[str]) -> dict[str, LocationEstimate]:
                batch = {client_id: self._suppress_pending(sessions[client_id])
                         for client_id in shard}
                return self._server.synthesize_batch(batch)
        else:
            def synthesize(shard: list[str]) -> dict[str, LocationEstimate]:
                batch = {client_id: sessions[client_id].pending_spectra()
                         for client_id in shard}
                return self._server.localize_batch(batch)

        keys = list(sessions.keys())
        shards = self._shards(keys)
        if shards is None:
            estimates = synthesize(keys)
        else:
            # Every rung of the ladder runs the identical suppression +
            # synthesis stages over the ready sessions: the process rung
            # ships each session's pending (timestamp, spectrum) pairs to
            # the worker processes through shared memory, the thread rung
            # fans the synthesize closure out on the thread pool, serial
            # runs it inline.  Sessions are only read here, and the
            # tracker commit below stays on the calling thread.
            estimates = self._fanout(
                shards,
                lambda: self._process_pool().tick_shards(
                    shards,
                    {client_id: sessions[client_id].pending_timestamped()
                     for client_id in keys},
                    self.config.session.suppress_multipath),
                synthesize,
                lambda: synthesize(keys))
        timestamps: dict[str, float] = {}
        for client_id in estimates:
            session = sessions[client_id]
            timestamps[client_id] = now_s if now_s is not None else \
                (session.last_ingest_s if session.last_ingest_s is not None
                 else 0.0)
            # Validate every client against the tracker's out-of-order
            # policy BEFORE committing anything: a rejected fix must leave
            # all sessions (frames, fix logs) and the tracker untouched.
            self.tracker.ensure_accepts(client_id, timestamps[client_id])
        fixes: dict[str, LocationEstimate] = {}
        for client_id, estimate in estimates.items():
            session = sessions[client_id]
            point = self.tracker.update(client_id, estimate,
                                        timestamps[client_id])
            session.drain()
            session.fixes.append(point)
            fixes[client_id] = estimate
        return fixes

    def _suppress_pending(self, session: Session) -> list[AoASpectrum]:
        """Run the streaming multipath-suppression stage on one session.

        Each AP's pending frames are grouped on their ingest-resolved
        timestamps (gap-anchored, see
        :func:`~repro.core.suppression.group_spectra_by_time`) and the
        Figure 8 algorithm reduces every group to its suppressed primary,
        so a session spanning several capture bursts contributes one
        cleaned spectrum per AP and burst to the synthesis.
        """
        processed: list[AoASpectrum] = []
        for frames in session.pending_timestamped().values():
            spectra = [spectrum for _, spectrum in frames]
            timestamps = [timestamp for timestamp, _ in frames]
            processed.extend(
                self._suppressor.process(spectra, timestamps=timestamps))
        return processed

    # ------------------------------------------------------------------
    # Client tracks
    # ------------------------------------------------------------------
    def track(self, client_id: str) -> list[TrackPoint]:
        """Return the client's emitted fixes as track points (oldest first).

        The points carry both the raw and the EMA-smoothed positions, per
        the ``tracker`` config section.
        """
        return self.tracker.track(client_id)

    def latest_fix(self, client_id: str) -> TrackPoint | None:
        """Return the most recently emitted fix for the client, or None."""
        return self.tracker.latest(client_id)

    # ------------------------------------------------------------------
    # Latency accounting passthrough (Section 4.4)
    # ------------------------------------------------------------------
    @property
    def last_processing_s(self) -> float | None:
        """Wall-clock duration of the most recent synthesis, if measured."""
        return self._server.last_processing_s

    def latency_breakdown(self, payload_bytes: int = 1500,
                          bitrate_mbps: float = 54.0,
                          use_measured_processing: bool = False
                          ) -> LatencyBreakdown:
        """Return the end-to-end latency breakdown of a fix."""
        return self._server.latency_breakdown(payload_bytes, bitrate_mbps,
                                              use_measured_processing)
