"""Public service facade of the ArrayTrack reproduction.

This package is the documented entry point for applications:

* :class:`ArrayTrackConfig` -- one typed, validated, serializable
  configuration tree composing the per-layer config dataclasses;
* :class:`ArrayTrackService` -- batch localization, streaming per-client
  :class:`Session` objects, and AP-fleet wiring behind one object;
* the estimator registry -- :func:`get_estimator` /
  :func:`register_estimator` / :func:`available_estimators` /
  :func:`create_baseline` -- selecting algorithms (``music``,
  ``bartlett``, ``capon``, ``rssi``, or custom registrations) by name.

See ``docs/api.md`` for the full guide.
"""

from repro.api.config import (
    ArrayTrackConfig,
    ParallelConfig,
    ResilienceConfig,
    SessionConfig,
    default_server_config,
)
from repro.core.suppression import SuppressorConfig
from repro.server.tracker import TrackerConfig
from repro.api.registry import (
    AOA,
    RSS,
    EstimatorSpec,
    available_estimators,
    create_baseline,
    get_estimator,
    register_estimator,
)
from repro.api.service import ArrayTrackService, Session

__all__ = [
    "AOA",
    "RSS",
    "ArrayTrackConfig",
    "ArrayTrackService",
    "EstimatorSpec",
    "ParallelConfig",
    "ResilienceConfig",
    "Session",
    "SessionConfig",
    "SuppressorConfig",
    "TrackerConfig",
    "available_estimators",
    "create_baseline",
    "default_server_config",
    "get_estimator",
    "register_estimator",
]
