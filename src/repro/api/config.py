"""The single service-level configuration tree of the ArrayTrack facade.

Before this layer existed every entry point hand-wired three or four config
dataclasses (``ServerConfig`` + ``LocalizerConfig`` + ``SpectrumConfig`` +
the suppressor), and end-to-end callers copied the same magic values around
(most famously ``spectrum_floor=0.05``).  :class:`ArrayTrackConfig` composes
the existing per-layer dataclasses into one typed, validated tree that

* round-trips through plain dictionaries and JSON
  (:meth:`ArrayTrackConfig.to_dict` / :meth:`ArrayTrackConfig.from_dict` /
  :meth:`ArrayTrackConfig.to_json` / :meth:`ArrayTrackConfig.from_json` /
  :meth:`ArrayTrackConfig.from_file`), rejecting unknown keys and invalid
  values with :class:`~repro.errors.ConfigurationError`\\ s that name the
  offending path;
* supports dotted-path overrides (:meth:`ArrayTrackConfig.updated`) and
  environment-variable overrides (:meth:`ArrayTrackConfig.with_env_overrides`,
  ``ARRAYTRACK_SERVER__LOCALIZER__GRID_RESOLUTION_M=0.1`` style);
* records the historical end-to-end defaults once: the service-level
  localizer uses :data:`repro.constants.DEFAULT_SPECTRUM_FLOOR` (0.05)
  instead of every example repeating the literal.

The tree deliberately reuses the layer dataclasses rather than mirroring
their fields, so a knob added to, say, :class:`~repro.core.pipeline.
SpectrumConfig` is immediately configurable (and serializable) through the
facade with no glue code.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields
from collections.abc import Callable, Mapping
from typing import Any

from repro.ap.access_point import APConfig
from repro.constants import DEFAULT_SPECTRUM_FLOOR
from repro.core.localizer import LocalizerConfig
from repro.core.pipeline import SpectrumConfig
from repro.core.suppression import SuppressorConfig
from repro.errors import ArrayTrackError, ConfigurationError
from repro.server.backend import ServerConfig
from repro.server.tracker import TrackerConfig

__all__ = ["ParallelConfig", "ResilienceConfig", "SessionConfig",
           "ArrayTrackConfig", "default_server_config"]


def default_server_config() -> ServerConfig:
    """The server section defaults used by the facade.

    Identical to ``ServerConfig()`` except that the localizer applies the
    documented end-to-end :data:`~repro.constants.DEFAULT_SPECTRUM_FLOOR`
    (0.05) instead of the paper-faithful Equation 8 default (0.02).
    """
    return ServerConfig(
        localizer=LocalizerConfig(spectrum_floor=DEFAULT_SPECTRUM_FLOOR))


@dataclass
class SessionConfig:
    """Configuration of the streaming per-client sessions.

    Attributes
    ----------
    emit_every_frames:
        Emit a fix for a client once this many frames are pending across
        all APs (0 disables the frame-count trigger).
    max_age_s:
        Emit a fix once the oldest pending frame of a client is at least
        this old, relative to ``tick(now_s)`` or, when ``now_s`` is
        omitted, to the latest ingested timestamp (None disables the
        age trigger).
    max_pending_frames:
        Hard cap on pending frames per client; the oldest pending frame is
        dropped once the cap is exceeded (a lost fix beats unbounded
        memory, exactly like the APs' circular buffers).
    suppress_multipath:
        Run the Section 2.4 multipath suppression as a streaming stage when
        a session drains: the pending frames of each AP are grouped by
        capture time (on the ingest-resolved timestamps) and each group's
        suppressed primary -- instead of the raw spectra -- feeds the
        synthesis.  Off by default: the disabled path is bit-for-bit
        identical to draining the raw spectra through
        :meth:`~repro.api.ArrayTrackService.localize_many`.  The stage is
        parameterized by the service tree's top-level ``suppressor``
        section; the tracker knobs live in the ``tracker`` section.
    """

    emit_every_frames: int = 3
    max_age_s: float | None = None
    max_pending_frames: int = 64
    suppress_multipath: bool = False

    def __post_init__(self) -> None:
        if self.emit_every_frames < 0:
            raise ConfigurationError("emit_every_frames must be >= 0")
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ConfigurationError("max_age_s must be non-negative or None")
        if self.max_pending_frames < 1:
            raise ConfigurationError("max_pending_frames must be >= 1")
        if not isinstance(self.suppress_multipath, bool):
            raise ConfigurationError(
                f"suppress_multipath must be a boolean, "
                f"got {self.suppress_multipath!r}")


@dataclass
class ParallelConfig:
    """Configuration of the service's sharded parallel execution.

    When enabled, :meth:`~repro.api.ArrayTrackService.localize_many`,
    :meth:`~repro.api.ArrayTrackService.localize_buffered` and
    :meth:`~repro.api.ArrayTrackService.tick` split their client batch into
    contiguous shards and run each shard's synthesis on a worker.  With the
    ``"thread"`` backend the hot Equation 8 folds overlap in their
    GIL-releasing NumPy regions; the ``"process"`` backend goes further and
    runs each shard in a spawned worker process with its own interpreter
    (frame arrays travel through shared memory, so only shard metadata and
    the returned fixes are pickled).  Every shard drains through the
    unchanged suppression/synthesis pipeline and the per-shard batches are
    themselves bit-for-bit identical to single-client fixes, so sharded
    results equal the serial path exactly -- whichever backend runs them;
    only the tracker commit stays on the calling thread.

    Attributes
    ----------
    backend:
        ``"none"`` (the default) runs everything on the calling thread;
        ``"thread"`` shards batches across a worker-thread pool;
        ``"process"`` shards them across a persistent pool of spawned
        worker processes (requires the config tree to be picklable, which
        every built-in section is; see ``docs/api.md``).
    num_workers:
        Maximum number of workers (and shards) per batched call.
    min_clients_per_worker:
        Do not split below this many clients per shard: tiny shards pay
        more in handoff than they win in parallelism, so a batch only fans
        out once it is at least ``2 * min_clients_per_worker`` clients.
    """

    backend: str = "none"
    num_workers: int = 4
    min_clients_per_worker: int = 8

    def __post_init__(self) -> None:
        if self.backend not in ("none", "thread", "process"):
            raise ConfigurationError(
                f"parallel backend must be 'none', 'thread' or 'process', "
                f"got {self.backend!r}")
        self._require_positive_int("num_workers", self.num_workers)
        self._require_positive_int("min_clients_per_worker",
                                   self.min_clients_per_worker)

    @staticmethod
    def _require_positive_int(name: str, value: Any) -> None:
        # bool is an int subclass; ARRAYTRACK_PARALLEL__NUM_WORKERS=true
        # would otherwise silently become num_workers=1 (never fans out).
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ConfigurationError(
                f"{name} must be a positive integer, got {value!r}")


@dataclass
class ResilienceConfig:
    """Configuration of the service's fault-tolerance layer.

    Three concerns live here (see ``docs/robustness.md`` for the failure-
    mode catalogue): **pool supervision** (retry crashed/stalled process
    shards with exponential backoff and rebuild the pool), **graceful
    degradation** (a circuit breaker that falls down the backend ladder
    process -> thread -> serial after repeated failures and half-open-
    probes its way back), and **admission control** (a service-wide
    pending-frame budget with a shed policy, plus poison-frame rejection
    at ingest).  Every knob round-trips through dict/JSON/env exactly like
    the rest of :class:`ArrayTrackConfig`.

    Attributes
    ----------
    supervise_pool:
        Retry process-pool shards that die (``BrokenProcessPool``) or miss
        the per-shard deadline, rebuilding the spawn pool between attempts.
        Off restores the raw PR-6 semantics: the first pool failure
        propagates to the caller.
    max_retries:
        Retry rounds per batched call after the initial attempt; once
        exhausted the call raises
        :class:`~repro.errors.PoolSupervisionError` (which the breaker may
        then absorb by degrading).
    backoff_base_s:
        First retry delay; round ``n`` sleeps ``backoff_base_s * 2**(n-1)``
        before resubmitting the failed shards.
    backoff_max_s:
        Upper bound on any single backoff sleep.
    backoff_jitter:
        Jitter fraction: each sleep is scaled by a factor drawn uniformly
        from ``[1 - jitter, 1 + jitter]`` (decorrelates retry storms).
    retry_seed:
        Seed of the jitter RNG, so retry schedules are reproducible.
    shard_timeout_s:
        Per-shard deadline per attempt (None disables): a shard still
        running after this long is treated like a crashed one -- the pool
        is torn down (workers terminated) and the shard retried.  Only
        honored while ``supervise_pool`` is on.
    breaker_enabled:
        Enable the degradation ladder.  When a rung fails with a
        :class:`~repro.errors.TransientError`, the batch immediately falls
        to the next rung (a batch serial could serve never fails), and
        after ``breaker_threshold`` consecutive failures the rung is
        skipped entirely until a half-open probe succeeds.  Off means
        transient failures propagate to the caller.
    breaker_threshold:
        Consecutive transient failures of one rung before the breaker
        opens and the service enters that rung's degraded mode.
    breaker_recovery_s:
        Time an open breaker waits before half-open-probing the faster
        rung again (measured on the service's monotonic clock).
    max_total_pending_frames:
        Service-wide budget on pending frames summed across all sessions
        (None = unbounded).  Admission control on top of the per-session
        ``session.max_pending_frames`` cap.
    shed_policy:
        What happens to an arriving frame once the budget is full:
        ``"shed-oldest"`` drops the ingesting client's oldest pending
        frame (falling back to the globally oldest when that client has
        none), ``"reject"`` raises
        :class:`~repro.errors.BackpressureError`.
    reject_poison_frames:
        Reject frames carrying NaN/inf values or a grid shape that
        contradicts the client's pending frames at the same AP with
        :class:`~repro.errors.PoisonFrameError`, before they can poison a
        stacked frontend or synthesis pass.
    fault_plan:
        Optional JSON fault-injection plan (see
        :mod:`repro.testing.faults`) activated when the service is built;
        testing/benchmarking only.
    """

    supervise_pool: bool = True
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.25
    retry_seed: int = 0
    shard_timeout_s: float | None = None
    breaker_enabled: bool = True
    breaker_threshold: int = 3
    breaker_recovery_s: float = 30.0
    max_total_pending_frames: int | None = None
    shed_policy: str = "shed-oldest"
    reject_poison_frames: bool = True
    fault_plan: str | None = None

    def __post_init__(self) -> None:
        for name in ("supervise_pool", "breaker_enabled",
                     "reject_poison_frames"):
            if not isinstance(getattr(self, name), bool):
                raise ConfigurationError(
                    f"{name} must be a boolean, got {getattr(self, name)!r}")
        if isinstance(self.max_retries, bool) \
                or not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be a non-negative integer, "
                f"got {self.max_retries!r}")
        for name in ("backoff_base_s", "backoff_max_s", "backoff_jitter",
                     "breaker_recovery_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                raise ConfigurationError(
                    f"{name} must be a non-negative number, got {value!r}")
        if isinstance(self.retry_seed, bool) \
                or not isinstance(self.retry_seed, int):
            raise ConfigurationError(
                f"retry_seed must be an integer, got {self.retry_seed!r}")
        if self.shard_timeout_s is not None and (
                not isinstance(self.shard_timeout_s, (int, float))
                or isinstance(self.shard_timeout_s, bool)
                or self.shard_timeout_s <= 0):
            raise ConfigurationError(
                f"shard_timeout_s must be a positive number or None, "
                f"got {self.shard_timeout_s!r}")
        if isinstance(self.breaker_threshold, bool) \
                or not isinstance(self.breaker_threshold, int) \
                or self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be a positive integer, "
                f"got {self.breaker_threshold!r}")
        if self.max_total_pending_frames is not None and (
                isinstance(self.max_total_pending_frames, bool)
                or not isinstance(self.max_total_pending_frames, int)
                or self.max_total_pending_frames < 1):
            raise ConfigurationError(
                f"max_total_pending_frames must be a positive integer or "
                f"None, got {self.max_total_pending_frames!r}")
        if self.shed_policy not in ("shed-oldest", "reject"):
            raise ConfigurationError(
                f"shed_policy must be 'shed-oldest' or 'reject', "
                f"got {self.shed_policy!r}")
        if self.fault_plan is not None \
                and not isinstance(self.fault_plan, str):
            raise ConfigurationError(
                f"fault_plan must be a JSON string or None, "
                f"got {self.fault_plan!r}")


# ----------------------------------------------------------------------
# Generic section <-> dict machinery
# ----------------------------------------------------------------------
#: Which fields of each section are themselves nested config dataclasses.
_NESTED_FIELDS: dict[type, dict[str, type]] = {
    ServerConfig: {"localizer": LocalizerConfig, "suppressor": SuppressorConfig},
    APConfig: {"spectrum": SpectrumConfig},
}

#: Defaults applied when a nested key is absent from a partial dict.  The
#: one entry keeps partial trees consistent with the facade's documented
#: defaults: a ``{"server": {}}`` section still gets the 0.05 floor rather
#: than silently falling back to the bare ``ServerConfig()`` default.
_SECTION_DEFAULTS: dict[type, dict[str, Callable[[], Any]]] = {
    ServerConfig: {
        "localizer": lambda: LocalizerConfig(
            spectrum_floor=DEFAULT_SPECTRUM_FLOOR),
    },
}

#: Field defaults merged into a *partial* nested mapping before parsing,
#: keyed by ``(parent section, nested key)``.  This keeps hand-written
#: partial trees like ``{"server": {"localizer": {"grid_resolution_m":
#: 0.2}}}`` on the facade's documented 0.05 floor instead of silently
#: reverting to the bare ``LocalizerConfig`` default; an explicit value in
#: the mapping always wins.
_NESTED_FIELD_DEFAULTS: dict[tuple[type, str], dict[str, Any]] = {
    (ServerConfig, "localizer"): {"spectrum_floor": DEFAULT_SPECTRUM_FLOOR},
}


def _section_to_dict(section: Any) -> dict[str, Any]:
    """Serialize one config dataclass (recursing into nested sections)."""
    nested = _NESTED_FIELDS.get(type(section), {})
    out: dict[str, Any] = {}
    for spec in fields(section):
        value = getattr(section, spec.name)
        out[spec.name] = _section_to_dict(value) if spec.name in nested else value
    return out


def _section_from_dict(cls: type, data: Mapping[str, Any], path: str) -> Any:
    """Build one config dataclass from a mapping, strictly validated."""
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{path} must be a mapping, got {type(data).__name__}")
    valid = {spec.name for spec in fields(cls)}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} under {path}; "
            f"valid keys: {sorted(valid)}")
    nested = _NESTED_FIELDS.get(cls, {})
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        if key in nested:
            if isinstance(value, nested[key]):
                kwargs[key] = value
            elif isinstance(value, Mapping):
                defaults = _NESTED_FIELD_DEFAULTS.get((cls, key))
                if defaults:
                    value = {**defaults, **dict(value)}
                kwargs[key] = _section_from_dict(nested[key], value,
                                                 f"{path}.{key}")
            else:
                raise ConfigurationError(
                    f"{path}.{key} must be a mapping or a "
                    f"{nested[key].__name__}, got {type(value).__name__}")
        else:
            kwargs[key] = value
    for key, factory in _SECTION_DEFAULTS.get(cls, {}).items():
        if key not in kwargs:
            kwargs[key] = factory()
    try:
        return cls(**kwargs)
    except ArrayTrackError as exc:
        raise ConfigurationError(f"invalid value under {path}: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"invalid value under {path}: {exc}") from exc


def _assign_path(data: dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted-path key inside a nested plain-dict tree, strictly."""
    segments = path.split(".")
    cursor: Any = data
    for index, segment in enumerate(segments[:-1]):
        if not isinstance(cursor, dict) or segment not in cursor:
            prefix = ".".join(segments[:index + 1])
            raise ConfigurationError(
                f"unknown configuration path {path!r} (no section {prefix!r})")
        cursor = cursor[segment]
    leaf = segments[-1]
    if not isinstance(cursor, dict) or leaf not in cursor:
        raise ConfigurationError(
            f"unknown configuration path {path!r} (no key {leaf!r})")
    cursor[leaf] = value


@dataclass
class ArrayTrackConfig:
    """One validated configuration tree for the whole ArrayTrack service.

    Attributes
    ----------
    bounds:
        ``(xmin, ymin, xmax, ymax)`` search area in metres (typically the
        floorplan bounding box).  Must be set -- either here or via the
        ``bounds=`` argument of :class:`~repro.api.ArrayTrackService` --
        before a service can be built.
    estimator:
        Registry key of the AoA spectrum estimator (``"music"``,
        ``"bartlett"``, ``"capon"``, or anything added through
        :func:`repro.api.register_estimator`).
    ap:
        Per-AP configuration (:class:`~repro.ap.access_point.APConfig`),
        including the per-frame spectrum pipeline section.  APs built via
        :meth:`repro.api.ArrayTrackService.build_ap` use it.
    server:
        Central-server configuration
        (:class:`~repro.server.backend.ServerConfig`), including the
        localizer and the *batch-path* multipath-suppressor sections.  The
        facade default applies
        :data:`~repro.constants.DEFAULT_SPECTRUM_FLOOR`.
    session:
        Streaming-session configuration (:class:`SessionConfig`),
        including the ``suppress_multipath`` stage toggle.
    suppressor:
        Parameters of the *streaming* multipath-suppression stage
        (:class:`~repro.core.suppression.SuppressorConfig`): peak-match
        tolerance, grouping window/span and group size.  Only consulted
        when ``session.suppress_multipath`` is enabled; the batch path
        keeps its own ``server.suppressor`` section.
    tracker:
        Per-client fix tracker configuration
        (:class:`~repro.server.tracker.TrackerConfig`): EMA smoothing,
        history cap and the out-of-order fix policy.
    parallel:
        Sharded parallel execution (:class:`ParallelConfig`): worker
        backend, pool size and the minimum shard size.  Off by default;
        when enabled, batched calls are bit-for-bit identical to the
        serial path.
    resilience:
        Fault tolerance (:class:`ResilienceConfig`): pool supervision
        (retry/backoff/deadline), the circuit-breaker degradation ladder,
        the service-wide pending-frame budget with its shed policy, and
        poison-frame rejection.  See ``docs/robustness.md``.
    """

    bounds: tuple[float, float, float, float] | None = None
    estimator: str = "music"
    ap: APConfig = field(default_factory=APConfig)
    server: ServerConfig = field(default_factory=default_server_config)
    session: SessionConfig = field(default_factory=SessionConfig)
    suppressor: SuppressorConfig = field(default_factory=SuppressorConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        if self.bounds is not None:
            try:
                bounds = tuple(float(value) for value in self.bounds)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"bounds must be four numbers, got {self.bounds!r}") from exc
            if len(bounds) != 4:
                raise ConfigurationError(
                    f"bounds must be (xmin, ymin, xmax, ymax), got {bounds!r}")
            xmin, ymin, xmax, ymax = bounds
            if xmax <= xmin or ymax <= ymin:
                raise ConfigurationError(f"degenerate bounds {bounds!r}")
            self.bounds = bounds
        if not isinstance(self.estimator, str) or not self.estimator:
            raise ConfigurationError(
                f"estimator must be a non-empty registry key, "
                f"got {self.estimator!r}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def __reduce__(self) -> tuple[Any, ...]:
        """Pickle as the plain-dict tree and rebuild via :meth:`from_dict`.

        The process-backend worker initializer ships the config across the
        spawn pipe, so pickling must be cheap and robust: the dict
        round-trip reuses the one serialization path that already exists,
        keeps the payload free of class internals, and re-runs every
        validator on the receiving side.
        """
        return (_config_from_state, (self.to_dict(),))

    def to_dict(self) -> dict[str, Any]:
        """Return the full tree as plain dicts/lists/scalars (JSON-safe)."""
        return {
            "bounds": list(self.bounds) if self.bounds is not None else None,
            "estimator": self.estimator,
            "ap": _section_to_dict(self.ap),
            "server": _section_to_dict(self.server),
            "session": _section_to_dict(self.session),
            "suppressor": _section_to_dict(self.suppressor),
            "tracker": _section_to_dict(self.tracker),
            "parallel": _section_to_dict(self.parallel),
            "resilience": _section_to_dict(self.resilience),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrayTrackConfig":
        """Build a config tree from a (possibly partial) mapping.

        Unknown keys anywhere in the tree and invalid values raise
        :class:`~repro.errors.ConfigurationError` naming the offending
        path; missing keys take the documented defaults.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"config must be a mapping, got {type(data).__name__}")
        valid = {"bounds", "estimator", "ap", "server", "session",
                 "suppressor", "tracker", "parallel", "resilience"}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} under config; "
                f"valid keys: {sorted(valid)}")
        kwargs: dict[str, Any] = {}
        sections = {"ap": APConfig, "server": ServerConfig,
                    "session": SessionConfig,
                    "suppressor": SuppressorConfig, "tracker": TrackerConfig,
                    "parallel": ParallelConfig,
                    "resilience": ResilienceConfig}
        for key, value in data.items():
            if key in sections and not isinstance(value, sections[key]):
                kwargs[key] = _section_from_dict(sections[key], value,
                                                 f"config.{key}")
            else:
                kwargs[key] = value
        try:
            return cls(**kwargs)
        except ArrayTrackError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid config value: {exc}") from exc

    def to_json(self, indent: int | None = 2) -> str:
        """Return the tree serialized as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ArrayTrackConfig":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid config JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_file(self, path: str) -> None:
        """Write the tree to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def from_file(cls, path: str) -> "ArrayTrackConfig":
        """Load a config tree from a JSON file."""
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read config file {path!r}: {exc}") from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # Overrides
    # ------------------------------------------------------------------
    def updated(self, overrides: Mapping[str, Any]) -> "ArrayTrackConfig":
        """Return a copy with dotted-path overrides applied.

        Example::

            config.updated({"server.localizer.grid_resolution_m": 0.10,
                            "session.emit_every_frames": 1})

        Unknown paths raise :class:`~repro.errors.ConfigurationError`;
        values are re-validated by the normal construction path.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            _assign_path(data, path, value)
        return type(self).from_dict(data)

    def with_env_overrides(self, environ: Mapping[str, str] | None = None,
                           prefix: str = "ARRAYTRACK_") -> "ArrayTrackConfig":
        """Return a copy with ``PREFIX_SECTION__KEY=value`` overrides applied.

        Double underscores separate tree levels and names are lowercased,
        so ``ARRAYTRACK_SERVER__LOCALIZER__GRID_RESOLUTION_M=0.1`` sets
        ``server.localizer.grid_resolution_m``.  Values are parsed as JSON
        when possible (numbers, booleans, ``null``, lists) and kept as
        strings otherwise.  ``os.environ`` is used when ``environ`` is
        omitted.

        Only variables whose first segment names a config section
        (``bounds``, ``estimator``, ``ap``, ``server``, ``session``,
        ``suppressor``, ``tracker``, ``parallel``, ``resilience``) are
        consumed; other ``ARRAYTRACK_*`` variables (``ARRAYTRACK_HOME``,
        ``ARRAYTRACK_LOG_LEVEL``, ...) are ignored so unrelated deployment
        environment does not crash service startup.  *Within* a recognized
        section, unknown keys still raise
        :class:`~repro.errors.ConfigurationError` (typo protection).
        """
        environ = os.environ if environ is None else environ
        sections = {spec.name for spec in fields(self)}
        overrides: dict[str, Any] = {}
        for key, raw in environ.items():
            if not key.startswith(prefix):
                continue
            path = key[len(prefix):].lower().replace("__", ".")
            if path.split(".", 1)[0] not in sections:
                continue
            try:
                value: Any = json.loads(raw)
            except json.JSONDecodeError:
                value = raw
            overrides[path] = value
        if not overrides:
            return self
        return self.updated(overrides)


def _config_from_state(data: dict[str, Any]) -> ArrayTrackConfig:
    """Unpickle hook of :meth:`ArrayTrackConfig.__reduce__`."""
    return ArrayTrackConfig.from_dict(data)
