"""String-keyed estimator/baseline registry of the ArrayTrack facade.

Ablations and benchmarks want to select localization algorithms *by name*
("run this sweep with ``bartlett``") without reaching into pipeline
internals.  The registry maps names to small :class:`EstimatorSpec`
records of two kinds:

* ``"aoa"`` -- spectra-driven estimators that specialize the per-frame
  :class:`~repro.core.pipeline.SpectrumConfig` of the ArrayTrack pipeline
  (the built-in ``music`` / ``bartlett`` / ``capon``, plus anything a
  caller registers with a custom ``configure`` hook);
* ``"rss"`` -- RSSI baselines built directly from AP positions (the
  built-in ``rssi`` weighted-centroid baseline of the Section 5
  comparison).

:class:`~repro.api.ArrayTrackService` resolves its configured estimator
name through :func:`get_estimator` at construction; selecting
``estimator="bartlett"`` therefore produces *exactly* the
``SpectrumConfig(method="bartlett")`` the ablation benchmarks always used,
so named selection reproduces their results by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable, Mapping
from typing import Any

from repro.baselines.rssi import WeightedCentroidLocalizer
from repro.core.pipeline import SpectrumConfig
from repro.errors import ConfigurationError
from repro.geometry.vector import Point2D

__all__ = [
    "AOA",
    "RSS",
    "EstimatorSpec",
    "available_estimators",
    "create_baseline",
    "get_estimator",
    "register_estimator",
]

#: Kind tag of spectra-driven (ArrayTrack pipeline) estimators.
AOA = "aoa"
#: Kind tag of RSSI-driven baseline localizers.
RSS = "rss"


@dataclass(frozen=True)
class EstimatorSpec:
    """One named estimator recipe.

    Attributes
    ----------
    name:
        Registry key.
    kind:
        :data:`AOA` for spectra-driven estimators, :data:`RSS` for RSSI
        baselines.
    description:
        One-line human description (shown in error messages and docs).
    spectrum_method:
        For simple AoA entries: the :class:`~repro.core.pipeline.
        SpectrumConfig` ``method`` this estimator selects.
    configure:
        For custom AoA entries: a hook mapping the caller's base
        ``SpectrumConfig`` to the specialized one (overrides
        ``spectrum_method`` when both are given).
    build_baseline:
        For RSS entries: a factory called with the AP-position mapping
        (plus any keyword arguments) returning the baseline localizer.
    """

    name: str
    kind: str
    description: str = ""
    spectrum_method: str | None = None
    configure: Callable[[SpectrumConfig], SpectrumConfig] | None = None
    build_baseline: Callable[..., object] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an estimator spec needs a name")
        if self.kind not in (AOA, RSS):
            raise ConfigurationError(
                f"estimator kind must be {AOA!r} or {RSS!r}, got {self.kind!r}")
        if self.kind == AOA and self.spectrum_method is None \
                and self.configure is None:
            raise ConfigurationError(
                f"aoa estimator {self.name!r} needs spectrum_method or configure")
        if self.kind == RSS and self.build_baseline is None:
            raise ConfigurationError(
                f"rss estimator {self.name!r} needs build_baseline")

    def specialize(self, spectrum: SpectrumConfig) -> SpectrumConfig:
        """Return the spectrum configuration this estimator implies.

        Raises
        ------
        ConfigurationError
            If this spec is not spectra-driven (RSS baselines cannot run
            the AoA pipeline).
        """
        if self.kind != AOA:
            raise ConfigurationError(
                f"estimator {self.name!r} is an RSS baseline, not a "
                f"spectra-driven estimator; build it with "
                f"create_baseline({self.name!r}, ap_positions)")
        if self.configure is not None:
            return self.configure(spectrum)
        return replace(spectrum, method=self.spectrum_method)


_REGISTRY: dict[str, EstimatorSpec] = {}


def register_estimator(spec: EstimatorSpec, *,
                       replace_existing: bool = False) -> EstimatorSpec:
    """Add ``spec`` to the registry (the extension point for ablations).

    Raises
    ------
    ConfigurationError
        If the name is already registered and ``replace_existing`` is
        False.
    """
    if spec.name in _REGISTRY and not replace_existing:
        raise ConfigurationError(
            f"estimator {spec.name!r} is already registered; pass "
            f"replace_existing=True to override it")
    _REGISTRY[spec.name] = spec
    return spec


def get_estimator(name: str) -> EstimatorSpec:
    """Look up a registered estimator by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown estimator {name!r}; registered: "
            f"{', '.join(available_estimators())}") from None


def available_estimators() -> tuple[str, ...]:
    """Return the sorted names of all registered estimators."""
    return tuple(sorted(_REGISTRY))


def create_baseline(name: str, ap_positions: Mapping[str, Point2D],
                    **kwargs: Any) -> object:
    """Instantiate a registered RSS baseline from the AP-position map."""
    spec = get_estimator(name)
    if spec.kind != RSS:
        raise ConfigurationError(
            f"estimator {name!r} is spectra-driven; select it via "
            f"ArrayTrackConfig(estimator={name!r}) instead")
    assert spec.build_baseline is not None
    return spec.build_baseline(ap_positions, **kwargs)


# ----------------------------------------------------------------------
# Built-in estimators
# ----------------------------------------------------------------------
for _method, _description in (
        ("music", "MUSIC pseudospectrum (the paper's estimator, Section 2.3.1)"),
        ("bartlett", "Bartlett (conventional) beamformer ablation"),
        ("capon", "Capon (MVDR) beamformer ablation"),
):
    register_estimator(EstimatorSpec(name=_method, kind=AOA,
                                     description=_description,
                                     spectrum_method=_method))

register_estimator(EstimatorSpec(
    name="rssi", kind=RSS,
    description="RSSI-weighted centroid baseline (Section 5 comparison)",
    build_baseline=WeightedCentroidLocalizer))
