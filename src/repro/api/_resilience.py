"""Circuit breaker and counters behind the service's degradation ladder.

The process backend is the fastest rung of a ladder, not a single point of
failure: when its pool keeps breaking even *with* supervision (rebuild +
retry in :mod:`repro.api._procpool`), the service steps down to the thread
backend, and from there to plain serial execution -- which cannot fail for
infrastructure reasons at all.  The :class:`CircuitBreaker` here decides
which rung a batch enters at and when to probe a faster rung again
(half-open), so a persistent failure costs each batch at most one doomed
attempt per recovery window instead of a full retry storm.

Everything is deliberately deterministic and clock-injectable: tests drive
the breaker through open -> half-open -> closed with a fake monotonic
clock, no sleeping involved.

Thread-safety: like the rest of :class:`~repro.api.ArrayTrackService`, a
breaker is driven from one caller thread at a time; it holds no locks.
"""

from __future__ import annotations

import time
from collections.abc import Callable


__all__ = ["CircuitBreaker", "ResilienceStats", "backend_ladder"]


def backend_ladder(backend: str) -> tuple[str, ...]:
    """The degradation ladder for a configured backend, fastest first.

    The configured backend is the entry rung; every later rung is strictly
    simpler infrastructure.  ``serial`` is always the last rung, which is
    what makes "never fail a batch serial could have served" enforceable.
    """
    if backend == "process":
        return ("process", "thread", "serial")
    if backend == "thread":
        return ("thread", "serial")
    return ("serial",)


class CircuitBreaker:
    """Tracks per-rung failures and picks the entry rung for each batch.

    States (reported by :attr:`state`):

    ``closed``
        No degradation: batches enter at the configured backend (rung 0).
    ``open``
        A rung has failed ``threshold`` consecutive times; batches enter
        at the degraded rung until ``recovery_s`` of (monotonic) time has
        passed.
    ``half-open``
        The recovery window has elapsed: the next batch probes one rung
        *up* from the degraded level.  A successful probe re-closes the
        breaker up to that rung; a failed probe re-opens the window.

    Failures only count when they are transient (the callers gate on
    :class:`~repro.errors.TransientError`); a deterministic data error
    says nothing about the infrastructure and must not trip the breaker.
    """

    def __init__(self, ladder: tuple[str, ...], *, threshold: int,
                 recovery_s: float, enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not ladder:
            raise ValueError("a circuit breaker needs a non-empty ladder")
        self.ladder = ladder
        self.threshold = threshold
        self.recovery_s = recovery_s
        self.enabled = enabled
        self._clock = clock
        #: Current degraded floor: batches enter here (0 = configured rung).
        self._level = 0
        #: Consecutive transient failures per rung since its last success.
        self._failures = [0] * len(ladder)
        #: Monotonic time the current degradation window opened (None when
        #: closed).
        self._opened_at: float | None = None

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def entry_index(self) -> int:
        """The ladder index the next batch should enter at."""
        if not self.enabled or self._level == 0:
            return 0
        if self._opened_at is not None \
                and self._clock() - self._opened_at >= self.recovery_s:
            # Half-open: probe one rung up from the degraded floor.
            return self._level - 1
        return self._level

    def record_failure(self, index: int) -> None:
        """Record one transient failure of the rung at ``index``."""
        if not self.enabled:
            return
        if index < self._level:
            # A half-open probe failed: re-open the window, stay degraded.
            self._opened_at = self._clock()
            return
        self._failures[index] += 1
        if self._failures[index] >= self.threshold \
                and index + 1 < len(self.ladder):
            self._level = index + 1
            self._opened_at = self._clock()
            self._failures[index] = 0

    def record_success(self, index: int) -> None:
        """Record one successful batch served by the rung at ``index``."""
        if not self.enabled:
            return
        self._failures[index] = 0
        if index < self._level:
            # A half-open probe succeeded: close back up to that rung.
            self._level = index
            self._opened_at = self._clock() if index > 0 else None
        elif index == 0:
            self._level = 0
            self._opened_at = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half-open``."""
        if self._level == 0:
            return "closed"
        if self._opened_at is not None \
                and self._clock() - self._opened_at >= self.recovery_s:
            return "half-open"
        return "open"

    @property
    def level(self) -> int:
        """The current degraded floor (0 = not degraded)."""
        return self._level

    def snapshot(self) -> dict[str, object]:
        """JSON-safe state for :meth:`~repro.api.ArrayTrackService.health`."""
        return {
            "enabled": self.enabled,
            "state": self.state,
            "ladder": list(self.ladder),
            "level": self._level,
            "entry_backend": self.ladder[self.entry_index()],
            "failures": list(self._failures),
            "threshold": self.threshold,
            "recovery_s": self.recovery_s,
        }


class ResilienceStats:
    """Service-level ingest/fallback counters surfaced by ``health()``."""

    def __init__(self) -> None:
        #: Frames dropped by the service-level pending budget
        #: (``shed_policy = "shed-oldest"``).
        self.shed_frames = 0
        #: Ingest calls rejected by the budget (``shed_policy = "reject"``).
        self.backpressure_rejected = 0
        #: Frames rejected as poison (NaN/inf values, mismatched grids).
        self.poison_rejected = 0
        #: Batches served by a lower rung than they entered at, keyed by
        #: the rung that served them (e.g. ``{"thread": 2, "serial": 1}``).
        self.fallbacks: dict[str, int] = {}
        #: Message of the transient error behind the most recent fallback.
        self.last_fallback_error: str | None = None

    def record_fallback(self, backend: str, error: BaseException) -> None:
        """Count one batch falling through to ``backend``."""
        self.fallbacks[backend] = self.fallbacks.get(backend, 0) + 1
        self.last_fallback_error = f"{type(error).__name__}: {error}"

    def snapshot(self) -> dict[str, object]:
        """JSON-safe counter state for ``health()``."""
        return {
            "shed_frames": self.shed_frames,
            "backpressure_rejected": self.backpressure_rejected,
            "poison_rejected": self.poison_rejected,
            "fallbacks": dict(self.fallbacks),
            "last_fallback_error": self.last_fallback_error,
        }
