"""Multipath channel representation: complex path components with AoA.

The AoA pipeline only cares about how the superposition of propagation paths
appears at the AP's antenna array: each path contributes a complex amplitude
(magnitude from path loss / reflection / penetration, phase from its length)
arriving from a particular azimuth bearing (and, optionally, elevation).
A :class:`MultipathChannel` is simply the collection of those components for
one client-AP link at one instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ChannelError

__all__ = ["ChannelComponent", "MultipathChannel"]


@dataclass(frozen=True)
class ChannelComponent:
    """A single arriving multipath component at the AP.

    Attributes
    ----------
    amplitude:
        Complex amplitude of the component (includes all losses and the
        propagation phase ``exp(-j 2 pi L / lambda)``).
    azimuth_deg:
        Global bearing the component arrives from, in degrees
        counter-clockwise from +x, as seen at the AP.
    elevation_deg:
        Elevation of the arriving component above the horizontal plane of
        the array; non-zero when the client is at a different height from
        the AP (Appendix A of the paper).
    is_direct:
        True when the component belongs to the (possibly obstructed)
        direct path.
    delay_s:
        Absolute propagation delay of the component.
    path_length_m:
        Geometric path length, retained for diagnostics.
    """

    amplitude: complex
    azimuth_deg: float
    elevation_deg: float = 0.0
    is_direct: bool = False
    delay_s: float = 0.0
    path_length_m: float = 0.0

    @property
    def power(self) -> float:
        """Power carried by this component (``|amplitude|^2``)."""
        return float(abs(self.amplitude) ** 2)


@dataclass
class MultipathChannel:
    """All multipath components of a single client-AP link.

    Attributes
    ----------
    components:
        Arriving components; the direct-path component, when present, is by
        convention first but nothing relies on the ordering.
    client_id:
        Identifier of the transmitting client (used in reports).
    ap_id:
        Identifier of the receiving AP.
    """

    components: list[ChannelComponent] = field(default_factory=list)
    client_id: str = ""
    ap_id: str = ""

    def __post_init__(self) -> None:
        self.components = list(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self) -> Iterator[ChannelComponent]:
        return iter(self.components)

    def add(self, component: ChannelComponent) -> None:
        """Append a component to the channel."""
        self.components.append(component)

    @property
    def total_power(self) -> float:
        """Sum of the component powers (ignores mutual phasing)."""
        return float(sum(c.power for c in self.components))

    @property
    def direct_component(self) -> ChannelComponent | None:
        """Return the strongest direct-path component, or None if absent."""
        direct = [c for c in self.components if c.is_direct]
        if not direct:
            return None
        return max(direct, key=lambda c: c.power)

    @property
    def direct_bearing_deg(self) -> float | None:
        """Azimuth of the direct path, or None when the direct path is absent."""
        component = self.direct_component
        return None if component is None else component.azimuth_deg

    @property
    def strongest_component(self) -> ChannelComponent:
        """Return the component carrying the most power."""
        if not self.components:
            raise ChannelError("channel has no components")
        return max(self.components, key=lambda c: c.power)

    def direct_path_is_dominant(self) -> bool:
        """Return True when the direct path carries the most power.

        Indoors this is frequently false (Section 2.3 of the paper): the
        whole point of the multipath suppression machinery is to cope with
        reflected paths that are stronger than the direct path.
        """
        direct = self.direct_component
        if direct is None:
            return False
        return direct.power >= self.strongest_component.power - 1e-15

    def received_power_db(self, reference: float = 1.0) -> float:
        """Return total received power relative to ``reference``, in dB."""
        power = self.total_power
        if power <= 0:
            raise ChannelError("channel carries no power")
        return 10.0 * math.log10(power / reference)

    def rssi_dbm(self, transmit_power_dbm: float) -> float:
        """Return the RSSI a commodity NIC would report, in whole dBm.

        The paper contrasts ArrayTrack with RSS-based systems that only see
        a coarsely quantized power value; this helper provides that value
        for the baselines (quantized to 1 dB like commodity hardware).
        """
        power = self.total_power
        if power <= 0:
            return -100.0
        rssi = transmit_power_dbm + 10.0 * math.log10(power)
        return float(round(rssi))

    def bearings(self) -> np.ndarray:
        """Return the component azimuths as a numpy array (degrees)."""
        return np.array([float(c.azimuth_deg) for c in self.components])

    def amplitudes(self) -> np.ndarray:
        """Return the complex component amplitudes as a numpy array."""
        # dtype-pinned: complex128 -- amplitudes are Python scalars; an empty channel must still yield a complex array
        return np.array([c.amplitude for c in self.components], dtype=np.complex128)

    def scaled(self, factor: complex) -> "MultipathChannel":
        """Return a copy with every component amplitude scaled by ``factor``."""
        scaled_components = [
            ChannelComponent(
                amplitude=c.amplitude * factor,
                azimuth_deg=c.azimuth_deg,
                elevation_deg=c.elevation_deg,
                is_direct=c.is_direct,
                delay_s=c.delay_s,
                path_length_m=c.path_length_m,
            )
            for c in self.components
        ]
        return MultipathChannel(scaled_components, self.client_id, self.ap_id)

    def without_direct_path(self) -> "MultipathChannel":
        """Return a copy with the direct-path components removed.

        Useful for constructing the paper's "S2" NLOS scenario (Section 6)
        in which the direct path is totally blocked.
        """
        remaining = [c for c in self.components if not c.is_direct]
        return MultipathChannel(remaining, self.client_id, self.ap_id)

    @staticmethod
    def from_bearings(bearings_deg: Sequence[float],
                      amplitudes: Sequence[complex],
                      direct_index: int | None = 0,
                      client_id: str = "",
                      ap_id: str = "") -> "MultipathChannel":
        """Build a channel directly from bearing/amplitude lists.

        This constructor is the workhorse of the unit tests and
        microbenchmarks: it lets an experiment specify "two paths at 40 and
        120 degrees with these relative powers" without running the ray
        tracer.
        """
        if len(bearings_deg) != len(amplitudes):
            raise ChannelError(
                "bearings and amplitudes must have the same length, got "
                f"{len(bearings_deg)} and {len(amplitudes)}")
        components = [
            ChannelComponent(
                amplitude=complex(amplitude),
                azimuth_deg=float(bearing),
                is_direct=(direct_index is not None and index == direct_index),
            )
            for index, (bearing, amplitude) in enumerate(zip(bearings_deg, amplitudes, strict=True))
        ]
        return MultipathChannel(components, client_id, ap_id)
