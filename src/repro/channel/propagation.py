"""Large-scale propagation: free-space and log-distance path loss models.

The channel builder uses Friis free-space spreading per path (reflection and
penetration losses are accounted separately by the ray tracer), while the
RSSI baselines (:mod:`repro.baselines`) use the classic log-distance model
with shadowing, which is what RADAR/Horus-style systems assume.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import WAVELENGTH_M
from repro.errors import ChannelError

__all__ = [
    "free_space_path_loss_db",
    "free_space_amplitude",
    "log_distance_path_loss_db",
    "received_power_dbm",
    "dbm_to_watts",
    "watts_to_dbm",
]


def free_space_path_loss_db(distance_m: float,
                            wavelength_m: float = WAVELENGTH_M) -> float:
    """Return the Friis free-space path loss in dB over ``distance_m``.

    ``FSPL = 20 log10(4 pi d / lambda)``.  Distances below 10 cm are clamped
    to 10 cm to avoid the (unphysical) near-field singularity.
    """
    if distance_m <= 0:
        raise ChannelError(f"distance must be positive, got {distance_m!r}")
    if wavelength_m <= 0:
        raise ChannelError(f"wavelength must be positive, got {wavelength_m!r}")
    distance_m = max(distance_m, 0.1)
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength_m)


def free_space_amplitude(distance_m: float,
                         wavelength_m: float = WAVELENGTH_M) -> float:
    """Return the amplitude scale factor of free-space spreading.

    This is ``lambda / (4 pi d)``: the square root of the Friis power ratio.
    """
    loss_db = free_space_path_loss_db(distance_m, wavelength_m)
    return 10.0 ** (-loss_db / 20.0)


def log_distance_path_loss_db(distance_m: float,
                              reference_distance_m: float = 1.0,
                              path_loss_exponent: float = 3.0,
                              reference_loss_db: float | None = None,
                              shadowing_sigma_db: float = 0.0,
                              rng: np.random.Generator | None = None,
                              wavelength_m: float = WAVELENGTH_M) -> float:
    """Return log-distance path loss with optional log-normal shadowing.

    ``PL(d) = PL(d0) + 10 n log10(d / d0) + X_sigma``

    Parameters
    ----------
    distance_m:
        Transmitter-receiver separation.
    reference_distance_m:
        Reference distance ``d0`` (1 m indoors by convention).
    path_loss_exponent:
        Environment exponent ``n``; ~3 for a cluttered office.
    reference_loss_db:
        Path loss at the reference distance; free-space loss at ``d0`` when
        omitted.
    shadowing_sigma_db:
        Standard deviation of the log-normal shadowing term (0 disables it).
    rng:
        Random generator for the shadowing draw.
    """
    if distance_m <= 0:
        raise ChannelError(f"distance must be positive, got {distance_m!r}")
    if reference_distance_m <= 0:
        raise ChannelError(
            f"reference distance must be positive, got {reference_distance_m!r}")
    if path_loss_exponent <= 0:
        raise ChannelError(
            f"path loss exponent must be positive, got {path_loss_exponent!r}")
    distance_m = max(distance_m, reference_distance_m)
    if reference_loss_db is None:
        reference_loss_db = free_space_path_loss_db(reference_distance_m, wavelength_m)
    loss = reference_loss_db + 10.0 * path_loss_exponent * math.log10(
        distance_m / reference_distance_m)
    if shadowing_sigma_db > 0:
        rng = rng if rng is not None else np.random.default_rng()
        loss += float(rng.normal(scale=shadowing_sigma_db))
    return loss


def received_power_dbm(transmit_power_dbm: float, path_loss_db: float) -> float:
    """Return received power in dBm given transmit power and path loss."""
    return transmit_power_dbm - path_loss_db


def dbm_to_watts(power_dbm: float) -> float:
    """Convert a power level from dBm to watts."""
    return 10.0 ** ((power_dbm - 30.0) / 10.0)


def watts_to_dbm(power_w: float) -> float:
    """Convert a power level from watts to dBm."""
    if power_w <= 0:
        raise ChannelError(f"power must be positive, got {power_w!r}")
    return 10.0 * math.log10(power_w) + 30.0
