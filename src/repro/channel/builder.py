"""Channel builder: turn geometric ray traces into complex multipath channels.

This module is the bridge between the floorplan/ray-tracing substrate and the
sample-level receiver model.  For a given client position and AP position it
produces a :class:`~repro.channel.paths.MultipathChannel` whose components
carry complex amplitudes (free-space spreading x reflection loss x
penetration loss x polarization mismatch, with the propagation phase
``exp(-j 2 pi L / lambda)``) and arrival bearings.

Two physical effects matter for reproducing the paper's behaviour and are
modelled explicitly:

* **Diffuse scattering around specular reflections.**  Real walls are rough
  at 12 cm wavelength scale, so a "reflected path" is really a small cluster
  of sub-paths scattered from points near the specular point.  The cluster's
  members have slightly different arrival angles and path lengths, so a few
  centimetres of client movement re-phases the cluster and the corresponding
  AoA peak moves or fades -- which is precisely the peak-stability behaviour
  Table 1 measures and the multipath suppression algorithm (Section 2.4)
  exploits.  The direct path is a single stable component, so its peak stays
  put.  Scatterer positions and reflectivities are derived deterministically
  from the *environment* (wall identity), not from the client position, so
  they behave like real fixed clutter.

* **AP/client height difference.**  When the client sits ``height_offset_m``
  below the AP's array plane, every path acquires an elevation angle; the
  antenna-to-antenna phase differences shrink by the cosine of that
  elevation, which is the small bearing bias Appendix A quantifies.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_LIGHT, WAVELENGTH_M
from repro.errors import ChannelError
from repro.channel.paths import ChannelComponent, MultipathChannel
from repro.channel.polarization import polarization_amplitude
from repro.channel.propagation import free_space_amplitude
from repro.geometry.floorplan import Floorplan
from repro.geometry.rays import PropagationPath, RayTracer
from repro.geometry.vector import Point2D, bearing_deg

__all__ = ["ChannelBuilder", "ChannelModelConfig"]


@dataclass
class ChannelModelConfig:
    """Tunable parameters of the multipath channel model.

    Attributes
    ----------
    wavelength_m:
        RF wavelength (2.4 GHz WiFi by default).
    max_reflections:
        Specular reflection order enumerated by the ray tracer.
    scatterers_per_reflection:
        Number of diffuse sub-paths generated around each specular
        reflection point (0 disables diffuse scattering).
    scatter_spread_m:
        Radius of the clutter disc around the specular reflection point
        within which scatterers are placed.  A spread of a metre or two
        models the furniture/cubicle clutter of a busy office: the wide
        angular extent (as seen from the client) is what makes reflection
        peaks fade and shift under centimetre-scale client movement, the
        behaviour Table 1 measures.
    scatter_relative_amplitude:
        Rayleigh scale of each scatterer's reflectivity relative to the
        specular component.
    specular_fraction:
        Amplitude multiplier applied to the purely specular component of a
        reflection.  Office walls are rough and cluttered at 12 cm
        wavelength, so most reflected energy is diffuse; values well below
        1 make the reflection clusters (and hence the reflection peaks)
        unstable under small movements, as observed in the paper.
    height_offset_m:
        Vertical distance between the AP array plane and the client antenna.
    polarization_mismatch_deg:
        Polarization misalignment between client and AP antennas.
    direct_excess_loss_db:
        Extra loss applied to the direct path only; used by NLOS-heavy
        scenarios to emulate clutter (cubicles, furniture) not present in
        the wall list.
    """

    wavelength_m: float = WAVELENGTH_M
    max_reflections: int = 2
    scatterers_per_reflection: int = 5
    scatter_spread_m: float = 2.5
    scatter_relative_amplitude: float = 0.5
    specular_fraction: float = 0.35
    height_offset_m: float = 0.0
    polarization_mismatch_deg: float = 0.0
    direct_excess_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.wavelength_m <= 0:
            raise ChannelError("wavelength must be positive")
        if self.scatterers_per_reflection < 0:
            raise ChannelError("scatterers_per_reflection must be >= 0")
        if self.scatter_spread_m < 0:
            raise ChannelError("scatter_spread_m must be >= 0")


class ChannelBuilder:
    """Builds :class:`MultipathChannel` objects for client-AP links.

    Parameters
    ----------
    floorplan:
        Static environment to trace rays through.
    config:
        Channel model parameters (a default configuration if omitted).
    """

    def __init__(self, floorplan: Floorplan,
                 config: ChannelModelConfig | None = None) -> None:
        self.floorplan = floorplan
        self.config = config if config is not None else ChannelModelConfig()
        self._tracer = RayTracer(floorplan,
                                 max_reflections=self.config.max_reflections)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(self, client_position: Point2D, ap_position: Point2D,
              client_id: str = "", ap_id: str = "") -> MultipathChannel:
        """Return the multipath channel from ``client_position`` to ``ap_position``."""
        paths = self._tracer.trace(client_position, ap_position)
        if not paths:
            raise ChannelError(
                f"no propagation paths between {client_position} and {ap_position}")
        channel = MultipathChannel(client_id=client_id, ap_id=ap_id)
        polarization = polarization_amplitude(self.config.polarization_mismatch_deg)
        for path in paths:
            if path.is_direct:
                component = self._direct_component(path, polarization)
                channel.add(component)
            else:
                for component in self._reflection_components(
                        path, client_position, ap_position, polarization):
                    channel.add(component)
        return channel

    # ------------------------------------------------------------------
    # Direct path
    # ------------------------------------------------------------------
    def _direct_component(self, path: PropagationPath,
                          polarization: float) -> ChannelComponent:
        length, elevation_deg = self._with_height(path.length)
        amplitude = (free_space_amplitude(length, self.config.wavelength_m)
                     * path.attenuation_amplitude
                     * polarization
                     * 10.0 ** (-self.config.direct_excess_loss_db / 20.0))
        phase = -2.0 * math.pi * length / self.config.wavelength_m
        return ChannelComponent(
            amplitude=amplitude * np.exp(1j * phase),
            azimuth_deg=path.arrival_bearing_deg,
            elevation_deg=elevation_deg,
            is_direct=True,
            delay_s=length / SPEED_OF_LIGHT,
            path_length_m=length,
        )

    # ------------------------------------------------------------------
    # Reflected paths (specular component plus diffuse cluster)
    # ------------------------------------------------------------------
    def _reflection_components(self, path: PropagationPath,
                               client_position: Point2D,
                               ap_position: Point2D,
                               polarization: float) -> list[ChannelComponent]:
        components = [self._specular_component(path, polarization)]
        if self.config.scatterers_per_reflection > 0:
            components.extend(self._diffuse_components(
                path, client_position, ap_position, polarization))
        return components

    def _specular_component(self, path: PropagationPath,
                            polarization: float) -> ChannelComponent:
        length, elevation_deg = self._with_height(path.length)
        amplitude = (free_space_amplitude(length, self.config.wavelength_m)
                     * path.attenuation_amplitude * polarization
                     * self.config.specular_fraction)
        phase = -2.0 * math.pi * length / self.config.wavelength_m
        return ChannelComponent(
            amplitude=amplitude * np.exp(1j * phase),
            azimuth_deg=path.arrival_bearing_deg,
            elevation_deg=elevation_deg,
            is_direct=False,
            delay_s=length / SPEED_OF_LIGHT,
            path_length_m=length,
        )

    def _diffuse_components(self, path: PropagationPath,
                            client_position: Point2D,
                            ap_position: Point2D,
                            polarization: float) -> list[ChannelComponent]:
        """Generate the diffuse scatterer cluster around a specular reflection."""
        reflection_vertex = path.vertices[-2]
        to_reflection = reflection_vertex - ap_position
        if to_reflection.norm() < 1e-9:
            return []
        rng = self._scatter_rng(path)
        components: list[ChannelComponent] = []
        for _ in range(self.config.scatterers_per_reflection):
            # Clutter scatterers sit in a disc around the specular point:
            # cabinets, cubicle walls and monitors near the reflecting wall.
            radius = self.config.scatter_spread_m * math.sqrt(float(rng.uniform(0.0, 1.0)))
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            scatterer = reflection_vertex + Point2D(radius * math.cos(angle),
                                                    radius * math.sin(angle))
            if scatterer.distance_to(ap_position) < 0.5:
                # Keep clutter out of the AP's immediate near field.
                scatterer = reflection_vertex
            length = (client_position.distance_to(scatterer)
                      + scatterer.distance_to(ap_position))
            length, elevation_deg = self._with_height(length)
            # Random reflectivity of the scattering patch; the magnitude is a
            # fraction of the specular component's, Rayleigh-distributed.
            reflectivity = (float(rng.rayleigh(self.config.scatter_relative_amplitude))
                            / math.sqrt(self.config.scatterers_per_reflection))
            amplitude = (free_space_amplitude(length, self.config.wavelength_m)
                         * path.attenuation_amplitude * reflectivity * polarization)
            phase = -2.0 * math.pi * length / self.config.wavelength_m
            phase += float(rng.uniform(0.0, 2.0 * math.pi))  # patch reflectivity phase
            components.append(ChannelComponent(
                amplitude=amplitude * np.exp(1j * phase),
                azimuth_deg=bearing_deg(ap_position, scatterer),
                elevation_deg=elevation_deg,
                is_direct=False,
                delay_s=length / SPEED_OF_LIGHT,
                path_length_m=length,
            ))
        return components

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _with_height(self, horizontal_length_m: float) -> tuple[float, float]:
        """Return (3-D path length, elevation in degrees) for a horizontal length."""
        h = self.config.height_offset_m
        if h == 0.0:
            return horizontal_length_m, 0.0
        length = math.hypot(horizontal_length_m, h)
        elevation = math.degrees(math.atan2(abs(h), horizontal_length_m))
        return length, elevation

    def _scatter_rng(self, path: PropagationPath) -> np.random.Generator:
        """Return a RNG seeded by the *environment* identity of the path.

        The seed depends on which walls the path reflects off and on the AP
        side of the geometry, but not on the client position: moving the
        client a few centimetres therefore keeps the same scatterers (as in
        a real building) while their relative phases change geometrically.
        """
        ap_vertex = path.vertices[-1]  # the AP
        reflection_vertex = path.vertices[-2]
        key_parts = [
            ",".join(path.reflecting_walls),
            f"{ap_vertex.x:.2f}",
            f"{ap_vertex.y:.2f}",
            # Coarse (4 m) bucketing of the reflection point: different
            # sections of a long wall get different clutter, but a few
            # centimetres of client movement never reshuffles it.
            f"{round(reflection_vertex.x / 4.0)}",
            f"{round(reflection_vertex.y / 4.0)}",
        ]
        digest = hashlib.sha256("|".join(key_parts).encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "little")
        return np.random.default_rng(seed)
