"""Client mobility helpers: small inadvertent movements and movement tracks.

The multipath suppression algorithm (Section 2.4) relies on frames captured
while the client (or nearby objects) moved a few centimetres: "these slight
movements happen frequently in real life when we hold a mobile handset".
Sections 4.2 and the Table 1 microbenchmark use movements of up to 5 cm.

This module generates those perturbed positions.  It knows nothing about the
channel: callers rebuild the channel at each perturbed position with the
:class:`~repro.channel.builder.ChannelBuilder`, which is exactly what happens
physically (the environment stays fixed, the client moves).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ChannelError
from repro.geometry.vector import Point2D

__all__ = ["perturb_position", "movement_track", "random_waypoint_track"]


def perturb_position(position: Point2D, distance_m: float,
                     rng: np.random.Generator | None = None,
                     direction_deg: float | None = None) -> Point2D:
    """Return ``position`` displaced by ``distance_m`` in a (random) direction.

    Parameters
    ----------
    position:
        Starting position.
    distance_m:
        Displacement magnitude; Section 4.2 uses "less than 5 cm".
    rng:
        Random generator used when ``direction_deg`` is omitted.
    direction_deg:
        Fixed displacement direction (degrees CCW from +x); random when None.
    """
    if distance_m < 0:
        raise ChannelError(f"displacement must be non-negative, got {distance_m!r}")
    if direction_deg is None:
        rng = rng if rng is not None else np.random.default_rng()
        direction_deg = float(rng.uniform(0.0, 360.0))
    angle = math.radians(direction_deg)
    return Point2D(position.x + distance_m * math.cos(angle),
                   position.y + distance_m * math.sin(angle))


def movement_track(position: Point2D, num_samples: int,
                   max_step_m: float = 0.05,
                   rng: np.random.Generator | None = None) -> list[Point2D]:
    """Return a short random-walk track of ``num_samples`` positions.

    The first entry is ``position`` itself; each subsequent entry moves by a
    uniformly random distance up to ``max_step_m`` in a random direction.
    This models the "semi-static" client of Section 4.2: nominally
    stationary, but with small inadvertent movements between frames.
    """
    if num_samples < 1:
        raise ChannelError(f"num_samples must be >= 1, got {num_samples}")
    rng = rng if rng is not None else np.random.default_rng()
    track = [position]
    current = position
    for _ in range(num_samples - 1):
        step = float(rng.uniform(0.0, max_step_m))
        current = perturb_position(current, step, rng=rng)
        track.append(current)
    return track


def random_waypoint_track(start: Point2D, end: Point2D,
                          num_samples: int) -> list[Point2D]:
    """Return ``num_samples`` positions interpolated from ``start`` to ``end``.

    Used by the tracking example to emulate a client walking through the
    office while ArrayTrack localizes every overheard frame.
    """
    if num_samples < 2:
        raise ChannelError(f"num_samples must be >= 2, got {num_samples}")
    xs = np.linspace(start.x, end.x, num_samples)
    ys = np.linspace(start.y, end.y, num_samples)
    return [Point2D(float(x), float(y)) for x, y in zip(xs, ys, strict=True)]
