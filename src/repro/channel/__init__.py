"""Channel substrate: multipath propagation between clients and APs.

Converts the geometric ray traces of :mod:`repro.geometry` into complex
multipath channels (per-path amplitude, phase and angle of arrival) that the
antenna-array receiver model consumes.  Replaces the physical RF environment
of the paper's office testbed.
"""

from repro.channel.propagation import (
    dbm_to_watts,
    free_space_amplitude,
    free_space_path_loss_db,
    log_distance_path_loss_db,
    received_power_dbm,
    watts_to_dbm,
)
from repro.channel.polarization import polarization_amplitude, polarization_loss_db
from repro.channel.paths import ChannelComponent, MultipathChannel
from repro.channel.builder import ChannelBuilder, ChannelModelConfig
from repro.channel.mobility import (
    movement_track,
    perturb_position,
    random_waypoint_track,
)

__all__ = [
    "dbm_to_watts",
    "free_space_amplitude",
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "received_power_dbm",
    "watts_to_dbm",
    "polarization_amplitude",
    "polarization_loss_db",
    "ChannelComponent",
    "MultipathChannel",
    "ChannelBuilder",
    "ChannelModelConfig",
    "movement_track",
    "perturb_position",
    "random_waypoint_track",
]
