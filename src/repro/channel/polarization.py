"""Antenna polarization mismatch model.

Section 4.3.2 of the paper rotates the clients' antennas perpendicular to the
AP antennas and observes a drop in received power: "a misalignment of
polarization of 45 degrees will degrade the signal up to 3 dB and a
misalignment of 90 degrees causes an attenuation of 20 dB or more."  The
model below reproduces exactly that behaviour: the ideal ``cos``-law loss,
floored at a configurable cross-polar discrimination so a 90-degree mismatch
attenuates by a large-but-finite amount (multipath depolarization always
leaks some energy into the cross polarization indoors).
"""

from __future__ import annotations

import math

from repro.errors import ChannelError

__all__ = ["polarization_loss_db", "polarization_amplitude"]

#: Default cross-polar discrimination: the maximum attenuation (dB) a
#: fully cross-polarized link suffers indoors.
DEFAULT_CROSS_POLAR_DISCRIMINATION_DB = 20.0


def polarization_loss_db(mismatch_deg: float,
                         cross_polar_discrimination_db: float =
                         DEFAULT_CROSS_POLAR_DISCRIMINATION_DB) -> float:
    """Return the polarization mismatch loss in dB.

    Parameters
    ----------
    mismatch_deg:
        Angle between the transmit and receive antenna polarizations in
        degrees.  0 means aligned; 90 means fully cross-polarized.
    cross_polar_discrimination_db:
        Upper bound on the loss (the indoor depolarization floor).
    """
    if cross_polar_discrimination_db < 0:
        raise ChannelError("cross_polar_discrimination_db must be non-negative")
    cos_term = abs(math.cos(math.radians(mismatch_deg)))
    if cos_term <= 0:
        return cross_polar_discrimination_db
    loss = -20.0 * math.log10(cos_term)
    return min(loss, cross_polar_discrimination_db)


def polarization_amplitude(mismatch_deg: float,
                           cross_polar_discrimination_db: float =
                           DEFAULT_CROSS_POLAR_DISCRIMINATION_DB) -> float:
    """Return the amplitude scale factor for a polarization mismatch."""
    loss = polarization_loss_db(mismatch_deg, cross_polar_discrimination_db)
    return 10.0 ** (-loss / 20.0)
