"""Antenna-array substrate: geometries, calibration, receiver and diversity.

Models the multi-antenna WARP access point of the paper: element layouts and
steering vectors, per-radio oscillator phase offsets with the two-run
calibration procedure of Section 3, sample-level snapshot capture, and the
diversity synthesis technique of Section 2.2.
"""

from repro.array.geometry import ArrayGeometry
from repro.array.deployment import DeployedArray
from repro.array.calibration import (
    CalibrationMeasurement,
    CalibrationResult,
    PhaseCalibrator,
)
from repro.array.receiver import ArrayReceiver, SnapshotMatrix
from repro.array.diversity import DiversitySynthesizer, usable_snapshots_per_symbol

__all__ = [
    "ArrayGeometry",
    "DeployedArray",
    "CalibrationMeasurement",
    "CalibrationResult",
    "PhaseCalibrator",
    "ArrayReceiver",
    "SnapshotMatrix",
    "DiversitySynthesizer",
    "usable_snapshots_per_symbol",
]
