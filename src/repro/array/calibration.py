"""AP phase calibration: the two-run splitter-swap procedure of Section 3.

Each radio chain downconverts with its own 2.4 GHz oscillator, adding an
unknown phase offset to the samples it produces; uncorrected, this makes AoA
computation impossible.  The paper calibrates the array with a USRP2
generating a continuous-wave tone fed through splitters and cables ("external
paths") into the radio inputs.  Because nominally-identical cables differ
slightly, a single measurement confounds the internal radio offsets with the
external cable imperfections; the paper therefore measures twice, swapping
the external paths between runs, and combines (Equations 9-12):

* ``(Phoff1 + Phoff2) / 2``  ->  the internal offset (what we want), and
* ``(Phoff2 - Phoff1) / 2``  ->  the external-path imperfection.

The classes below simulate exactly that procedure so that the rest of the
system can be exercised both with ideal calibration and with residual error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import as_float_array
from repro.errors import ArrayError
from repro.array.deployment import DeployedArray

__all__ = ["CalibrationMeasurement", "CalibrationResult", "PhaseCalibrator"]


def _wrap_phase(phase_rad: np.ndarray | float) -> np.ndarray | float:
    """Wrap phases to the interval ``(-pi, pi]``."""
    return np.angle(np.exp(1j * as_float_array(phase_rad)))


@dataclass(frozen=True)
class CalibrationMeasurement:
    """One calibration run: measured phase of each radio relative to radio 0."""

    measured_offsets_rad: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.asarray(self.measured_offsets_rad, dtype=float)
        if offsets.ndim != 1:
            raise ArrayError("measured offsets must be a one-dimensional array")
        object.__setattr__(self, "measured_offsets_rad", offsets)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the two-run calibration procedure.

    Attributes
    ----------
    internal_offsets_rad:
        Estimated per-radio internal phase offsets, relative to radio 0.
    external_imbalance_rad:
        Estimated cable/splitter phase imperfections (diagnostic only).
    """

    internal_offsets_rad: np.ndarray
    external_imbalance_rad: np.ndarray

    def residual_error_rad(self, true_offsets_rad: np.ndarray) -> np.ndarray:
        """Return the wrapped estimation error against the true offsets.

        Both the estimate and the truth are referenced to radio 0 before
        comparison, because a common phase across all radios is irrelevant
        for AoA.
        """
        truth = as_float_array(true_offsets_rad)
        truth_rel = truth - truth[0]
        estimate_rel = self.internal_offsets_rad - self.internal_offsets_rad[0]
        return np.asarray(_wrap_phase(estimate_rel - truth_rel))


class PhaseCalibrator:
    """Simulates the USRP2 continuous-wave calibration bench of Section 3.

    Parameters
    ----------
    external_path_imbalance_rad:
        Phase imperfection of each external path (splitter leg + cable)
        relative to path 0.  Drawn at random (a few degrees r.m.s.) when
        omitted, mimicking manufacturing variation of "cables labelled the
        same length".
    measurement_noise_rad:
        Standard deviation of the per-measurement phase noise.
    """

    def __init__(self, num_radios: int,
                 external_path_imbalance_rad: np.ndarray | None = None,
                 measurement_noise_rad: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        if num_radios < 2:
            raise ArrayError("calibration needs at least two radios")
        self.num_radios = num_radios
        self._rng = rng if rng is not None else np.random.default_rng()
        if external_path_imbalance_rad is None:
            imbalance = self._rng.normal(scale=np.radians(4.0), size=num_radios)
            imbalance[0] = 0.0
        else:
            imbalance = np.asarray(external_path_imbalance_rad, dtype=float)
            if imbalance.shape != (num_radios,):
                raise ArrayError(
                    f"external imbalance must have shape ({num_radios},), got "
                    f"{imbalance.shape}")
        self.external_path_imbalance_rad = imbalance
        self.measurement_noise_rad = measurement_noise_rad

    # ------------------------------------------------------------------
    # Single measurements
    # ------------------------------------------------------------------
    def measure(self, array: DeployedArray,
                swap_external_paths: bool = False) -> CalibrationMeasurement:
        """Run one calibration measurement against ``array``.

        The continuous-wave tone reaches radio ``m`` with phase
        ``Phex_m + Phin_m`` (external path plus internal oscillator offset);
        the measurement reports each radio's phase relative to radio 0,
        corresponding to Equations 9 and 10 of the paper.

        Parameters
        ----------
        swap_external_paths:
            When True, the external paths of each radio pair are exchanged,
            modelled as negating the relative external imbalance (the paper
            swaps the two cables feeding each pair of radios).
        """
        internal = as_float_array(array.phase_offsets_rad)
        if internal.shape != (self.num_radios,):
            raise ArrayError(
                f"array has {internal.shape[0]} radios, calibrator expects "
                f"{self.num_radios}")
        external = self.external_path_imbalance_rad
        if swap_external_paths:
            external = -external
        total = internal + external
        measured = total - total[0]
        if self.measurement_noise_rad > 0:
            noise = self._rng.normal(scale=self.measurement_noise_rad,
                                     size=self.num_radios)
            noise[0] = 0.0
            measured = measured + noise
        return CalibrationMeasurement(np.asarray(_wrap_phase(measured)))

    # ------------------------------------------------------------------
    # Full two-run procedure
    # ------------------------------------------------------------------
    def calibrate(self, array: DeployedArray) -> CalibrationResult:
        """Run the full swap-and-average procedure (Equations 9-12)."""
        first = self.measure(array, swap_external_paths=False)
        second = self.measure(array, swap_external_paths=True)
        return self.combine(first, second)

    @staticmethod
    def combine(first: CalibrationMeasurement,
                second: CalibrationMeasurement) -> CalibrationResult:
        """Combine two swapped measurements into internal/external estimates.

        ``Phoff = (Phoff2 + Phoff1) / 2`` and
        ``Phex1 - Phex2 = (Phoff2 - Phoff1) / 2`` -- Equations 11 and 12.
        The averaging is done on the complex unit circle so that phase
        wrapping cannot corrupt the result.
        """
        a = as_float_array(first.measured_offsets_rad)
        b = as_float_array(second.measured_offsets_rad)
        if a.shape != b.shape:
            raise ArrayError("the two calibration runs measured different array sizes")
        internal = np.angle(np.exp(1j * a) * np.exp(1j * b)) / 2.0
        # Resolve the pi ambiguity of half-angle averaging by picking, for
        # each radio, the candidate (x or x + pi) closest to both runs.
        candidates = np.stack([internal, internal + np.pi], axis=0)
        errors = (np.abs(_wrap_phase(candidates - a[None, :]))
                  + np.abs(_wrap_phase(candidates - b[None, :])))
        choice = np.argmin(errors, axis=0)
        internal = np.asarray(_wrap_phase(candidates[choice, np.arange(a.shape[0])]))
        external = np.asarray(_wrap_phase((b - a) / 2.0))
        return CalibrationResult(internal_offsets_rad=internal,
                                 external_imbalance_rad=external)
