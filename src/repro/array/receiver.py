"""Sample-level receiver model: synthesize array snapshots from a channel.

This is the simulated counterpart of the WARP radio front-ends: given the
multipath channel of a client-AP link and the transmitted baseband samples,
produce the ``(M, N)`` matrix of complex samples the M radio chains capture
over N sample instants (Section 2.1 records ~10 such snapshots per frame).

The received sample at antenna ``m`` and time ``t`` is

    x_m(t) = exp(j phi_m) * sum_p  g_p * a_m(az_p, el_p) * s(t)  +  n_m(t)

where ``g_p`` is the complex gain of path p, ``a_m`` the array response of
antenna m towards the path's arrival direction, ``phi_m`` the uncalibrated
radio phase offset, ``s(t)`` the transmitted sample and ``n_m`` AWGN.  All
paths multiply the *same* transmit sample because the preamble's delay
spread (tens of nanoseconds) is far below the symbol bandwidth of interest;
this is exactly the coherent-multipath regime that makes plain MUSIC fail
and motivates spatial smoothing (Section 2.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_NUM_SNAPSHOTS
from repro.errors import ArrayError, ChannelError
from repro.array.deployment import DeployedArray
from repro.channel.paths import MultipathChannel
from repro.dtypes import as_complex_array
from repro.signal.noise import complex_awgn, noise_power_for_snr

__all__ = ["SnapshotMatrix", "ArrayReceiver"]


@dataclass
class SnapshotMatrix:
    """Raw samples captured by an antenna array.

    Attributes
    ----------
    samples:
        ``(M, N)`` complex matrix: M antennas by N time snapshots.
    snr_db:
        The SNR the snapshots were generated at (NaN when unknown).
    client_id, ap_id:
        Identifiers carried through for bookkeeping.
    timestamp_s:
        Capture time of the frame the snapshots came from.
    """

    samples: np.ndarray
    snr_db: float = float("nan")
    client_id: str = ""
    ap_id: str = ""
    timestamp_s: float = 0.0

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.complex128)
        if samples.ndim != 2:
            raise ArrayError(
                f"snapshot matrix must be two-dimensional, got shape {samples.shape}")
        self.samples = samples

    @property
    def num_antennas(self) -> int:
        """Number of antennas (rows)."""
        return int(self.samples.shape[0])

    @property
    def num_snapshots(self) -> int:
        """Number of time snapshots (columns)."""
        return int(self.samples.shape[1])

    def select_antennas(self, indices) -> "SnapshotMatrix":
        """Return the snapshots restricted to the antennas in ``indices``."""
        return SnapshotMatrix(self.samples[list(indices), :].copy(),
                              snr_db=self.snr_db, client_id=self.client_id,
                              ap_id=self.ap_id, timestamp_s=self.timestamp_s)

    def mean_power(self) -> float:
        """Return the mean per-sample power across all antennas."""
        return float(np.mean(np.abs(self.samples) ** 2))


class ArrayReceiver:
    """Synthesizes antenna-array snapshots for a deployed array.

    Parameters
    ----------
    array:
        The receiving AP's deployed antenna array (position, orientation,
        phase offsets).
    apply_phase_offsets:
        When True (the default) the per-radio oscillator offsets corrupt
        the samples, as in real hardware before calibration is applied.
    """

    def __init__(self, array: DeployedArray, apply_phase_offsets: bool = True) -> None:
        self.array = array
        self.apply_phase_offsets = apply_phase_offsets

    # ------------------------------------------------------------------
    # Noise-free response
    # ------------------------------------------------------------------
    def noiseless_response(self, channel: MultipathChannel) -> np.ndarray:
        """Return the ``(M,)`` complex array response to a unit transmit sample."""
        if len(channel) == 0:
            raise ChannelError("cannot receive over an empty channel")
        # dtype-pinned: complex128 -- simulated RF responses are synthesized at full precision
        response = np.zeros(self.array.num_elements, dtype=np.complex128)
        for component in channel:
            steering = self.array.steering_vector_global(
                component.azimuth_deg, component.elevation_deg)
            response += component.amplitude * steering
        if self.apply_phase_offsets:
            response = response * self.array.phase_offset_factors
        return response

    # ------------------------------------------------------------------
    # Snapshot synthesis
    # ------------------------------------------------------------------
    def capture(self, channel: MultipathChannel,
                num_snapshots: int = DEFAULT_NUM_SNAPSHOTS,
                snr_db: float = 25.0,
                transmit_samples: np.ndarray | None = None,
                rng: np.random.Generator | None = None,
                timestamp_s: float = 0.0) -> SnapshotMatrix:
        """Capture ``num_snapshots`` array snapshots of a frame.

        Parameters
        ----------
        channel:
            Multipath channel from the transmitting client to this AP.
        num_snapshots:
            Number of time samples recorded (the paper uses 10).
        snr_db:
            Per-antenna SNR of the capture; noise power is set relative to
            the mean received signal power across antennas.
        transmit_samples:
            The transmitted baseband samples to use.  Unit-power random
            QPSK-like samples are generated when omitted (the frame content
            is immaterial to ArrayTrack, Section 2.1).
        rng:
            Random generator for the transmit samples and noise.
        timestamp_s:
            Frame capture time, forwarded into the snapshot metadata.
        """
        if num_snapshots < 1:
            raise ArrayError(f"num_snapshots must be >= 1, got {num_snapshots}")
        rng = rng if rng is not None else np.random.default_rng()
        if transmit_samples is None:
            transmit_samples = self._random_unit_power_samples(num_snapshots, rng)
        else:
            transmit_samples = as_complex_array(transmit_samples)
            if transmit_samples.ndim != 1:
                raise ArrayError("transmit_samples must be one-dimensional")
            if len(transmit_samples) < num_snapshots:
                raise ArrayError(
                    f"need at least {num_snapshots} transmit samples, got "
                    f"{len(transmit_samples)}")
            transmit_samples = transmit_samples[:num_snapshots]
        response = self.noiseless_response(channel)
        clean = np.outer(response, transmit_samples)
        signal_power = float(np.mean(np.abs(clean) ** 2))
        if signal_power <= 0:
            raise ChannelError("channel delivers zero power to the array")
        noise_power = noise_power_for_snr(signal_power, snr_db)
        noise = complex_awgn(clean.shape, noise_power, rng)
        return SnapshotMatrix(clean + noise, snr_db=snr_db,
                              client_id=channel.client_id, ap_id=channel.ap_id,
                              timestamp_s=timestamp_s)

    @staticmethod
    def _random_unit_power_samples(num_samples: int,
                                   rng: np.random.Generator) -> np.ndarray:
        """Return unit-power random QPSK samples standing in for frame content."""
        constellation = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2.0)
        # dtype-pinned: complex128 -- simulated QPSK frame content is synthesized at full precision
        return np.asarray(rng.choice(constellation, size=num_samples),
                          dtype=np.complex128)
