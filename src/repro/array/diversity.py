"""Diversity synthesis: combine antenna sets captured on different symbols.

Section 2.2 of the paper: commodity APs pair each radio with two antennas and
a diversity switch.  ArrayTrack records the first long training symbol (S0)
on the *upper* antenna set, toggles the antenna-select line, and records the
second long training symbol (S1) on the *lower* set.  Because the two long
training symbols are identical and both fall well within the channel
coherence time, the two recordings can be treated as if all antennas had been
sampled simultaneously -- doubling the effective array size without extra
radios.  The hardware imposes a 500 ns switching dead time during which
samples are unusable.

The same mechanism provides the ninth antenna used for array-symmetry
removal (Section 2.3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.constants import (
    ANTENNA_SWITCH_DEAD_TIME_S,
    DEFAULT_NUM_SNAPSHOTS,
    LONG_TRAINING_SYMBOL_DURATION_S,
    SAMPLE_RATE_HZ,
)
from repro.errors import ArrayError
from repro.array.deployment import DeployedArray
from repro.array.receiver import ArrayReceiver, SnapshotMatrix
from repro.channel.paths import MultipathChannel

__all__ = ["DiversitySynthesizer", "usable_snapshots_per_symbol"]


def usable_snapshots_per_symbol(
        sample_rate_hz: float = SAMPLE_RATE_HZ,
        symbol_duration_s: float = LONG_TRAINING_SYMBOL_DURATION_S,
        switch_dead_time_s: float = ANTENNA_SWITCH_DEAD_TIME_S) -> int:
    """Return how many clean samples one long training symbol yields.

    The switching dead time (500 ns on the WARP platform) is subtracted from
    the 3.2 us symbol; at 40 Msps that still leaves over a hundred samples,
    far more than the ten ArrayTrack needs.
    """
    usable_time = symbol_duration_s - switch_dead_time_s
    if usable_time <= 0:
        raise ArrayError(
            "switching dead time exceeds the training symbol duration")
    return int(usable_time * sample_rate_hz)


@dataclass
class DiversitySynthesizer:
    """Synthesizes a larger virtual array from two switched antenna sets.

    Parameters
    ----------
    array:
        The *full* deployed array covering every physical antenna reachable
        through the diversity switches (e.g. the 16-antenna rectangular
        layout, or 8 + 1 for symmetry removal).
    primary_indices:
        Antenna indices recorded during the first long training symbol.
    secondary_indices:
        Antenna indices recorded during the second long training symbol.
        May overlap with ``primary_indices`` (an antenna wired to both
        switch positions) but the union must cover distinct rows of the
        output snapshot matrix.
    """

    array: DeployedArray
    primary_indices: Sequence[int]
    secondary_indices: Sequence[int]

    def __post_init__(self) -> None:
        primary = list(self.primary_indices)
        secondary = list(self.secondary_indices)
        if not primary or not secondary:
            raise ArrayError("both antenna sets must be non-empty")
        all_indices = primary + secondary
        if max(all_indices) >= self.array.num_elements or min(all_indices) < 0:
            raise ArrayError(
                "antenna indices out of range for an array with "
                f"{self.array.num_elements} elements")
        if set(primary) & set(secondary):
            raise ArrayError(
                "primary and secondary antenna sets must not overlap; each "
                "switch position connects a different antenna")
        self.primary_indices = primary
        self.secondary_indices = secondary

    @property
    def synthesized_indices(self) -> list:
        """Indices of the virtual array rows, primary set first."""
        return list(self.primary_indices) + list(self.secondary_indices)

    def capture(self, channel: MultipathChannel,
                num_snapshots: int = DEFAULT_NUM_SNAPSHOTS,
                snr_db: float = 25.0,
                rng: np.random.Generator | None = None,
                timestamp_s: float = 0.0,
                apply_phase_offsets: bool = True) -> SnapshotMatrix:
        """Capture a synthesized snapshot matrix over both antenna sets.

        The primary set's samples come from the first long training symbol
        and the secondary set's from the second; the transmitted samples of
        the two symbols are identical (they are the same OFDM symbol
        repeated), so the synthesis simply stacks the two captures.  Noise
        is drawn independently for the two symbols, exactly as in hardware.
        """
        max_per_symbol = usable_snapshots_per_symbol()
        if num_snapshots > max_per_symbol:
            raise ArrayError(
                f"cannot draw {num_snapshots} snapshots from one long training "
                f"symbol; at most {max_per_symbol} are usable after the "
                "switching dead time")
        rng = rng if rng is not None else np.random.default_rng()
        # Identical transmit samples for both long training symbols (S0 and S1
        # carry the same OFDM symbol); noise is drawn independently for the
        # two captures because they happen at different times.
        transmit_samples = ArrayReceiver._random_unit_power_samples(num_snapshots, rng)
        receiver = ArrayReceiver(self.array, apply_phase_offsets)
        first_symbol = receiver.capture(channel, num_snapshots, snr_db,
                                        transmit_samples, rng, timestamp_s)
        second_symbol = receiver.capture(channel, num_snapshots, snr_db,
                                         transmit_samples, rng, timestamp_s)
        samples = np.concatenate(
            [first_symbol.samples[list(self.primary_indices), :],
             second_symbol.samples[list(self.secondary_indices), :]], axis=0)
        return SnapshotMatrix(samples, snr_db=snr_db, client_id=channel.client_id,
                              ap_id=channel.ap_id, timestamp_s=timestamp_s)

    def synthesized_array(self) -> DeployedArray:
        """Return the deployed array corresponding to the synthesized rows.

        The row order of :meth:`capture` matches this array's element order,
        so downstream AoA processing can use its steering vectors directly.
        """
        return self.array.with_subarray(self.synthesized_indices)
