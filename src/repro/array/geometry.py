"""Antenna array geometries and steering vectors.

The prototype AP in the paper carries up to 16 antennas spaced at half a
wavelength (6.13 cm).  The evaluation uses linear sub-arrays of 4, 6 and 8
antennas (Figure 16), plus a ninth antenna *not* on the same row used for
array-symmetry removal (Section 2.3.4).  The discussion section also
contrasts linear and circular arrangements.

Conventions used throughout the library:

* Antenna element positions are 2-D offsets, in metres, in the array's
  *local* frame: the linear array lies along the local +x axis.
* The azimuth of an arriving signal is the bearing of the source as seen
  from the array origin, measured counter-clockwise from the local +x axis.
  For a linear array the response depends only on ``cos(azimuth)``, which is
  the 180-degree mirror ambiguity the paper discusses.
* Steering-vector element ``m`` is ``exp(+j k (r_m . u(az)) cos(el))`` where
  ``k = 2 pi / lambda``, ``r_m`` is the element offset, ``u(az)`` the unit
  vector towards the source and ``el`` the elevation of the source above the
  array plane.  (A global phase reference at the array origin is implied.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.constants import ANTENNA_SPACING_M, WAVELENGTH_M
from repro.dtypes import as_float_array
from repro.errors import ArrayError

__all__ = ["ArrayGeometry"]


@dataclass(frozen=True)
class ArrayGeometry:
    """Positions of the antenna elements of an AP, in the array's local frame.

    Attributes
    ----------
    element_positions:
        ``(M, 2)`` array of element offsets in metres.
    name:
        Human-readable description ("8-element ULA", ...).
    """

    element_positions: np.ndarray
    name: str = "array"

    def __post_init__(self) -> None:
        positions = np.asarray(self.element_positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ArrayError(
                f"element_positions must have shape (M, 2), got {positions.shape}")
        if positions.shape[0] < 2:
            raise ArrayError("an antenna array needs at least two elements")
        object.__setattr__(self, "element_positions", positions)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        """Number of antenna elements."""
        return int(self.element_positions.shape[0])

    @property
    def aperture_m(self) -> float:
        """Largest distance between any two elements (metres)."""
        positions = self.element_positions
        diffs = positions[:, None, :] - positions[None, :, :]
        return float(np.max(np.linalg.norm(diffs, axis=-1)))

    def is_linear(self, tolerance_m: float = 1e-9) -> bool:
        """Return True when all elements are collinear (mirror-ambiguous array)."""
        positions = self.element_positions
        if positions.shape[0] <= 2:
            return True
        base = positions[0]
        direction = positions[-1] - base
        norm = np.linalg.norm(direction)
        if norm < tolerance_m:
            return False
        direction = direction / norm
        offsets = positions - base
        cross = offsets[:, 0] * direction[1] - offsets[:, 1] * direction[0]
        return bool(np.all(np.abs(cross) < tolerance_m + 1e-12))

    # ------------------------------------------------------------------
    # Steering vectors
    # ------------------------------------------------------------------
    def steering_vector(self, azimuth_deg: float, elevation_deg: float = 0.0,
                        wavelength_m: float = WAVELENGTH_M) -> np.ndarray:
        """Return the ``(M,)`` complex array response for one arrival direction."""
        return self.steering_matrix(as_float_array([azimuth_deg]),
                                    elevation_deg, wavelength_m)[:, 0]

    def steering_matrix(self, azimuths_deg: Sequence[float] | np.ndarray,
                        elevation_deg: float = 0.0,
                        wavelength_m: float = WAVELENGTH_M) -> np.ndarray:
        """Return the ``(M, K)`` matrix of steering vectors for K azimuths.

        Parameters
        ----------
        azimuths_deg:
            Arrival azimuths in the array's local frame (degrees).
        elevation_deg:
            Common elevation of the arrivals above the array plane; the
            in-plane phase differences scale by ``cos(elevation)``
            (Appendix A of the paper).
        wavelength_m:
            Carrier wavelength.
        """
        if wavelength_m <= 0:
            raise ArrayError(f"wavelength must be positive, got {wavelength_m!r}")
        azimuths = np.atleast_1d(as_float_array(azimuths_deg))
        azimuth_rad = np.radians(azimuths)
        direction = np.stack([np.cos(azimuth_rad), np.sin(azimuth_rad)], axis=0)
        projections = self.element_positions @ direction  # (M, K)
        k = 2.0 * math.pi / wavelength_m
        scale = math.cos(math.radians(elevation_deg))
        return np.exp(1j * k * scale * projections)

    # ------------------------------------------------------------------
    # Sub-arrays
    # ------------------------------------------------------------------
    def subarray(self, indices: Sequence[int], name: str = "") -> "ArrayGeometry":
        """Return the geometry restricted to the elements in ``indices``."""
        indices = list(indices)
        if len(indices) < 2:
            raise ArrayError("a subarray needs at least two elements")
        if max(indices) >= self.num_elements or min(indices) < 0:
            raise ArrayError(
                f"subarray indices out of range for {self.num_elements} elements")
        return ArrayGeometry(self.element_positions[indices],
                             name=name or f"{self.name}[{len(indices)}]")

    # ------------------------------------------------------------------
    # Constructors for the geometries used in the paper
    # ------------------------------------------------------------------
    @staticmethod
    def uniform_linear(num_elements: int,
                       spacing_m: float = ANTENNA_SPACING_M) -> "ArrayGeometry":
        """Return a uniform linear array along the local +x axis.

        This is the arrangement of the prototype AP's main row of antennas
        ("Antennas are spaced at a half wavelength distance (6.13 cm)",
        Section 3).
        """
        if num_elements < 2:
            raise ArrayError("a linear array needs at least two elements")
        if spacing_m <= 0:
            raise ArrayError(f"spacing must be positive, got {spacing_m!r}")
        xs = np.arange(num_elements) * spacing_m
        positions = np.stack([xs, np.zeros_like(xs)], axis=1)
        return ArrayGeometry(positions, name=f"{num_elements}-element ULA")

    @staticmethod
    def linear_with_symmetry_antenna(
            num_elements: int = 8,
            spacing_m: float = ANTENNA_SPACING_M,
            offset_m: float | None = None) -> "ArrayGeometry":
        """Return a ULA plus a ninth antenna off the array's row.

        Section 2.3.4: "we employ the diversity synthesis scheme ... to have
        a ninth antenna not in the same row as the other eight included",
        which resolves the 180-degree mirror ambiguity of the linear array.
        The extra antenna sits ``offset_m`` perpendicular to the row, below
        its midpoint.  The default offset is a quarter wavelength (half the
        element spacing): that makes the front/back phase difference
        ``pi * sin(theta)``, which never wraps past ``2 pi`` and is largest
        exactly at broadside, where the linear row itself is most accurate.
        """
        base = ArrayGeometry.uniform_linear(num_elements, spacing_m)
        offset = spacing_m / 2.0 if offset_m is None else offset_m
        if offset == 0:
            raise ArrayError("the symmetry antenna must be off the array row")
        mid_x = float(np.mean(base.element_positions[:, 0]))
        extra = np.array([[mid_x, -abs(offset)]])
        positions = np.concatenate([base.element_positions, extra], axis=0)
        return ArrayGeometry(
            positions, name=f"{num_elements}-element ULA + symmetry antenna")

    @staticmethod
    def rectangular(rows: int, columns: int,
                    spacing_m: float = ANTENNA_SPACING_M) -> "ArrayGeometry":
        """Return a rectangular grid array (the physical 16-antenna layout).

        The prototype places 16 antennas "in a rectangular geometry"
        (Figure 11); diversity synthesis switches between its two rows.
        """
        if rows < 1 or columns < 1 or rows * columns < 2:
            raise ArrayError("rectangular array needs at least two elements")
        positions = [
            (column * spacing_m, -row * spacing_m)
            for row in range(rows) for column in range(columns)
        ]
        return ArrayGeometry(np.array(positions),
                             name=f"{rows}x{columns} rectangular array")

    @staticmethod
    def circular(num_elements: int, radius_m: float | None = None,
                 spacing_m: float = ANTENNA_SPACING_M) -> "ArrayGeometry":
        """Return a uniform circular array.

        The discussion section compares linear and circular arrangements: a
        circular array resolves the full 360 degrees without the mirror
        ambiguity, at the price of needing more antennas for the same
        resolution.  When ``radius_m`` is omitted the radius is chosen so
        neighbouring elements sit ``spacing_m`` apart along the chord.
        """
        if num_elements < 3:
            raise ArrayError("a circular array needs at least three elements")
        if radius_m is None:
            radius_m = spacing_m / (2.0 * math.sin(math.pi / num_elements))
        if radius_m <= 0:
            raise ArrayError(f"radius must be positive, got {radius_m!r}")
        angles = 2.0 * math.pi * np.arange(num_elements) / num_elements
        positions = radius_m * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        return ArrayGeometry(positions, name=f"{num_elements}-element UCA")
