"""Deployed antenna arrays: a geometry placed at a position and orientation.

The :class:`ArrayGeometry` lives in its own local frame; an AP installs it at
a specific position in the building with a specific orientation.  The
:class:`DeployedArray` performs the global/local angle conversion and owns
the per-radio phase offsets of the receiver chains (Section 3: each radio's
2.4 GHz oscillator introduces an unknown phase offset that must be
calibrated out before AoA is possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.constants import WAVELENGTH_M
from repro.dtypes import as_float_array
from repro.errors import ArrayError
from repro.array.geometry import ArrayGeometry
from repro.geometry.vector import Point2D, bearing_deg, normalize_angle_deg

__all__ = ["DeployedArray"]


@dataclass
class DeployedArray:
    """An antenna array installed at a position/orientation in the building.

    Attributes
    ----------
    geometry:
        The element layout in the array's local frame.
    position:
        Position of the array origin (first element) in building coordinates.
    orientation_deg:
        Rotation of the array's local +x axis relative to the building's +x
        axis, counter-clockwise, in degrees.
    phase_offsets_rad:
        Per-radio oscillator phase offsets (radians).  These corrupt the
        received samples until calibration removes them.
    wavelength_m:
        Carrier wavelength.
    """

    geometry: ArrayGeometry
    position: Point2D = field(default_factory=lambda: Point2D(0.0, 0.0))
    orientation_deg: float = 0.0
    phase_offsets_rad: np.ndarray | None = None
    wavelength_m: float = WAVELENGTH_M

    def __post_init__(self) -> None:
        if self.phase_offsets_rad is None:
            self.phase_offsets_rad = np.zeros(self.geometry.num_elements)
        else:
            offsets = np.asarray(self.phase_offsets_rad, dtype=float)
            if offsets.shape != (self.geometry.num_elements,):
                raise ArrayError(
                    "phase_offsets_rad must have one entry per element, got "
                    f"shape {offsets.shape} for {self.geometry.num_elements} elements")
            self.phase_offsets_rad = offsets
        if self.wavelength_m <= 0:
            raise ArrayError(f"wavelength must be positive, got {self.wavelength_m!r}")

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        """Number of antenna elements."""
        return self.geometry.num_elements

    @property
    def phase_offset_factors(self) -> np.ndarray:
        """Complex factors ``exp(j phi_m)`` applied by the radio chains."""
        return np.exp(1j * self.phase_offsets_rad)

    # ------------------------------------------------------------------
    # Angle conversions
    # ------------------------------------------------------------------
    def local_azimuth_deg(self, global_azimuth_deg: float) -> float:
        """Convert a global bearing into the array's local frame."""
        return normalize_angle_deg(global_azimuth_deg - self.orientation_deg)

    def global_azimuth_deg(self, local_azimuth_deg: float) -> float:
        """Convert a local-frame azimuth into a global building bearing."""
        return normalize_angle_deg(local_azimuth_deg + self.orientation_deg)

    def bearing_to(self, point: Point2D) -> float:
        """Return the local-frame azimuth of ``point`` as seen from the array."""
        return self.local_azimuth_deg(bearing_deg(self.position, point))

    # ------------------------------------------------------------------
    # Steering vectors (global-frame convenience wrappers)
    # ------------------------------------------------------------------
    def steering_vector_global(self, global_azimuth_deg: float,
                               elevation_deg: float = 0.0) -> np.ndarray:
        """Return the array response for an arrival given by a *global* bearing."""
        local = self.local_azimuth_deg(global_azimuth_deg)
        return self.geometry.steering_vector(local, elevation_deg, self.wavelength_m)

    def steering_matrix_local(self, local_azimuths_deg: Sequence[float] | np.ndarray,
                              elevation_deg: float = 0.0) -> np.ndarray:
        """Return steering vectors for a grid of local-frame azimuths."""
        return self.geometry.steering_matrix(local_azimuths_deg, elevation_deg,
                                             self.wavelength_m)

    # ------------------------------------------------------------------
    # Derived deployments
    # ------------------------------------------------------------------
    def with_subarray(self, indices: Sequence[int]) -> "DeployedArray":
        """Return a deployment using only the elements in ``indices``."""
        indices = list(indices)
        return DeployedArray(
            geometry=self.geometry.subarray(indices),
            position=self.position,
            orientation_deg=self.orientation_deg,
            phase_offsets_rad=np.asarray(self.phase_offsets_rad)[indices].copy(),
            wavelength_m=self.wavelength_m,
        )

    def with_phase_offsets(self, offsets_rad: np.ndarray) -> "DeployedArray":
        """Return a copy with different per-radio phase offsets."""
        return DeployedArray(
            geometry=self.geometry,
            position=self.position,
            orientation_deg=self.orientation_deg,
            phase_offsets_rad=as_float_array(offsets_rad).copy(),
            wavelength_m=self.wavelength_m,
        )

    def calibrated(self, estimated_offsets_rad: np.ndarray) -> "DeployedArray":
        """Return a copy whose offsets are the residual after calibration.

        Subtracting a perfect estimate leaves zero offsets; an imperfect
        estimate leaves small residuals, which is how calibration error can
        be injected in robustness experiments.
        """
        estimated = as_float_array(estimated_offsets_rad)
        if estimated.shape != (self.num_elements,):
            raise ArrayError(
                "estimated offsets must have one entry per element, got "
                f"shape {estimated.shape}")
        residual = np.asarray(self.phase_offsets_rad) - estimated
        return self.with_phase_offsets(residual)

    @staticmethod
    def random_phase_offsets(num_elements: int,
                             rng: np.random.Generator | None = None) -> np.ndarray:
        """Return uniformly random per-radio phase offsets in ``[0, 2 pi)``."""
        rng = rng if rng is not None else np.random.default_rng()
        return rng.uniform(0.0, 2.0 * np.pi, size=num_elements)
