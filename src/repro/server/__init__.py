"""Server layer: spectra aggregation, localization and client tracking."""

from repro.server.backend import ArrayTrackServer, ServerConfig
from repro.server.tracker import ClientTracker, TrackerConfig, TrackPoint

__all__ = ["ArrayTrackServer", "ServerConfig", "ClientTracker",
           "TrackerConfig", "TrackPoint"]
