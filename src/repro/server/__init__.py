"""Server layer: spectra aggregation, localization and client tracking."""

from repro.server.backend import ArrayTrackServer, ServerConfig
from repro.server.tracker import ClientTracker, TrackPoint

__all__ = ["ArrayTrackServer", "ServerConfig", "ClientTracker", "TrackPoint"]
