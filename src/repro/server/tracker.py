"""Client tracking: a time series of location fixes per client.

The paper's motivating applications (augmented reality, retail analytics)
track clients "in real time, as they roam about a building".  The
:class:`ClientTracker` keeps the history of fixes produced by the server and
offers a lightly smoothed trajectory (exponential moving average), which is
what a consumer of a 10 Hz location feed would typically apply.

Fixes are kept strictly sorted by timestamp.  A fix arriving out of
timestamp order (network reordering between APs and server, a late tick) is
either inserted at its chronological position with the smoothing recomputed
from there on, or rejected with a clear error, depending on the configured
``on_out_of_order`` policy -- silently appending it would corrupt the EMA,
:meth:`ClientTracker.latest` and :meth:`ClientTracker.path_length_m`.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, EstimationError
from repro.core.localizer import LocationEstimate
from repro.geometry.vector import Point2D

__all__ = ["TrackPoint", "TrackerConfig", "ClientTracker"]

#: Valid ``on_out_of_order`` policies.
_OUT_OF_ORDER_POLICIES = ("insert", "reject")


@dataclass(frozen=True)
class TrackPoint:
    """One entry of a client's track.

    Attributes
    ----------
    timestamp_s:
        Time of the fix.
    position:
        Raw estimated position.
    smoothed_position:
        Exponentially smoothed position (equals ``position`` for the first
        fix of a client).
    likelihood:
        Likelihood value of the fix.
    """

    timestamp_s: float
    position: Point2D
    smoothed_position: Point2D
    likelihood: float


@dataclass
class TrackerConfig:
    """Configuration of the per-client fix tracker.

    Attributes
    ----------
    smoothing_factor:
        Exponential moving average weight of the newest fix, in ``(0, 1]``
        (1 disables smoothing).
    max_history:
        Maximum number of fixes retained per client (None keeps everything).
    on_out_of_order:
        What :meth:`ClientTracker.update` does with a fix whose timestamp
        does not advance the track: ``"insert"`` (default) places it at its
        chronological position and recomputes the smoothing from there on;
        ``"reject"`` raises :class:`~repro.errors.EstimationError`.
    """

    smoothing_factor: float = 0.6
    max_history: int | None = None
    on_out_of_order: str = "insert"

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing_factor <= 1.0:
            raise ConfigurationError("smoothing_factor must be in (0, 1]")
        if self.max_history is not None and self.max_history < 1:
            raise ConfigurationError("max_history must be >= 1 or None")
        if self.on_out_of_order not in _OUT_OF_ORDER_POLICIES:
            raise ConfigurationError(
                f"on_out_of_order must be one of {_OUT_OF_ORDER_POLICIES}, "
                f"got {self.on_out_of_order!r}")

    def build(self) -> "ClientTracker":
        """Construct a tracker with this configuration."""
        return ClientTracker(smoothing_factor=self.smoothing_factor,
                             max_history=self.max_history,
                             on_out_of_order=self.on_out_of_order)


class ClientTracker:
    """Maintains per-client location histories.

    Parameters
    ----------
    smoothing_factor:
        Exponential moving average weight of the newest fix, in ``(0, 1]``
        (1 disables smoothing).
    max_history:
        Maximum number of fixes retained per client (None keeps everything).
    on_out_of_order:
        Policy for fixes whose timestamp does not advance the track
        (see :class:`TrackerConfig`).
    """

    def __init__(self, smoothing_factor: float = 0.6,
                 max_history: int | None = None,
                 on_out_of_order: str = "insert") -> None:
        # Reuse the config dataclass's validation so the constructor and the
        # service config tree can never drift apart.
        config = TrackerConfig(smoothing_factor=smoothing_factor,
                               max_history=max_history,
                               on_out_of_order=on_out_of_order)
        self.smoothing_factor = config.smoothing_factor
        self.max_history = config.max_history
        self.on_out_of_order = config.on_out_of_order
        self._tracks: dict[str, list[TrackPoint]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, client_id: str, estimate: LocationEstimate,
               timestamp_s: float) -> TrackPoint:
        """Record a new fix for ``client_id`` and return its track point.

        Fixes are kept sorted by timestamp.  The common in-order fix is an
        O(1) append; a fix older than (or tied with) the newest one follows
        the ``on_out_of_order`` policy -- chronological insertion with the
        EMA recomputed from the insertion point onwards, or a clear
        :class:`~repro.errors.EstimationError`.  A tied timestamp inserts
        after the existing fixes with that timestamp (stable order).

        The returned point is a frozen snapshot of the fix as recorded:
        with ``max_history`` set it may already have aged out of the
        capped track, and a later out-of-order insertion may recompute
        the smoothing of its in-track successor -- :meth:`track` is
        always the authoritative, currently-smoothed history.
        """
        timestamp_s = float(timestamp_s)
        self.ensure_accepts(client_id, timestamp_s)
        history = self._tracks[client_id]
        index = bisect_right(history, timestamp_s,
                             key=lambda point: point.timestamp_s)
        point = TrackPoint(timestamp_s=timestamp_s,
                           position=estimate.position,
                           smoothed_position=estimate.position,
                           likelihood=estimate.likelihood)
        history.insert(index, point)
        self._resmooth(history, index)
        point = history[index]
        if self.max_history is not None and len(history) > self.max_history:
            del history[:len(history) - self.max_history]
        return point

    def ensure_accepts(self, client_id: str, timestamp_s: float) -> None:
        """Raise if :meth:`update` would refuse a fix at ``timestamp_s``.

        Only the ``"reject"`` out-of-order policy refuses anything.  The
        check never mutates the tracker, so callers emitting a batch of
        fixes can validate every client *before* committing any of them.
        """
        if self.on_out_of_order != "reject":
            return
        history = self._tracks.get(client_id)
        if history and float(timestamp_s) <= history[-1].timestamp_s:
            raise EstimationError(
                f"out-of-order fix for client {client_id!r}: timestamp "
                f"{float(timestamp_s)} does not advance the track (latest "
                f"is {history[-1].timestamp_s})")

    def _resmooth(self, history: list[TrackPoint], start: int) -> None:
        """Recompute the EMA chain from ``start`` to the end of the track."""
        alpha = self.smoothing_factor
        for index in range(start, len(history)):
            current = history[index]
            if index == 0:
                smoothed = current.position
            else:
                previous = history[index - 1].smoothed_position
                smoothed = Point2D(
                    alpha * current.position.x + (1.0 - alpha) * previous.x,
                    alpha * current.position.y + (1.0 - alpha) * previous.y,
                )
            if smoothed != current.smoothed_position:
                history[index] = replace(current, smoothed_position=smoothed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def clients(self) -> list[str]:
        """Return the identifiers of all tracked clients."""
        return sorted(self._tracks)

    def track(self, client_id: str) -> list[TrackPoint]:
        """Return the full track of ``client_id`` (oldest first)."""
        return list(self._tracks.get(client_id, []))

    def latest(self, client_id: str) -> TrackPoint | None:
        """Return the most recent fix for ``client_id``, or None."""
        history = self._tracks.get(client_id)
        return history[-1] if history else None

    def path_length_m(self, client_id: str, smoothed: bool = True) -> float:
        """Return the total length of the client's (smoothed) trajectory."""
        history = self._tracks.get(client_id, [])
        if len(history) < 2:
            return 0.0
        total = 0.0
        for previous, current in zip(history, history[1:], strict=False):
            a = previous.smoothed_position if smoothed else previous.position
            b = current.smoothed_position if smoothed else current.position
            total += a.distance_to(b)
        return total
