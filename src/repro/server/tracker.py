"""Client tracking: a time series of location fixes per client.

The paper's motivating applications (augmented reality, retail analytics)
track clients "in real time, as they roam about a building".  The
:class:`ClientTracker` keeps the history of fixes produced by the server and
offers a lightly smoothed trajectory (exponential moving average), which is
what a consumer of a 10 Hz location feed would typically apply.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.core.localizer import LocationEstimate
from repro.geometry.vector import Point2D

__all__ = ["TrackPoint", "ClientTracker"]


@dataclass(frozen=True)
class TrackPoint:
    """One entry of a client's track.

    Attributes
    ----------
    timestamp_s:
        Time of the fix.
    position:
        Raw estimated position.
    smoothed_position:
        Exponentially smoothed position (equals ``position`` for the first
        fix of a client).
    likelihood:
        Likelihood value of the fix.
    """

    timestamp_s: float
    position: Point2D
    smoothed_position: Point2D
    likelihood: float


class ClientTracker:
    """Maintains per-client location histories.

    Parameters
    ----------
    smoothing_factor:
        Exponential moving average weight of the newest fix, in ``(0, 1]``
        (1 disables smoothing).
    max_history:
        Maximum number of fixes retained per client (None keeps everything).
    """

    def __init__(self, smoothing_factor: float = 0.6,
                 max_history: Optional[int] = None) -> None:
        if not 0.0 < smoothing_factor <= 1.0:
            raise ConfigurationError("smoothing_factor must be in (0, 1]")
        if max_history is not None and max_history < 1:
            raise ConfigurationError("max_history must be >= 1 or None")
        self.smoothing_factor = smoothing_factor
        self.max_history = max_history
        self._tracks: Dict[str, List[TrackPoint]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, client_id: str, estimate: LocationEstimate,
               timestamp_s: float) -> TrackPoint:
        """Append a new fix for ``client_id`` and return the track point."""
        history = self._tracks[client_id]
        if history:
            previous = history[-1].smoothed_position
            alpha = self.smoothing_factor
            smoothed = Point2D(
                alpha * estimate.position.x + (1.0 - alpha) * previous.x,
                alpha * estimate.position.y + (1.0 - alpha) * previous.y,
            )
        else:
            smoothed = estimate.position
        point = TrackPoint(timestamp_s=timestamp_s, position=estimate.position,
                           smoothed_position=smoothed,
                           likelihood=estimate.likelihood)
        history.append(point)
        if self.max_history is not None and len(history) > self.max_history:
            del history[:len(history) - self.max_history]
        return point

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def clients(self) -> List[str]:
        """Return the identifiers of all tracked clients."""
        return sorted(self._tracks)

    def track(self, client_id: str) -> List[TrackPoint]:
        """Return the full track of ``client_id`` (oldest first)."""
        return list(self._tracks.get(client_id, []))

    def latest(self, client_id: str) -> Optional[TrackPoint]:
        """Return the most recent fix for ``client_id``, or None."""
        history = self._tracks.get(client_id)
        return history[-1] if history else None

    def path_length_m(self, client_id: str, smoothed: bool = True) -> float:
        """Return the total length of the client's (smoothed) trajectory."""
        history = self._tracks.get(client_id, [])
        if len(history) < 2:
            return 0.0
        total = 0.0
        for previous, current in zip(history, history[1:]):
            a = previous.smoothed_position if smoothed else previous.position
            b = current.smoothed_position if smoothed else current.position
            total += a.distance_to(b)
        return total
