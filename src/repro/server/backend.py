"""The central ArrayTrack server: spectra aggregation and location synthesis.

Figure 1 splits the system into per-AP functionality (detection, diversity
synthesis, buffering) and server functionality (AoA spectrum computation,
multipath suppression, maximum-likelihood position estimation).  In this
library the spectrum computation lives with the AP object for convenience;
the :class:`ArrayTrackServer` performs the cross-frame and cross-AP steps:

* group each AP's spectra of a client by capture time and run multipath
  suppression on each group (Section 2.4);
* synthesize the suppressed spectra of all APs into a likelihood surface and
  extract the location estimate (Section 2.5);
* account for the end-to-end latency of the fix (Section 4.4).

Beyond the paper's single-client flow, :meth:`ArrayTrackServer.localize_batch`
accepts many clients at once and hands them to the vectorized
:class:`~repro.core.batch.BatchLocalizer`, which evaluates the Equation 8
grid for the whole batch in stacked NumPy passes while reusing the cached
per-AP bearing tables.  Batched fixes are bit-for-bit identical to looping
:meth:`ArrayTrackServer.localize_spectra` over the same clients -- the single
client path *is* the batch path with a batch of one.

Since the facade redesign, applications should reach this backend through
:class:`repro.api.ArrayTrackService`; the server's own
:meth:`~ArrayTrackServer.localize_spectra` is a deprecated shim over the
identical internal path.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError, EstimationError
from repro.ap.access_point import ArrayTrackAP
from repro.ap.latency import LatencyBreakdown, LatencyModel
from repro.core.localizer import LocalizerConfig, LocationEstimate, LocationEstimator
from repro.core.spectrum import AoASpectrum
from repro.core.suppression import MultipathSuppressor

__all__ = ["ServerConfig", "ArrayTrackServer"]


@dataclass
class ServerConfig:
    """Configuration of the central server.

    Attributes
    ----------
    localizer:
        Grid/hill-climbing configuration of the position estimator.
    enable_multipath_suppression:
        Run the Section 2.4 algorithm on each AP's spectra when multiple
        frames of a client are available.
    suppressor:
        Parameters of the multipath suppression step.
    measure_processing_time:
        Record wall-clock processing time of each fix (used by the latency
        experiment to substitute the measured Python time for the paper's
        Matlab figure).
    """

    localizer: LocalizerConfig = field(default_factory=LocalizerConfig)
    enable_multipath_suppression: bool = True
    suppressor: MultipathSuppressor = field(default_factory=MultipathSuppressor)
    measure_processing_time: bool = False


class ArrayTrackServer:
    """Aggregates AoA spectra from many APs and produces location fixes.

    Parameters
    ----------
    bounds:
        ``(xmin, ymin, xmax, ymax)`` search area (the floorplan bounding box).
    config:
        Server configuration; the defaults follow the paper.
    latency_model:
        Hardware latency model used to annotate fixes; a default WARP-like
        model is used when omitted.
    """

    def __init__(self, bounds: tuple[float, float, float, float],
                 config: ServerConfig | None = None,
                 latency_model: LatencyModel | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.bounds = tuple(float(value) for value in bounds)
        self.estimator = LocationEstimator(bounds, self.config.localizer)
        self.latency_model = latency_model if latency_model is not None else LatencyModel()
        self._last_processing_s: float | None = None

    def warm_geometry_caches(self,
                             ap_positions: Sequence[tuple[float, float]]) -> int:
        """Precompute the bearing grids of the given AP positions.

        The per-AP bearing tables normally build lazily on the first batch
        that references an AP; a process-backend worker calls this from its
        initializer so every worker pays the arctan2 sweeps once, before
        the first real shard arrives.  Returns the number of grids warmed.
        """
        from repro.core.cache import default_bearing_cache

        return default_bearing_cache().warm(
            self.bounds, self.config.localizer.grid_resolution_m,
            ap_positions)

    # ------------------------------------------------------------------
    # Spectra-level API
    # ------------------------------------------------------------------
    def localize_spectra(self, spectra_by_ap: Mapping[str, Sequence[AoASpectrum]],
                         client_id: str = "") -> LocationEstimate:
        """Deprecated: use :meth:`repro.api.ArrayTrackService.localize`.

        This entry point predates the service facade and remains as a thin
        shim over the same internal path the facade uses, so its results
        are bit-for-bit identical to ``ArrayTrackService.localize``.
        """
        warnings.warn(
            "ArrayTrackServer.localize_spectra() is deprecated; use "
            "repro.api.ArrayTrackService.localize() (see docs/api.md)",
            DeprecationWarning, stacklevel=2)
        return self._localize_spectra(spectra_by_ap, client_id)

    def _localize_spectra(self, spectra_by_ap: Mapping[str, Sequence[AoASpectrum]],
                          client_id: str = "") -> LocationEstimate:
        """Localize a client from per-AP lists of AoA spectra.

        Each AP contributes one processed spectrum: when multipath
        suppression is enabled and the AP captured multiple frames close in
        time, the suppressed primary is used; otherwise the AP's first
        spectrum passes through unchanged (step 1 of the Figure 8
        algorithm).
        """
        processed = self._process_per_ap(spectra_by_ap)
        if not processed:
            raise EstimationError("no AoA spectra supplied for localization")
        start = time.perf_counter() if self.config.measure_processing_time else None
        estimate = self.estimator.estimate(processed, client_id=client_id)
        if start is not None:
            self._last_processing_s = time.perf_counter() - start
        return estimate

    def localize_batch(self,
                       spectra_by_client: Mapping[str, Mapping[str, Sequence[AoASpectrum]]]
                       ) -> dict[str, LocationEstimate]:
        """Localize many clients in one vectorized synthesis pass.

        Parameters
        ----------
        spectra_by_client:
            For every client id, the same per-AP spectra mapping that
            :meth:`localize_spectra` takes.  Multipath suppression runs per
            client and per AP exactly as in the single-client path.

        Returns
        -------
        dict
            One :class:`~repro.core.localizer.LocationEstimate` per client,
            identical to calling :meth:`localize_spectra` per client but
            sharing the bearing-grid work and the stacked Equation 8
            evaluation across the whole batch.

        Raises
        ------
        EstimationError
            If the batch is empty or any client contributes no spectra.
        """
        if not spectra_by_client:
            raise EstimationError("no clients supplied for batch localization")
        return self.synthesize_batch(
            {client_id: self._process_per_ap(spectra_by_ap)
             for client_id, spectra_by_ap in spectra_by_client.items()})

    def synthesize_batch(self,
                         spectra_by_client: Mapping[str, Sequence[AoASpectrum]]
                         ) -> dict[str, LocationEstimate]:
        """Synthesize already-processed spectra into one fix per client.

        This is the raw synthesis entry below :meth:`localize_batch`: the
        per-AP grouping and multipath suppression are the *caller's*
        responsibility (the streaming sessions run their own suppression
        stage on ingest-resolved timestamps before calling it), while the
        stacked Equation 8 evaluation and the processing-time measurement
        are identical to the full batch path.

        Parameters
        ----------
        spectra_by_client:
            For every client id, the flat list of spectra entering the
            synthesis (typically one suppressed primary per AP and burst).

        Raises
        ------
        EstimationError
            If the batch is empty or any client contributes no spectra.
        """
        if not spectra_by_client:
            raise EstimationError("no clients supplied for batch localization")
        processed_by_client: dict[str, list[AoASpectrum]] = {}
        for client_id, spectra in spectra_by_client.items():
            processed = list(spectra)
            if not processed:
                raise EstimationError(
                    f"no AoA spectra supplied for client {client_id!r}")
            processed_by_client[client_id] = processed
        start = time.perf_counter() if self.config.measure_processing_time else None
        estimates = self.estimator.estimate_batch(processed_by_client)
        if start is not None:
            self._last_processing_s = time.perf_counter() - start
        return estimates

    def _process_per_ap(self, spectra_by_ap: Mapping[str, Sequence[AoASpectrum]]
                        ) -> list[AoASpectrum]:
        processed: list[AoASpectrum] = []
        for ap_id, spectra in spectra_by_ap.items():
            spectra = list(spectra)
            if not spectra:
                continue
            if self.config.enable_multipath_suppression and len(spectra) >= 2:
                outputs = self.config.suppressor.process(spectra)
                # One output per time group; use the first group's primary,
                # which corresponds to the most recent burst of frames.
                processed.append(outputs[0])
            else:
                processed.append(spectra[0])
        return processed

    # ------------------------------------------------------------------
    # AP-level API
    # ------------------------------------------------------------------
    def localize_client(self, aps: Sequence[ArrayTrackAP],
                        client_id: str) -> LocationEstimate:
        """Localize ``client_id`` from the frames currently buffered at ``aps``."""
        if not aps:
            raise ConfigurationError("need at least one AP to localize")
        spectra_by_ap: dict[str, list[AoASpectrum]] = {}
        for ap in aps:
            spectra = ap.spectra_for_client(client_id)
            if spectra:
                spectra_by_ap[ap.ap_id] = spectra
        return self._localize_spectra(spectra_by_ap, client_id=client_id)

    def collect_buffered(self, aps: Sequence[ArrayTrackAP],
                         client_ids: Sequence[str]
                         ) -> dict[str, dict[str, list[AoASpectrum]]]:
        """Gather the buffered per-AP spectra of every requested client.

        This is the collection half of :meth:`localize_clients`, exposed
        separately so the service facade can shard the resulting batch
        across workers while keeping one definition of which frames enter
        a buffered sweep.  Each AP computes the spectra of *all* requested
        clients' pending frames in one batched Section 2.3 frontend pass
        (:meth:`~repro.ap.access_point.ArrayTrackAP.spectra_for_clients`),
        so a buffered sweep costs one stacked covariance/eigh/projection
        sweep per AP rather than one per frame.  Clients no AP currently
        holds frames for are omitted from the result.

        Raises
        ------
        ConfigurationError
            If ``aps`` is empty.
        EstimationError
            If none of the requested clients has any buffered frames.
        """
        if not aps:
            raise ConfigurationError("need at least one AP to localize")
        client_ids = list(client_ids)
        per_ap_spectra = [ap.spectra_for_clients(client_ids) for ap in aps]
        spectra_by_client: dict[str, dict[str, list[AoASpectrum]]] = {}
        for client_id in client_ids:
            per_ap: dict[str, list[AoASpectrum]] = {}
            for ap, ap_spectra in zip(aps, per_ap_spectra, strict=True):
                spectra = ap_spectra.get(client_id)
                if spectra:
                    per_ap[ap.ap_id] = spectra
            if per_ap:
                spectra_by_client[client_id] = per_ap
        if not spectra_by_client:
            raise EstimationError(
                "none of the requested clients has any buffered frames")
        return spectra_by_client

    def localize_clients(self, aps: Sequence[ArrayTrackAP],
                         client_ids: Sequence[str]) -> dict[str, LocationEstimate]:
        """Batch-localize every client in ``client_ids`` from buffered frames.

        Clients no AP currently holds frames for (never transmitted, or
        their frames aged out of the circular buffers) are omitted from the
        result rather than failing the whole sweep; callers detect them by
        diffing the returned keys against ``client_ids``.

        Raises
        ------
        ConfigurationError
            If ``aps`` is empty.
        EstimationError
            If none of the requested clients has any buffered frames.
        """
        return self.localize_batch(self.collect_buffered(aps, client_ids))

    # ------------------------------------------------------------------
    # Latency accounting (Section 4.4)
    # ------------------------------------------------------------------
    @property
    def last_processing_s(self) -> float | None:
        """Wall-clock duration of the most recent synthesis step, if measured."""
        return self._last_processing_s

    def record_processing_time(self, seconds: float) -> None:
        """Overwrite the measured processing time of the most recent fix.

        Used by the service facade's sharded execution: each shard's own
        measurement covers only that shard, so after a parallel pass the
        facade records the wall-clock duration of the *whole* batch here,
        keeping :meth:`latency_breakdown` meaningful.
        """
        self._last_processing_s = float(seconds)

    def latency_breakdown(self, payload_bytes: int = 1500,
                          bitrate_mbps: float = 54.0,
                          use_measured_processing: bool = False) -> LatencyBreakdown:
        """Return the latency breakdown of a fix for a given frame size/rate.

        Parameters
        ----------
        use_measured_processing:
            Substitute the wall-clock time of the most recent fix for the
            paper's 100 ms Matlab processing figure.
        """
        model = self.latency_model
        if use_measured_processing and self._last_processing_s is not None:
            model = LatencyModel(
                num_snapshots=model.num_snapshots,
                num_radios=model.num_radios,
                link_throughput_bps=model.link_throughput_bps,
                bus_latency_s=model.bus_latency_s,
                processing_s=self._last_processing_s,
                bits_per_sample=model.bits_per_sample,
            )
        return model.breakdown(payload_bytes, bitrate_mbps)
