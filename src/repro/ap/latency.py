"""End-to-end latency model (Section 4.4, Figure 21).

The paper breaks ArrayTrack's response time into:

* ``T``  -- the air time of the frame (222 us to 12 ms depending on rate);
* ``Td`` -- preamble detection time (16 us: ten short + two long symbols);
* ``Tt`` -- serialization time to move the recorded samples from the WARP to
  the PC over its ~1 Mbit/s effective link (2.56 ms for 10 samples x 8
  radios x 32 bits);
* ``Tl`` -- WARP-to-PC bus latency (~30 ms on the prototype);
* ``Tp`` -- server-side processing, dominated by the synthesis / hill
  climbing step (~100 ms measured on the paper's Xeon).

Because ArrayTrack only needs the first few preamble samples, transfer and
processing overlap with the rest of the frame still being on the air, so the
latency *added* after the frame ends is ``Td + Tt + Tp - T`` (plus bus
latency), which the paper rounds to roughly 100 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    BITS_PER_SAMPLE,
    DEFAULT_NUM_SNAPSHOTS,
    PAPER_SYNTHESIS_PROCESSING_S,
    PREAMBLE_DURATION_S,
    WARP_PC_BUS_LATENCY_S,
    WARP_PC_THROUGHPUT_BPS,
)
from repro.errors import ConfigurationError
from repro.signal.packet import air_time_s

__all__ = ["LatencyModel", "LatencyBreakdown"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency components of one location fix, in seconds.

    Attributes mirror the paper's notation (Section 4.4).
    """

    air_time_s: float
    detection_s: float
    transfer_s: float
    bus_latency_s: float
    processing_s: float

    @property
    def total_from_preamble_start_s(self) -> float:
        """Latency from the start of the frame preamble to the location fix."""
        return (self.detection_s + self.transfer_s + self.bus_latency_s
                + self.processing_s)

    @property
    def added_after_frame_end_s(self) -> float:
        """Latency added after the frame leaves the air (the paper's ~100 ms).

        ``Td + Tt + Tp - T`` (bus latency excluded, as in the paper's final
        accounting); clipped at zero because a very long frame can absorb
        the whole processing pipeline while still on the air.
        """
        added = (self.detection_s + self.transfer_s + self.processing_s
                 - self.air_time_s)
        return max(added, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown as a plain dictionary (for reports)."""
        return {
            "air_time_s": self.air_time_s,
            "detection_s": self.detection_s,
            "transfer_s": self.transfer_s,
            "bus_latency_s": self.bus_latency_s,
            "processing_s": self.processing_s,
            "total_from_preamble_start_s": self.total_from_preamble_start_s,
            "added_after_frame_end_s": self.added_after_frame_end_s,
        }


@dataclass
class LatencyModel:
    """Computes latency breakdowns for the prototype's hardware constants.

    Attributes
    ----------
    num_snapshots:
        Samples recorded per radio (10 in the paper).
    num_radios:
        Radios whose samples are transferred (8 for one AP).
    link_throughput_bps:
        Effective WARP-to-PC throughput (1 Mbit/s on the prototype).
    bus_latency_s:
        WARP-to-PC bus latency (~30 ms; near zero on a PCIe platform).
    processing_s:
        Server-side processing time.  Defaults to the paper's measured
        100 ms Matlab figure; the benchmark harness can substitute the
        measured Python processing time instead.
    """

    num_snapshots: int = DEFAULT_NUM_SNAPSHOTS
    num_radios: int = 8
    link_throughput_bps: float = WARP_PC_THROUGHPUT_BPS
    bus_latency_s: float = WARP_PC_BUS_LATENCY_S
    processing_s: float = PAPER_SYNTHESIS_PROCESSING_S
    bits_per_sample: int = BITS_PER_SAMPLE

    def __post_init__(self) -> None:
        if self.num_snapshots < 1 or self.num_radios < 1:
            raise ConfigurationError("num_snapshots and num_radios must be >= 1")
        if self.link_throughput_bps <= 0:
            raise ConfigurationError("link throughput must be positive")

    @property
    def detection_s(self) -> float:
        """Preamble detection time ``Td`` (the 16 us preamble duration)."""
        return PREAMBLE_DURATION_S

    @property
    def transfer_bits(self) -> int:
        """Bits transferred to the server per frame."""
        return self.num_snapshots * self.bits_per_sample * self.num_radios

    @property
    def transfer_s(self) -> float:
        """Sample serialization time ``Tt``."""
        return self.transfer_bits / self.link_throughput_bps

    def traffic_rate_bps(self, refresh_interval_s: float = 0.1) -> float:
        """Return the backhaul traffic rate for a given location refresh rate.

        Section 4.3.3 computes 0.0256 Mbit/s for a 100 ms refresh interval.
        """
        if refresh_interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        return self.transfer_bits / refresh_interval_s

    def breakdown(self, payload_bytes: int = 1500,
                  bitrate_mbps: float = 54.0) -> LatencyBreakdown:
        """Return the latency breakdown for one frame of the given size/rate."""
        return LatencyBreakdown(
            air_time_s=air_time_s(payload_bytes, bitrate_mbps),
            detection_s=self.detection_s,
            transfer_s=self.transfer_s,
            bus_latency_s=self.bus_latency_s,
            processing_s=self.processing_s,
        )
