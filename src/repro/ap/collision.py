"""Collision handling: AoA extraction from overlapping packets (Section 4.3.5).

When two clients transmit simultaneously, ArrayTrack still recovers AoA
information for both as long as their preambles do not overlap (for two
1000-byte packets the paper puts the probability of preamble overlap at
0.6%).  The procedure is a form of successive interference cancellation in
the AoA-spectrum domain:

1. detect the first packet's preamble and compute its AoA spectrum while the
   second transmitter is still silent;
2. detect the second packet's preamble; the spectrum computed from those
   samples contains bearings of *both* transmitters (the first packet's body
   is still on the air);
3. remove the first packet's peaks from the second spectrum, leaving the
   second transmitter's bearings.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.constants import PEAK_MATCH_TOLERANCE_DEG
from repro.errors import EstimationError
from repro.channel.paths import MultipathChannel
from repro.core.peaks import find_peaks, match_peak, peak_regions
from repro.core.spectrum import AoASpectrum

__all__ = ["CollisionResolver", "merge_channels", "preamble_collision_probability"]


def merge_channels(first: MultipathChannel, second: MultipathChannel,
                   ap_id: str = "") -> MultipathChannel:
    """Return the superposition channel seen while both clients transmit.

    The AP's antennas receive the sum of both clients' signals; since
    ArrayTrack treats the transmitted content as unknown data anyway, the
    superposition is modelled as a single channel containing all components
    of both clients.
    """
    components = list(first.components) + list(second.components)
    return MultipathChannel(components,
                            client_id=f"{first.client_id}+{second.client_id}",
                            ap_id=ap_id or first.ap_id)


def preamble_collision_probability(payload_bytes: int = 1000,
                                   bitrate_mbps: float = 54.0,
                                   preamble_s: float = 16e-6) -> float:
    """Return the probability that two colliding packets' preambles overlap.

    Two packets collide when their air times overlap; given a collision, the
    preambles overlap only if the second packet starts within one preamble
    duration of the first, i.e. with probability ``preamble / air_time``
    under a uniform offset assumption.  The paper quotes 0.6% for two
    1000-byte packets.
    """
    if payload_bytes <= 0 or bitrate_mbps <= 0 or preamble_s <= 0:
        raise EstimationError("all collision parameters must be positive")
    body_s = payload_bytes * 8 / (bitrate_mbps * 1e6)
    air = body_s + preamble_s
    return min(1.0, preamble_s / air)


@dataclass
class CollisionResolver:
    """Removes the first packet's bearings from a combined AoA spectrum.

    Parameters
    ----------
    tolerance_deg:
        Angular tolerance used when matching the first packet's peaks in the
        combined spectrum.
    residual_fraction:
        Matched lobes are scaled down to this fraction rather than zeroed,
        in case the two packets genuinely share a bearing.
    min_relative_height:
        Peak detection floor.
    """

    tolerance_deg: float = PEAK_MATCH_TOLERANCE_DEG
    residual_fraction: float = 0.05
    min_relative_height: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.residual_fraction < 1.0:
            raise EstimationError("residual_fraction must be in [0, 1)")

    def cancel(self, first_spectrum: AoASpectrum,
               combined_spectrum: AoASpectrum) -> AoASpectrum:
        """Return the combined spectrum with the first packet's peaks removed."""
        if first_spectrum.angles_deg.shape != combined_spectrum.angles_deg.shape:
            raise EstimationError(
                "the two spectra must share the same angle grid")
        first_peaks = find_peaks(first_spectrum, self.min_relative_height)
        combined_peaks = find_peaks(combined_spectrum, self.min_relative_height)
        power = combined_spectrum.power.copy()
        for peak in combined_peaks:
            if match_peak(peak, first_peaks, self.tolerance_deg) is not None:
                lobe = peak_regions(combined_spectrum, peak)
                power[lobe] *= self.residual_fraction
        return combined_spectrum.copy_with_power(power)
