"""Access-point layer: detection, buffering, spectra, collisions and latency.

Models the functionality Figure 1 places at each ArrayTrack AP (packet
detection, diversity synthesis, circular buffering) plus the per-AP half of
the server pipeline and the end-to-end latency accounting of Section 4.4.
"""

from repro.ap.buffer import BufferEntry, CircularFrameBuffer
from repro.ap.access_point import APConfig, ArrayTrackAP
from repro.ap.collision import (
    CollisionResolver,
    merge_channels,
    preamble_collision_probability,
)
from repro.ap.latency import LatencyBreakdown, LatencyModel

__all__ = [
    "BufferEntry",
    "CircularFrameBuffer",
    "APConfig",
    "ArrayTrackAP",
    "CollisionResolver",
    "merge_channels",
    "preamble_collision_probability",
    "LatencyBreakdown",
    "LatencyModel",
]
