"""Circular sample buffer at the AP (Section 2.1, Figure 1).

Upon detecting a frame the AP stores the relevant preamble samples into a
circular buffer, one logical entry per detected frame.  The buffer decouples
the line-rate detection hardware from the (much slower) transfer to the
ArrayTrack server: if the server falls behind, the oldest entries are
overwritten, which is the correct behaviour for a real-time location system
(stale frames are useless).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import ConfigurationError
from repro.array.receiver import SnapshotMatrix

__all__ = ["BufferEntry", "CircularFrameBuffer"]


@dataclass(frozen=True)
class BufferEntry:
    """One logical buffer entry: the samples recorded for one detected frame.

    Attributes
    ----------
    snapshots:
        The recorded snapshot matrix (antennas x samples).
    client_id:
        Transmitter identity (known in simulation; a real AP would key on
        the transmitter MAC address after an optional partial decode).
    timestamp_s:
        Detection time of the frame.
    sequence:
        Monotonically increasing insertion counter (diagnostics only).
    """

    snapshots: SnapshotMatrix
    client_id: str
    timestamp_s: float
    sequence: int


class CircularFrameBuffer:
    """Fixed-capacity circular buffer of detected-frame samples.

    Parameters
    ----------
    capacity:
        Maximum number of frame entries retained; the oldest entry is
        overwritten when the buffer is full.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigurationError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: deque[BufferEntry] = deque(maxlen=capacity)
        self._sequence = 0
        self._overwrites = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[BufferEntry]:
        return iter(self._entries)

    @property
    def overwrites(self) -> int:
        """Number of entries lost to overwriting since creation."""
        return self._overwrites

    def push(self, snapshots: SnapshotMatrix, client_id: str,
             timestamp_s: float) -> BufferEntry:
        """Store a newly detected frame's samples and return the entry."""
        if len(self._entries) == self.capacity:
            self._overwrites += 1
        entry = BufferEntry(snapshots=snapshots, client_id=client_id,
                            timestamp_s=timestamp_s, sequence=self._sequence)
        self._sequence += 1
        self._entries.append(entry)
        return entry

    def entries_for_client(self, client_id: str) -> list[BufferEntry]:
        """Return the buffered entries for one client, oldest first."""
        return [entry for entry in self._entries if entry.client_id == client_id]

    def latest(self, count: int = 1) -> list[BufferEntry]:
        """Return the most recent ``count`` entries, oldest first."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        entries = list(self._entries)
        return entries[-count:]

    def drain(self) -> list[BufferEntry]:
        """Return all entries and empty the buffer (the transfer to the server)."""
        entries = list(self._entries)
        self._entries.clear()
        return entries

    def clear(self) -> None:
        """Discard every buffered entry."""
        self._entries.clear()
