"""The ArrayTrack access point: detection, buffering and spectrum generation.

An :class:`ArrayTrackAP` bundles everything Figure 1 places at the AP and the
front half of the server pipeline:

* a deployed antenna array (eight-antenna linear row, optionally with the
  ninth off-row antenna reached through diversity synthesis, Section 2.3.4);
* per-radio oscillator phase offsets and their calibration (Section 3);
* packet detection (Section 2.1) -- exercised at the waveform level by the
  robustness experiments, and skipped (perfect detection assumed) by the
  large localization sweeps where only the AoA math matters;
* a circular frame buffer (Section 2.1);
* per-frame AoA spectrum computation (Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.constants import DEFAULT_NUM_SNAPSHOTS, WAVELENGTH_M
from repro.errors import ConfigurationError
from repro.array.calibration import PhaseCalibrator
from repro.array.deployment import DeployedArray
from repro.array.diversity import DiversitySynthesizer
from repro.array.geometry import ArrayGeometry
from repro.array.receiver import ArrayReceiver, SnapshotMatrix
from repro.ap.buffer import BufferEntry, CircularFrameBuffer
from repro.channel.paths import MultipathChannel
from repro.core.pipeline import SpectrumComputer, SpectrumConfig
from repro.core.spectrum import AoASpectrum
from repro.geometry.vector import Point2D

__all__ = ["APConfig", "ArrayTrackAP"]


@dataclass
class APConfig:
    """Configuration of one ArrayTrack access point.

    Attributes
    ----------
    num_antennas:
        Number of antennas in the linear row used for MUSIC (4, 6 or 8 in
        the Figure 16 sweep).
    use_symmetry_antenna:
        Include the ninth off-row antenna (via diversity synthesis) and use
        it to resolve the linear array's mirror ambiguity.
    snapshots_per_frame:
        Raw time samples recorded per frame (10 in the paper).
    snr_db:
        Nominal per-antenna capture SNR used when the caller does not
        specify one per frame.
    buffer_capacity:
        Circular buffer depth, in frames.
    spectrum:
        Per-frame spectrum pipeline configuration (smoothing, weighting...).
    apply_phase_offsets:
        Model uncalibrated radio phase offsets (and their calibration);
        turning this off yields an idealized AP for unit tests.
    """

    num_antennas: int = 8
    use_symmetry_antenna: bool = True
    snapshots_per_frame: int = DEFAULT_NUM_SNAPSHOTS
    snr_db: float = 25.0
    buffer_capacity: int = 64
    spectrum: SpectrumConfig = field(default_factory=SpectrumConfig)
    apply_phase_offsets: bool = True

    def __post_init__(self) -> None:
        if self.num_antennas < 2:
            raise ConfigurationError("an AP needs at least two antennas")
        if self.snapshots_per_frame < 1:
            raise ConfigurationError("snapshots_per_frame must be >= 1")


class ArrayTrackAP:
    """A multi-antenna access point participating in ArrayTrack.

    Parameters
    ----------
    ap_id:
        Identifier used in spectra and reports ("1" .. "6" in Figure 12).
    position:
        AP position in building coordinates.
    orientation_deg:
        Orientation of the antenna row in the building frame.
    config:
        AP configuration (defaults follow the paper's prototype).
    rng:
        Random generator used for the radio phase offsets and captures.
    wavelength_m:
        Carrier wavelength.
    """

    def __init__(self, ap_id: str, position: Point2D, orientation_deg: float = 0.0,
                 config: APConfig | None = None,
                 rng: np.random.Generator | None = None,
                 wavelength_m: float = WAVELENGTH_M) -> None:
        self.ap_id = ap_id
        self.config = config if config is not None else APConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        geometry = self._build_geometry()
        phase_offsets = (DeployedArray.random_phase_offsets(geometry.num_elements,
                                                            self._rng)
                         if self.config.apply_phase_offsets
                         else np.zeros(geometry.num_elements))
        self.array = DeployedArray(
            geometry=geometry, position=position,
            orientation_deg=orientation_deg,
            phase_offsets_rad=phase_offsets, wavelength_m=wavelength_m)
        self.buffer = CircularFrameBuffer(self.config.buffer_capacity)
        self._spectrum_computer = SpectrumComputer(self.config.spectrum)
        self._calibration_offsets = np.zeros(geometry.num_elements)
        self._calibrated = not self.config.apply_phase_offsets
        if self.config.apply_phase_offsets:
            self.calibrate()
        self.warm_spectrum_caches()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_geometry(self) -> ArrayGeometry:
        if self.config.use_symmetry_antenna:
            return ArrayGeometry.linear_with_symmetry_antenna(self.config.num_antennas)
        return ArrayGeometry.uniform_linear(self.config.num_antennas)

    @property
    def linear_indices(self) -> list[int]:
        """Snapshot rows forming the uniform linear array."""
        return list(range(self.config.num_antennas))

    @property
    def position(self) -> Point2D:
        """AP position in building coordinates."""
        return self.array.position

    @property
    def is_calibrated(self) -> bool:
        """True once the phase calibration has been run (or is unnecessary)."""
        return self._calibrated

    # ------------------------------------------------------------------
    # Calibration (Section 3)
    # ------------------------------------------------------------------
    def calibrate(self, calibrator: PhaseCalibrator | None = None) -> np.ndarray:
        """Run the two-run phase calibration and store the estimated offsets.

        Returns the estimated per-radio offsets (relative to radio 0).
        """
        if calibrator is None:
            calibrator = PhaseCalibrator(self.array.num_elements, rng=self._rng)
        result = calibrator.calibrate(self.array)
        # Reference the estimate to radio 0, exactly like the measurement.
        estimate = result.internal_offsets_rad - result.internal_offsets_rad[0]
        self._calibration_offsets = estimate
        self._calibrated = True
        return estimate

    def _compensate(self, snapshots: SnapshotMatrix) -> SnapshotMatrix:
        """Subtract the calibrated phase offsets from the raw samples."""
        if not self.config.apply_phase_offsets:
            return snapshots
        correction = np.exp(-1j * self._calibration_offsets)[:, None]
        return SnapshotMatrix(snapshots.samples * correction,
                              snr_db=snapshots.snr_db,
                              client_id=snapshots.client_id,
                              ap_id=snapshots.ap_id,
                              timestamp_s=snapshots.timestamp_s)

    # ------------------------------------------------------------------
    # Frame capture (Sections 2.1-2.2)
    # ------------------------------------------------------------------
    def overhear(self, channel: MultipathChannel, timestamp_s: float = 0.0,
                 snr_db: float | None = None,
                 num_snapshots: int | None = None,
                 rng: np.random.Generator | None = None) -> BufferEntry:
        """Capture one frame arriving over ``channel`` and buffer its samples.

        The diversity synthesis mechanism records the linear row during the
        first long training symbol and the ninth antenna (when configured)
        during the second, yielding one snapshot matrix covering all
        antennas (Section 2.2).
        """
        snr = self.config.snr_db if snr_db is None else snr_db
        snapshots = self.config.snapshots_per_frame if num_snapshots is None \
            else num_snapshots
        rng = rng if rng is not None else self._rng
        channel = MultipathChannel(list(channel.components),
                                   client_id=channel.client_id or "",
                                   ap_id=self.ap_id)
        if self.config.use_symmetry_antenna:
            synthesizer = DiversitySynthesizer(
                self.array,
                primary_indices=self.linear_indices,
                secondary_indices=[self.config.num_antennas])
            capture = synthesizer.capture(channel, snapshots, snr, rng, timestamp_s,
                                          self.config.apply_phase_offsets)
        else:
            receiver = ArrayReceiver(self.array, self.config.apply_phase_offsets)
            capture = receiver.capture(channel, snapshots, snr,
                                       rng=rng, timestamp_s=timestamp_s)
        return self.buffer.push(capture, channel.client_id, timestamp_s)

    # ------------------------------------------------------------------
    # Spectrum computation (Section 2.3)
    # ------------------------------------------------------------------
    def warm_spectrum_caches(self) -> None:
        """Precompute the steering matrices this AP's spectra will use.

        The Equation 6 steering continuum depends only on the (static)
        antenna geometry, angle grid and carrier, so it is computed once and
        served from the shared :class:`~repro.core.cache.SteeringCache` for
        every subsequent frame.  Called at construction; a fleet of APs with
        identical :class:`APConfig` shares the same cache entries, so the
        per-AP cost after the first AP is a dictionary lookup.
        """
        full_indices = list(range(self.array.num_elements)) \
            if self.config.use_symmetry_antenna else None
        self._spectrum_computer.warm_caches(self.array, self.linear_indices,
                                            full_indices)

    def compute_spectrum(self, entry: BufferEntry) -> AoASpectrum:
        """Return the AoA spectrum for one buffered frame."""
        snapshots = self._compensate(entry.snapshots)
        if self.config.use_symmetry_antenna:
            return self._spectrum_computer.compute_with_symmetry(
                snapshots, self.array, self.linear_indices)
        return self._spectrum_computer.compute(snapshots, self.array,
                                               self.linear_indices)

    def compute_spectra(self, entries: Sequence[BufferEntry]
                        ) -> list[AoASpectrum]:
        """Return the AoA spectra of many buffered frames in one batched pass.

        The AP-level entry point of the vectorized Section 2.3 frontend:
        the entries' calibrated snapshots enter
        :meth:`~repro.core.pipeline.SpectrumComputer.compute_many` (or its
        symmetry-resolving sibling) as one stack, so the whole batch costs
        one covariance/eigh/projection sweep instead of one per frame.
        Entries whose captures differ in snapshot shape (e.g. a Figure 19
        sample-count sweep left mixed frames in the buffer) are grouped by
        shape and batched per group.  Results are returned in input order
        and are bit-for-bit identical to :meth:`compute_spectrum` per
        entry.
        """
        entries = list(entries)
        if not entries:
            return []
        if not self.config.spectrum.vectorized_frontend:
            # The serial reference path, frame by frame.
            return [self.compute_spectrum(entry) for entry in entries]
        groups: dict[tuple[int, int], list[int]] = {}
        for index, entry in enumerate(entries):
            groups.setdefault(entry.snapshots.samples.shape, []).append(index)
        spectra: list[AoASpectrum | None] = [None] * len(entries)
        for indices in groups.values():
            stack = np.stack([entries[index].snapshots.samples
                              for index in indices])
            if self.config.apply_phase_offsets:
                # All frames' phase offsets compensated in one broadcast
                # multiply (elementwise identical to per-frame
                # ``_compensate``).
                correction = np.exp(-1j * self._calibration_offsets)[:, None]
                stack = stack * correction[None, :, :]
            metadata = [entries[index].snapshots for index in indices]
            if self.config.use_symmetry_antenna:
                outputs = self._spectrum_computer.compute_many_with_symmetry_stacked(
                    stack, metadata, self.array, self.linear_indices)
            else:
                outputs = self._spectrum_computer.compute_many_stacked(
                    stack, metadata, self.array, self.linear_indices)
            for index, spectrum in zip(indices, outputs, strict=True):
                spectra[index] = spectrum
        return spectra  # type: ignore[return-value]

    def spectra_for_client(self, client_id: str) -> list[AoASpectrum]:
        """Return spectra for every buffered frame of ``client_id``.

        All of the client's buffered frames run through the batched
        frontend in one :meth:`compute_spectra` call.
        """
        return self.compute_spectra(self.buffer.entries_for_client(client_id))

    def spectra_for_clients(self, client_ids: Sequence[str]
                            ) -> dict[str, list[AoASpectrum]]:
        """Return per-client spectra for every requested client's frames.

        All requested clients' buffered frames are stacked into *one*
        batched frontend pass (the per-AP collection step of
        :meth:`repro.server.backend.ArrayTrackServer.collect_buffered`),
        then split back per client.  Clients without buffered frames are
        omitted.
        """
        entries_by_client = {
            client_id: self.buffer.entries_for_client(client_id)
            for client_id in client_ids}
        flat = [entry for client_id in client_ids
                for entry in entries_by_client[client_id]]
        spectra = self.compute_spectra(flat)
        result: dict[str, list[AoASpectrum]] = {}
        cursor = 0
        for client_id in client_ids:
            count = len(entries_by_client[client_id])
            if count:
                result[client_id] = spectra[cursor:cursor + count]
            cursor += count
        return result

    def clear(self) -> None:
        """Drop all buffered frames (between experiment runs)."""
        self.buffer.clear()
