"""The audited dtype-promotion boundary of the library.

Every public entry point that used to write ``np.asarray(x, dtype=float)``
or ``np.asarray(x, dtype=np.complex128)`` now funnels through these two
helpers, which preserve the caller's *precision* instead of silently
forcing full width:

* floating input keeps its dtype (``float32`` stays ``float32``,
  ``complex64`` stays ``complex64``);
* everything else (ints, bools, Python lists) promotes to the full-width
  default exactly as the old coercions did, so existing callers see
  bit-identical behavior.

This is the precondition for ROADMAP item 2's opt-in float32 fast path:
once inputs can carry a narrow dtype end to end, the covariance/eigh/GEMM
stack runs at half the memory bandwidth without any per-call flag.  The
repro-lint numerics pass (RPR013, ``dtype_surface``) models calls to these
helpers as dtype-preserving and treats the pins *inside* them as the one
audited promotion decision of the library.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_complex_array", "as_float_array", "complex_dtype_for"]


def complex_dtype_for(dtype: np.dtype) -> np.dtype:
    """Complex dtype matching the precision of ``dtype``.

    ``float32``/``complex64`` map to ``complex64``; everything else maps to
    ``complex128`` (the historical default).
    """
    if dtype == np.complex64 or dtype == np.float32:
        return np.dtype(np.complex64)
    return np.dtype(np.complex128)


def as_float_array(values: object) -> np.ndarray:
    """``np.asarray`` preserving floating precision.

    Floating input (``float16``/``float32``/``float64``) is passed through
    unchanged; anything else is converted to ``float64``, matching the old
    ``np.asarray(values, dtype=float)`` coercion bit for bit.
    """
    array = np.asarray(values)
    if array.dtype.kind == "f":
        return array
    return np.asarray(array, dtype=np.float64)


def as_complex_array(values: object) -> np.ndarray:
    """``np.asarray`` preserving complex precision.

    Complex input keeps its dtype; real floating input is widened to the
    complex dtype of the *same* precision (``float32`` -> ``complex64``);
    anything else becomes ``complex128``, matching the old
    ``np.asarray(values, dtype=np.complex128)`` coercion bit for bit.
    """
    array = np.asarray(values)
    if array.dtype.kind == "c":
        return array
    return np.asarray(array, dtype=complex_dtype_for(array.dtype))
