"""Building material models for reflection and transmission of 2.4 GHz WiFi.

The ArrayTrack testbed (Section 4, Figure 12) is a busy office containing
drywall offices, glass and wood partitions, metal and plastic surfaces, and
concrete pillars that completely block the direct path to some clients.  The
ray tracer needs two quantities per surface:

* an amplitude *reflection coefficient* (how much of the field reflects
  specularly off the surface), and
* a *transmission loss* in dB (how much the field is attenuated when the
  direct or reflected path passes through the obstacle).

The values below are representative numbers from the indoor-propagation
literature (e.g. Rappaport, "Wireless Communications"); the experiments only
rely on their ordering (metal reflects strongly, concrete attenuates heavily,
glass/plasterboard are comparatively transparent).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Material", "MATERIALS", "get_material"]


@dataclass(frozen=True)
class Material:
    """Electromagnetic behaviour of a building surface at 2.4 GHz.

    Attributes
    ----------
    name:
        Human-readable material name (also the registry key).
    reflection_coefficient:
        Amplitude ratio of the specularly reflected field, in ``[0, 1]``.
    transmission_loss_db:
        Attenuation, in dB, applied to a path that penetrates the surface.
    """

    name: str
    reflection_coefficient: float
    transmission_loss_db: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflection_coefficient <= 1.0:
            raise ValueError(
                "reflection_coefficient must be in [0, 1], got "
                f"{self.reflection_coefficient!r}")
        if self.transmission_loss_db < 0:
            raise ValueError(
                "transmission_loss_db must be non-negative, got "
                f"{self.transmission_loss_db!r}")

    @property
    def transmission_amplitude(self) -> float:
        """Amplitude scale factor of a path crossing through this material."""
        return 10.0 ** (-self.transmission_loss_db / 20.0)


#: Registry of the materials appearing in the testbed floorplan.
MATERIALS: dict[str, Material] = {
    "drywall": Material("drywall", reflection_coefficient=0.45,
                        transmission_loss_db=3.0),
    "concrete": Material("concrete", reflection_coefficient=0.75,
                         transmission_loss_db=18.0),
    "brick": Material("brick", reflection_coefficient=0.65,
                      transmission_loss_db=10.0),
    "glass": Material("glass", reflection_coefficient=0.30,
                      transmission_loss_db=2.0),
    "wood": Material("wood", reflection_coefficient=0.40,
                     transmission_loss_db=4.0),
    "metal": Material("metal", reflection_coefficient=0.95,
                      transmission_loss_db=30.0),
    "plastic": Material("plastic", reflection_coefficient=0.25,
                        transmission_loss_db=1.5),
    "cubicle": Material("cubicle", reflection_coefficient=0.30,
                        transmission_loss_db=1.0),
    # A free-standing concrete pillar: the wavefront diffracts around the
    # 30-40 cm obstruction, so the *effective* excess loss on the direct path
    # is far smaller than through a continuous concrete wall.
    "pillar": Material("pillar", reflection_coefficient=0.70,
                       transmission_loss_db=9.0),
}


def get_material(name: str) -> Material:
    """Return a registered :class:`Material` by name.

    Raises
    ------
    KeyError
        If ``name`` is not one of the registered materials.
    """
    try:
        return MATERIALS[name]
    except KeyError as exc:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(
            f"unknown material {name!r}; known materials: {known}") from exc
