"""Minimal 2-D vector/point utilities used by the floorplan and ray tracer.

The whole localization problem in the paper lives in the horizontal plane
(Appendix A treats the AP/client height difference separately), so the
geometry substrate works with plain 2-D points.  A light-weight immutable
``Point2D`` keeps the ray tracer readable; bulk math uses numpy directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import GeometryError

__all__ = [
    "Point2D",
    "distance",
    "bearing_deg",
    "normalize_angle_deg",
    "angle_difference_deg",
]


@dataclass(frozen=True)
class Point2D:
    """An immutable point (or free vector) in the plane, in metres."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point2D":
        return Point2D(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point2D":
        if scalar == 0:
            raise GeometryError("cannot divide a Point2D by zero")
        return Point2D(self.x / scalar, self.y / scalar)

    def dot(self, other: "Point2D") -> float:
        """Return the dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point2D") -> float:
        """Return the scalar (z-component) cross product with ``other``."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Return the Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point2D":
        """Return a unit vector pointing in the same direction."""
        length = self.norm()
        if length == 0:
            raise GeometryError("cannot normalize a zero-length vector")
        return Point2D(self.x / length, self.y / length)

    def perpendicular(self) -> "Point2D":
        """Return the vector rotated by +90 degrees (counter-clockwise)."""
        return Point2D(-self.y, self.x)

    def rotated(self, angle_deg: float) -> "Point2D":
        """Return the vector rotated counter-clockwise by ``angle_deg``."""
        angle = math.radians(angle_deg)
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        return Point2D(self.x * cos_a - self.y * sin_a,
                       self.x * sin_a + self.y * cos_a)

    def distance_to(self, other: "Point2D") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Point2D") -> float:
        """Return the bearing from this point to ``other`` in degrees.

        The bearing is measured counter-clockwise from the +x axis and
        normalized to ``[0, 360)``.
        """
        return bearing_deg(self, other)

    def as_tuple(self) -> tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    @staticmethod
    def from_iterable(values: Iterable[float]) -> "Point2D":
        """Build a point from any two-element iterable."""
        items = list(values)
        if len(items) != 2:
            raise GeometryError(
                f"expected exactly two coordinates, got {len(items)}")
        return Point2D(float(items[0]), float(items[1]))


def distance(a: Point2D, b: Point2D) -> float:
    """Return the Euclidean distance between points ``a`` and ``b``."""
    return a.distance_to(b)


def bearing_deg(origin: Point2D, target: Point2D) -> float:
    """Return the bearing from ``origin`` to ``target`` in degrees.

    Measured counter-clockwise from the +x axis, normalized to ``[0, 360)``.
    Raises :class:`GeometryError` if the two points coincide, because the
    bearing is then undefined.
    """
    dx = target.x - origin.x
    dy = target.y - origin.y
    if dx == 0 and dy == 0:
        raise GeometryError("bearing is undefined for coincident points")
    return normalize_angle_deg(math.degrees(math.atan2(dy, dx)))


def normalize_angle_deg(angle_deg: float) -> float:
    """Normalize an angle in degrees to the interval ``[0, 360)``."""
    normalized = angle_deg % 360.0
    # A tiny negative angle wraps to exactly 360.0 in floating point; fold it
    # back so the result is always strictly below 360.
    return 0.0 if normalized >= 360.0 else normalized


def angle_difference_deg(a_deg: float, b_deg: float) -> float:
    """Return the magnitude of the smallest rotation between two angles.

    The result is in ``[0, 180]`` degrees, which is the natural metric for
    comparing AoA peaks (Section 2.4's five-degree matching tolerance).
    """
    diff = abs(normalize_angle_deg(a_deg) - normalize_angle_deg(b_deg)) % 360.0
    return min(diff, 360.0 - diff)
