"""Floorplan container: walls, pillars and the bounding region of a building.

A :class:`Floorplan` is the static environment the ray tracer runs against.
It offers convenience constructors for simple rectangular rooms (used heavily
by unit tests and microbenchmarks) and bookkeeping helpers used by the
localization grid (bounding box, point-inside tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GeometryError
from repro.geometry.materials import Material, get_material
from repro.geometry.vector import Point2D
from repro.geometry.walls import Pillar, Wall

__all__ = ["Floorplan", "rectangular_room"]


@dataclass
class Floorplan:
    """A static 2-D indoor environment.

    Attributes
    ----------
    walls:
        Straight wall segments (outer shell plus interior partitions).
    pillars:
        Circular obstructions (concrete pillars, lift shafts).
    name:
        Human-readable identifier used in reports.
    """

    walls: list[Wall] = field(default_factory=list)
    pillars: list[Pillar] = field(default_factory=list)
    name: str = "floorplan"

    def add_wall(self, wall: Wall) -> None:
        """Append a wall segment to the floorplan."""
        self.walls.append(wall)

    def add_pillar(self, pillar: Pillar) -> None:
        """Append a circular pillar to the floorplan."""
        self.pillars.append(pillar)

    @property
    def reflective_walls(self) -> list[Wall]:
        """Walls that produce a non-negligible specular reflection."""
        return [w for w in self.walls if w.material.reflection_coefficient > 0.05]

    def bounding_box(self, margin: float = 0.0) -> tuple[float, float, float, float]:
        """Return ``(xmin, ymin, xmax, ymax)`` covering all walls and pillars.

        Parameters
        ----------
        margin:
            Extra padding, in metres, added on every side.
        """
        if not self.walls and not self.pillars:
            raise GeometryError("cannot compute the bounding box of an empty floorplan")
        xs: list[float] = []
        ys: list[float] = []
        for wall in self.walls:
            xs.extend([wall.start.x, wall.end.x])
            ys.extend([wall.start.y, wall.end.y])
        for pillar in self.pillars:
            xs.extend([pillar.center.x - pillar.radius, pillar.center.x + pillar.radius])
            ys.extend([pillar.center.y - pillar.radius, pillar.center.y + pillar.radius])
        return (min(xs) - margin, min(ys) - margin, max(xs) + margin, max(ys) + margin)

    def contains(self, point: Point2D, margin: float = 0.0) -> bool:
        """Return True if ``point`` lies within the floorplan bounding box."""
        xmin, ymin, xmax, ymax = self.bounding_box(margin)
        return xmin <= point.x <= xmax and ymin <= point.y <= ymax

    def walls_crossed(self, a: Point2D, b: Point2D,
                      exclude: Wall | None = None) -> list[Wall]:
        """Return the walls crossed by the straight segment from ``a`` to ``b``.

        Parameters
        ----------
        exclude:
            A wall to skip, typically the wall a path is reflecting off
            (the reflection point lies on it by construction).
        """
        crossed = []
        for wall in self.walls:
            if exclude is not None and wall is exclude:
                continue
            if wall.blocks(a, b):
                crossed.append(wall)
        return crossed

    def pillars_crossed(self, a: Point2D, b: Point2D) -> list[Pillar]:
        """Return the pillars whose footprint the segment from ``a`` to ``b`` crosses."""
        return [p for p in self.pillars if p.blocks(a, b)]

    def penetration_loss_db(self, a: Point2D, b: Point2D,
                            exclude: Wall | None = None) -> float:
        """Return the total through-material attenuation (dB) along ``a``-``b``."""
        loss = sum(w.material.transmission_loss_db
                   for w in self.walls_crossed(a, b, exclude=exclude))
        loss += sum(p.material.transmission_loss_db
                    for p in self.pillars_crossed(a, b))
        return loss

    def line_of_sight(self, a: Point2D, b: Point2D) -> bool:
        """Return True when nothing obstructs the direct segment ``a``-``b``."""
        if self.pillars_crossed(a, b):
            return False
        return not self.walls_crossed(a, b)

    def summary(self) -> str:
        """Return a one-line human readable summary of the floorplan."""
        xmin, ymin, xmax, ymax = self.bounding_box()
        return (f"{self.name}: {len(self.walls)} walls, {len(self.pillars)} pillars, "
                f"{xmax - xmin:.1f} m x {ymax - ymin:.1f} m")


def rectangular_room(width: float, height: float,
                     material: str | Material = "drywall",
                     origin: Point2D = Point2D(0.0, 0.0),
                     name: str = "room") -> Floorplan:
    """Build a simple axis-aligned rectangular room.

    Parameters
    ----------
    width, height:
        Interior dimensions in metres; both must be positive.
    material:
        Material of all four walls (name or :class:`Material`).
    origin:
        Lower-left corner of the room.
    name:
        Floorplan name.
    """
    if width <= 0 or height <= 0:
        raise GeometryError(
            f"room dimensions must be positive, got {width} x {height}")
    if isinstance(material, str):
        material = get_material(material)
    x0, y0 = origin.x, origin.y
    corners = [
        Point2D(x0, y0),
        Point2D(x0 + width, y0),
        Point2D(x0 + width, y0 + height),
        Point2D(x0, y0 + height),
    ]
    sides = ["south", "east", "north", "west"]
    walls = [
        Wall(corners[i], corners[(i + 1) % 4], material, name=f"{name}-{sides[i]}")
        for i in range(4)
    ]
    return Floorplan(walls=walls, name=name)
