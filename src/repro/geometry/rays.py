"""Image-source ray tracing: enumerate propagation paths between two points.

The ray tracer produces the *geometric* description of every path from a
transmitter (client) to a receiver (AP): path length, angle of arrival at the
receiver, number of reflections, and the per-path amplitude attenuation that
results from reflections and through-wall/pillar penetration.  The channel
substrate (:mod:`repro.channel`) converts these into complex path gains.

Only first- and second-order specular reflections are enumerated: in a
cluttered office, higher-order reflections are far below the strongest
reflected paths and do not change the behaviour of the AoA pipeline (they
add small extra peaks that the multipath suppression step removes anyway).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.floorplan import Floorplan
from repro.geometry.vector import Point2D, bearing_deg
from repro.geometry.walls import Wall, reflection_point

__all__ = ["PropagationPath", "RayTracer", "trace_paths"]


@dataclass(frozen=True)
class PropagationPath:
    """A single geometric propagation path from a source to a destination.

    Attributes
    ----------
    vertices:
        The polyline of the path, from source to destination (inclusive).
    length:
        Total path length in metres.
    arrival_bearing_deg:
        Bearing, in global coordinates (degrees counter-clockwise from +x),
        of the direction *from the receiver towards the last path vertex* —
        i.e. the direction the signal arrives from as seen at the receiver.
    num_reflections:
        Number of specular wall bounces along the path (0 = direct path).
    attenuation_db:
        Total non-free-space attenuation (reflection loss + penetration
        loss) in dB.  Free-space spreading loss is applied by the channel
        model from ``length``.
    is_direct:
        True when the path is the direct (possibly obstructed) path.
    blocked:
        True when the direct path crosses at least one wall or pillar; the
        path still carries energy, attenuated by the materials crossed.
    reflecting_walls:
        Names of the walls the path reflects off, in order.
    """

    vertices: tuple[Point2D, ...]
    length: float
    arrival_bearing_deg: float
    num_reflections: int
    attenuation_db: float
    is_direct: bool
    blocked: bool = False
    reflecting_walls: tuple[str, ...] = ()

    @property
    def attenuation_amplitude(self) -> float:
        """Amplitude scale factor corresponding to ``attenuation_db``."""
        return 10.0 ** (-self.attenuation_db / 20.0)


class RayTracer:
    """Enumerates direct and specular-reflection paths through a floorplan.

    Parameters
    ----------
    floorplan:
        The static environment.
    max_reflections:
        Maximum specular reflection order to enumerate (0, 1 or 2).
    max_penetration_db:
        Paths attenuated by more than this (excluding free-space loss) are
        dropped: they are too weak to produce a visible AoA peak.
    """

    def __init__(self, floorplan: Floorplan, max_reflections: int = 2,
                 max_penetration_db: float = 55.0) -> None:
        if max_reflections < 0 or max_reflections > 2:
            raise GeometryError(
                f"max_reflections must be 0, 1 or 2, got {max_reflections}")
        self.floorplan = floorplan
        self.max_reflections = max_reflections
        self.max_penetration_db = max_penetration_db

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def trace(self, source: Point2D, destination: Point2D) -> list[PropagationPath]:
        """Return all propagation paths from ``source`` to ``destination``.

        The direct path is always returned first (even when obstructed, it
        is attenuated rather than removed, unless the attenuation exceeds
        ``max_penetration_db``).  Reflected paths follow, strongest order
        first.
        """
        if source.distance_to(destination) < 1e-9:
            raise GeometryError("source and destination coincide; no paths exist")
        paths: list[PropagationPath] = []
        direct = self._direct_path(source, destination)
        if direct is not None:
            paths.append(direct)
        if self.max_reflections >= 1:
            paths.extend(self._first_order_paths(source, destination))
        if self.max_reflections >= 2:
            paths.extend(self._second_order_paths(source, destination))
        return paths

    # ------------------------------------------------------------------
    # Direct path
    # ------------------------------------------------------------------
    def _direct_path(self, source: Point2D,
                     destination: Point2D) -> PropagationPath | None:
        penetration = self.floorplan.penetration_loss_db(source, destination)
        blocked = penetration > 0
        if penetration > self.max_penetration_db:
            return None
        bearing = bearing_deg(destination, source)
        return PropagationPath(
            vertices=(source, destination),
            length=source.distance_to(destination),
            arrival_bearing_deg=bearing,
            num_reflections=0,
            attenuation_db=penetration,
            is_direct=True,
            blocked=blocked,
        )

    # ------------------------------------------------------------------
    # First-order reflections
    # ------------------------------------------------------------------
    def _first_order_paths(self, source: Point2D,
                           destination: Point2D) -> list[PropagationPath]:
        paths = []
        for wall in self.floorplan.reflective_walls:
            path = self._reflect_once(source, destination, wall)
            if path is not None:
                paths.append(path)
        return paths

    def _reflect_once(self, source: Point2D, destination: Point2D,
                      wall: Wall) -> PropagationPath | None:
        point = reflection_point(wall, source, destination)
        if point is None:
            return None
        # Attenuation: one reflection plus penetration along both legs.
        reflection_loss = -20.0 * math.log10(
            max(wall.material.reflection_coefficient, 1e-6))
        penetration = (
            self.floorplan.penetration_loss_db(source, point, exclude=wall)
            + self.floorplan.penetration_loss_db(point, destination, exclude=wall))
        total = reflection_loss + penetration
        if total > self.max_penetration_db:
            return None
        length = source.distance_to(point) + point.distance_to(destination)
        bearing = bearing_deg(destination, point)
        return PropagationPath(
            vertices=(source, point, destination),
            length=length,
            arrival_bearing_deg=bearing,
            num_reflections=1,
            attenuation_db=total,
            is_direct=False,
            reflecting_walls=(wall.name,),
        )

    # ------------------------------------------------------------------
    # Second-order reflections
    # ------------------------------------------------------------------
    def _second_order_paths(self, source: Point2D,
                            destination: Point2D) -> list[PropagationPath]:
        paths = []
        walls = self.floorplan.reflective_walls
        for first in walls:
            image1 = first.mirror_point(source)
            for second in walls:
                if second is first:
                    continue
                path = self._reflect_twice(source, destination, first, second, image1)
                if path is not None:
                    paths.append(path)
        # Keep only the strongest few second-order paths: they contribute
        # minor peaks and keeping all of them is computationally wasteful.
        paths.sort(key=lambda p: p.attenuation_db)
        return paths[:4]

    def _reflect_twice(self, source: Point2D, destination: Point2D,
                       first: Wall, second: Wall,
                       image1: Point2D) -> PropagationPath | None:
        image2 = second.mirror_point(image1)
        # Specular point on the second wall, seen from the destination.
        point2 = second.intersection_with_segment(image2, destination)
        if point2 is None:
            return None
        # Specular point on the first wall, on the segment image1 -> point2.
        point1 = first.intersection_with_segment(image1, point2)
        if point1 is None:
            return None
        if point1.distance_to(point2) < 1e-6:
            return None
        reflection_loss = -20.0 * math.log10(
            max(first.material.reflection_coefficient, 1e-6))
        reflection_loss += -20.0 * math.log10(
            max(second.material.reflection_coefficient, 1e-6))
        penetration = (
            self.floorplan.penetration_loss_db(source, point1, exclude=first)
            + self.floorplan.penetration_loss_db(point1, point2, exclude=first)
            + self.floorplan.penetration_loss_db(point2, destination, exclude=second))
        # Avoid double-counting: the middle leg touches both walls.
        total = reflection_loss + penetration
        if total > self.max_penetration_db:
            return None
        length = (source.distance_to(point1) + point1.distance_to(point2)
                  + point2.distance_to(destination))
        bearing = bearing_deg(destination, point2)
        return PropagationPath(
            vertices=(source, point1, point2, destination),
            length=length,
            arrival_bearing_deg=bearing,
            num_reflections=2,
            attenuation_db=total,
            is_direct=False,
            reflecting_walls=(first.name, second.name),
        )


def trace_paths(floorplan: Floorplan, source: Point2D, destination: Point2D,
                max_reflections: int = 2) -> list[PropagationPath]:
    """Convenience wrapper: trace paths with a throw-away :class:`RayTracer`."""
    return RayTracer(floorplan, max_reflections=max_reflections).trace(
        source, destination)
