"""Geometric substrate: 2-D vectors, walls, floorplans and ray tracing.

The geometry package provides the static indoor environment that the channel
simulator (:mod:`repro.channel`) propagates signals through.  It replaces the
physical office building used in the paper's testbed (Figure 12).
"""

from repro.geometry.vector import (
    Point2D,
    angle_difference_deg,
    bearing_deg,
    distance,
    normalize_angle_deg,
)
from repro.geometry.materials import MATERIALS, Material, get_material
from repro.geometry.walls import Pillar, Wall, reflection_point
from repro.geometry.floorplan import Floorplan, rectangular_room
from repro.geometry.rays import PropagationPath, RayTracer, trace_paths

__all__ = [
    "Point2D",
    "angle_difference_deg",
    "bearing_deg",
    "distance",
    "normalize_angle_deg",
    "MATERIALS",
    "Material",
    "get_material",
    "Pillar",
    "Wall",
    "reflection_point",
    "Floorplan",
    "rectangular_room",
    "PropagationPath",
    "RayTracer",
    "trace_paths",
]
