"""Wall segments, pillars and intersection predicates for the ray tracer.

The floorplan is a collection of straight wall segments (with a material) and
circular concrete pillars.  The ray tracer needs three geometric operations:

* segment/segment intersection (does a propagation path cross a wall?),
* mirroring a point across a wall's supporting line (image-source method for
  specular reflections), and
* segment/circle intersection (is the path blocked by a pillar?).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GeometryError
from repro.geometry.materials import Material, get_material
from repro.geometry.vector import Point2D

__all__ = ["Wall", "Pillar", "segments_intersect", "segment_circle_intersects"]

_EPS = 1e-9


@dataclass(frozen=True)
class Wall:
    """A straight wall segment with an associated building material.

    Attributes
    ----------
    start, end:
        Segment endpoints in metres.
    material:
        A :class:`~repro.geometry.materials.Material`; accepts a material
        name for convenience.
    name:
        Optional label used in floorplan inventories and debugging output.
    """

    start: Point2D
    end: Point2D
    material: Material = field(default_factory=lambda: get_material("drywall"))
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.material, str):
            object.__setattr__(self, "material", get_material(self.material))
        if self.start.distance_to(self.end) < _EPS:
            raise GeometryError(
                f"wall {self.name or '(unnamed)'} is degenerate: "
                f"{self.start} -> {self.end}")

    @property
    def length(self) -> float:
        """Length of the wall segment in metres."""
        return self.start.distance_to(self.end)

    @property
    def direction(self) -> Point2D:
        """Unit vector pointing from ``start`` to ``end``."""
        return (self.end - self.start).normalized()

    @property
    def normal(self) -> Point2D:
        """Unit normal of the wall (rotated +90 degrees from direction)."""
        return self.direction.perpendicular()

    @property
    def midpoint(self) -> Point2D:
        """Midpoint of the segment."""
        return (self.start + self.end) / 2.0

    def mirror_point(self, point: Point2D) -> Point2D:
        """Mirror ``point`` across the infinite line supporting this wall.

        This is the image-source construction: the reflection of a
        transmitter across a wall behaves, for the reflected path, like a
        virtual transmitter at the mirrored position.
        """
        direction = self.direction
        relative = point - self.start
        along = direction * relative.dot(direction)
        perpendicular = relative - along
        return point - perpendicular * 2.0

    def contains_projection(self, point: Point2D, margin: float = 0.0) -> bool:
        """Return True if ``point`` projects onto the segment (not beyond its ends)."""
        direction = self.direction
        t = (point - self.start).dot(direction)
        return -margin <= t <= self.length + margin

    def intersection_with_segment(
            self, a: Point2D, b: Point2D) -> Point2D | None:
        """Return the intersection point of segment ``a``-``b`` with this wall.

        Returns ``None`` when the segments do not intersect or are parallel.
        Touching exactly at an endpoint counts as an intersection.
        """
        return _segment_intersection(self.start, self.end, a, b)

    def blocks(self, a: Point2D, b: Point2D) -> bool:
        """Return True if the straight path from ``a`` to ``b`` crosses this wall.

        Endpoints lying exactly on the wall (e.g. the specular reflection
        point itself) do not count as blocking.
        """
        hit = self.intersection_with_segment(a, b)
        if hit is None:
            return False
        # Ignore grazing hits at the path endpoints: those arise when the
        # reflection point of the path lies on this very wall.
        if hit.distance_to(a) < 1e-6 or hit.distance_to(b) < 1e-6:
            return False
        return True


@dataclass(frozen=True)
class Pillar:
    """A circular concrete pillar that obstructs the direct path.

    The testbed description (Section 4) places some clients behind concrete
    pillars so that the direct path between AP and client is obstructed; the
    pillar model attenuates any path passing through its footprint.  The
    default material is the "pillar" entry of the registry, whose loss
    reflects diffraction around a free-standing obstruction rather than
    transmission through a solid concrete wall.
    """

    center: Point2D
    radius: float
    material: Material = field(default_factory=lambda: get_material("pillar"))
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.material, str):
            object.__setattr__(self, "material", get_material(self.material))
        if self.radius <= 0:
            raise GeometryError(
                f"pillar {self.name or '(unnamed)'} must have positive radius")

    def blocks(self, a: Point2D, b: Point2D) -> bool:
        """Return True if the segment from ``a`` to ``b`` passes through the pillar."""
        return segment_circle_intersects(a, b, self.center, self.radius)


def _segment_intersection(p1: Point2D, p2: Point2D,
                          q1: Point2D, q2: Point2D) -> Point2D | None:
    """Return the intersection point of segments ``p1p2`` and ``q1q2``."""
    r = p2 - p1
    s = q2 - q1
    denom = r.cross(s)
    if abs(denom) < _EPS:
        return None  # Parallel or collinear: treat as non-intersecting.
    qp = q1 - p1
    t = qp.cross(s) / denom
    u = qp.cross(r) / denom
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return p1 + r * t
    return None


def segments_intersect(p1: Point2D, p2: Point2D,
                       q1: Point2D, q2: Point2D) -> bool:
    """Return True if the two closed segments intersect (non-parallel case)."""
    return _segment_intersection(p1, p2, q1, q2) is not None


def segment_circle_intersects(a: Point2D, b: Point2D,
                              center: Point2D, radius: float) -> bool:
    """Return True if segment ``a``-``b`` intersects the closed disk.

    Endpoints strictly inside the disk count as an intersection; this models
    a client standing immediately behind (or inside the footprint of) a
    pillar as blocked.
    """
    ab = b - a
    length_sq = ab.dot(ab)
    if length_sq < _EPS:
        return a.distance_to(center) <= radius
    t = max(0.0, min(1.0, (center - a).dot(ab) / length_sq))
    closest = a + ab * t
    return closest.distance_to(center) <= radius


def point_segment_distance(point: Point2D, a: Point2D, b: Point2D) -> float:
    """Return the distance from ``point`` to the closed segment ``a``-``b``."""
    ab = b - a
    length_sq = ab.dot(ab)
    if length_sq < _EPS:
        return point.distance_to(a)
    t = max(0.0, min(1.0, (point - a).dot(ab) / length_sq))
    closest = a + ab * t
    return point.distance_to(closest)


def reflection_point(wall: Wall, source: Point2D,
                     destination: Point2D) -> Point2D | None:
    """Return the specular reflection point on ``wall`` for a source/destination pair.

    Uses the image-source construction: mirror the source across the wall and
    intersect the line from the image to the destination with the wall
    segment.  Returns ``None`` when no valid specular point exists on the
    finite segment (including when source and destination are on the same
    side such that the geometry degenerates).
    """
    image = wall.mirror_point(source)
    hit = wall.intersection_with_segment(image, destination)
    if hit is None:
        return None
    # The specular point must lie strictly within the wall segment (allowing
    # endpoints) and the unfolded path must have positive length on each leg.
    if hit.distance_to(image) < _EPS or hit.distance_to(destination) < _EPS:
        return None
    return hit


def _solve_quadratic(a: float, b: float, c: float) -> tuple[float, float]:
    """Return the two real roots of ``a x^2 + b x + c`` (may be NaN if none)."""
    disc = b * b - 4 * a * c
    if disc < 0 or abs(a) < _EPS:
        return (math.nan, math.nan)
    sqrt_disc = math.sqrt(disc)
    return ((-b - sqrt_disc) / (2 * a), (-b + sqrt_disc) / (2 * a))
