"""ArrayTrack reproduction: fine-grained indoor localization from AoA spectra.

This package is a from-scratch Python reproduction of "ArrayTrack: A
Fine-Grained Indoor Location System" (Xiong & Jamieson, NSDI 2013).  It
contains the paper's core contribution -- MUSIC-based AoA pseudospectra with
spatial smoothing, array geometry weighting, array symmetry removal,
multipath suppression and likelihood synthesis (:mod:`repro.core`) -- plus
every substrate the evaluation depends on: an indoor ray-tracing channel
simulator, an 802.11 preamble / packet-detection layer, a multi-antenna AP
model with diversity synthesis and phase calibration, the simulated 41-client
office testbed, RSSI baselines and the experiment harness regenerating every
table and figure of the paper.

The documented one-line import is the service facade::

    from repro import ArrayTrackConfig, ArrayTrackService

    service = ArrayTrackService(ArrayTrackConfig(bounds=testbed.bounds))
    estimate = service.localize(spectra_by_ap, "client-17")

See ``docs/api.md`` for the facade guide (streaming sessions, the
estimator registry, the config schema) and ``examples/quickstart.py`` for
the flow spelled out step by step.
"""

from importlib import import_module
from typing import TYPE_CHECKING

from repro.constants import (
    ANTENNA_SPACING_M,
    CARRIER_FREQUENCY_HZ,
    DEFAULT_NUM_SNAPSHOTS,
    DEFAULT_SPECTRUM_FLOOR,
    SAMPLE_RATE_HZ,
    WAVELENGTH_M,
)
from repro.errors import (
    ArrayError,
    ArrayTrackError,
    ChannelError,
    ConfigurationError,
    DetectionError,
    EstimationError,
    GeometryError,
    SignalError,
)

if TYPE_CHECKING:  # pragma: no cover - import-time types for tooling only
    from repro.api import (  # noqa: F401
        ArrayTrackConfig,
        ArrayTrackService,
        EstimatorSpec,
        ParallelConfig,
        ResilienceConfig,
        Session,
        SessionConfig,
        SuppressorConfig,
        TrackerConfig,
        available_estimators,
        create_baseline,
        get_estimator,
        register_estimator,
    )

__version__ = "1.1.0"

#: Facade names re-exported lazily (PEP 562) so that ``import repro`` stays
#: lightweight while ``from repro import ArrayTrackService`` works as the
#: documented one-line import.
_LAZY_EXPORTS = {
    "ArrayTrackConfig": "repro.api",
    "ArrayTrackService": "repro.api",
    "EstimatorSpec": "repro.api",
    "ParallelConfig": "repro.api",
    "ResilienceConfig": "repro.api",
    "Session": "repro.api",
    "SessionConfig": "repro.api",
    "SuppressorConfig": "repro.api",
    "TrackerConfig": "repro.api",
    "available_estimators": "repro.api",
    "create_baseline": "repro.api",
    "get_estimator": "repro.api",
    "register_estimator": "repro.api",
}

__all__ = [
    # Service facade (the documented public API)
    "ArrayTrackConfig",
    "ArrayTrackService",
    "EstimatorSpec",
    "ParallelConfig",
    "ResilienceConfig",
    "Session",
    "SessionConfig",
    "SuppressorConfig",
    "TrackerConfig",
    "available_estimators",
    "create_baseline",
    "get_estimator",
    "register_estimator",
    # Physical constants
    "ANTENNA_SPACING_M",
    "CARRIER_FREQUENCY_HZ",
    "DEFAULT_NUM_SNAPSHOTS",
    "DEFAULT_SPECTRUM_FLOOR",
    "SAMPLE_RATE_HZ",
    "WAVELENGTH_M",
    # Exception hierarchy
    "ArrayError",
    "ArrayTrackError",
    "ChannelError",
    "ConfigurationError",
    "DetectionError",
    "EstimationError",
    "GeometryError",
    "SignalError",
    # Metadata
    "__version__",
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
