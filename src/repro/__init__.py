"""ArrayTrack reproduction: fine-grained indoor localization from AoA spectra.

This package is a from-scratch Python reproduction of "ArrayTrack: A
Fine-Grained Indoor Location System" (Xiong & Jamieson, NSDI 2013).  It
contains the paper's core contribution -- MUSIC-based AoA pseudospectra with
spatial smoothing, array geometry weighting, array symmetry removal,
multipath suppression and likelihood synthesis (:mod:`repro.core`) -- plus
every substrate the evaluation depends on: an indoor ray-tracing channel
simulator, an 802.11 preamble / packet-detection layer, a multi-antenna AP
model with diversity synthesis and phase calibration, the simulated 41-client
office testbed, RSSI baselines and the experiment harness regenerating every
table and figure of the paper.

Quick start::

    from repro import quickstart
    estimate, ground_truth = quickstart.localize_one_client()

or see ``examples/quickstart.py`` for the same flow spelled out step by step.
"""

from repro.constants import (
    ANTENNA_SPACING_M,
    CARRIER_FREQUENCY_HZ,
    DEFAULT_NUM_SNAPSHOTS,
    SAMPLE_RATE_HZ,
    WAVELENGTH_M,
)
from repro.errors import (
    ArrayError,
    ArrayTrackError,
    ChannelError,
    ConfigurationError,
    DetectionError,
    EstimationError,
    GeometryError,
    SignalError,
)

__version__ = "1.0.0"

__all__ = [
    "ANTENNA_SPACING_M",
    "CARRIER_FREQUENCY_HZ",
    "DEFAULT_NUM_SNAPSHOTS",
    "SAMPLE_RATE_HZ",
    "WAVELENGTH_M",
    "ArrayError",
    "ArrayTrackError",
    "ChannelError",
    "ConfigurationError",
    "DetectionError",
    "EstimationError",
    "GeometryError",
    "SignalError",
    "__version__",
]
