"""Additive white Gaussian noise and SNR bookkeeping utilities.

ArrayTrack's robustness evaluation (Sections 4.3.3-4.3.4, Figures 19-20)
sweeps the operating SNR; every receive-side component in this library uses
the helpers below so the SNR definition is consistent everywhere: SNR is the
ratio of the mean received *signal* power to the per-sample complex noise
variance, expressed in dB.
"""

from __future__ import annotations


import numpy as np

from repro.dtypes import as_complex_array
from repro.errors import SignalError
from repro.signal.waveform import Waveform

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "noise_power_for_snr",
    "complex_awgn",
    "add_awgn",
    "measure_snr_db",
]


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return float(10.0 ** (value_db / 10.0))


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to dB.

    Raises
    ------
    SignalError
        If ``value`` is not strictly positive.
    """
    if value <= 0:
        raise SignalError(f"cannot convert non-positive power {value!r} to dB")
    return float(10.0 * np.log10(value))


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Return the complex noise variance giving ``snr_db`` for ``signal_power``."""
    if signal_power < 0:
        raise SignalError(f"signal power must be non-negative, got {signal_power!r}")
    return signal_power / db_to_linear(snr_db)


def complex_awgn(shape, noise_power: float,
                 rng: np.random.Generator | None = None) -> np.ndarray:
    """Return circularly-symmetric complex Gaussian noise with total power ``noise_power``.

    Each complex sample has variance ``noise_power`` split equally between
    the real and imaginary parts.
    """
    if noise_power < 0:
        raise SignalError(f"noise power must be non-negative, got {noise_power!r}")
    rng = rng if rng is not None else np.random.default_rng()
    scale = np.sqrt(noise_power / 2.0)
    return (rng.normal(scale=scale, size=shape)
            + 1j * rng.normal(scale=scale, size=shape))


def add_awgn(waveform: Waveform, snr_db: float,
             rng: np.random.Generator | None = None,
             reference_power: float | None = None) -> Waveform:
    """Return a copy of ``waveform`` with AWGN added at ``snr_db``.

    Parameters
    ----------
    waveform:
        The clean signal.
    snr_db:
        Desired signal-to-noise ratio in dB.
    rng:
        Numpy random generator (a fresh default generator if omitted).
    reference_power:
        Signal power to define the SNR against.  Defaults to the mean power
        of ``waveform`` itself; pass an explicit value when the waveform
        contains leading/trailing silence that should not dilute the SNR
        definition.
    """
    power = waveform.power() if reference_power is None else reference_power
    if power <= 0:
        raise SignalError("cannot add noise relative to a zero-power signal")
    noise_power = noise_power_for_snr(power, snr_db)
    noise = complex_awgn(len(waveform), noise_power, rng)
    return Waveform(waveform.samples + noise, waveform.sample_rate_hz)


def measure_snr_db(noisy: np.ndarray, clean: np.ndarray) -> float:
    """Estimate the SNR in dB of ``noisy`` given the known ``clean`` signal."""
    noisy = as_complex_array(noisy)
    clean = as_complex_array(clean)
    if noisy.shape != clean.shape:
        raise SignalError(
            f"shape mismatch: noisy {noisy.shape} vs clean {clean.shape}")
    noise = noisy - clean
    signal_power = float(np.mean(np.abs(clean) ** 2))
    noise_power = float(np.mean(np.abs(noise) ** 2))
    if noise_power == 0:
        raise SignalError("noise power is zero; SNR is unbounded")
    return linear_to_db(signal_power / noise_power)
