"""Complex-baseband waveform container and basic sample manipulation.

ArrayTrack operates directly on raw time-domain I/Q samples captured at the
AP (Section 2.1), so the signal substrate is sample-oriented: a
:class:`Waveform` is a numpy array of complex samples tagged with its sample
rate, plus the handful of operations the rest of the system needs (slicing
by time, concatenation, power measurement, resampling by integer factors).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.constants import SAMPLE_RATE_HZ
from repro.dtypes import as_complex_array
from repro.errors import SignalError

__all__ = ["Waveform"]


@dataclass
class Waveform:
    """A complex-baseband sample stream.

    Attributes
    ----------
    samples:
        One-dimensional complex numpy array of I/Q samples.
    sample_rate_hz:
        Sampling rate in samples per second.
    """

    samples: np.ndarray
    sample_rate_hz: float = SAMPLE_RATE_HZ

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.complex128)
        if samples.ndim != 1:
            raise SignalError(
                f"waveform samples must be one-dimensional, got shape {samples.shape}")
        if self.sample_rate_hz <= 0:
            raise SignalError(
                f"sample rate must be positive, got {self.sample_rate_hz!r}")
        self.samples = samples

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Duration of the waveform in seconds."""
        return len(self.samples) / self.sample_rate_hz

    @property
    def sample_period_s(self) -> float:
        """Time between consecutive samples in seconds."""
        return 1.0 / self.sample_rate_hz

    def power(self) -> float:
        """Return the mean sample power ``E[|x|^2]`` (0.0 for an empty waveform)."""
        if len(self.samples) == 0:
            return 0.0
        return float(np.mean(np.abs(self.samples) ** 2))

    def energy(self) -> float:
        """Return the total sample energy ``sum |x|^2``."""
        return float(np.sum(np.abs(self.samples) ** 2))

    def rms(self) -> float:
        """Return the root-mean-square amplitude of the waveform."""
        return float(np.sqrt(self.power()))

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def scaled(self, factor: complex) -> "Waveform":
        """Return a copy scaled by the complex factor ``factor``."""
        return Waveform(self.samples * factor, self.sample_rate_hz)

    def delayed(self, num_samples: int) -> "Waveform":
        """Return a copy delayed by ``num_samples`` (zero padded at the front)."""
        if num_samples < 0:
            raise SignalError(f"delay must be non-negative, got {num_samples}")
        padded = np.concatenate([np.zeros(num_samples, dtype=self.samples.dtype),
                                 self.samples])
        return Waveform(padded, self.sample_rate_hz)

    def slice_time(self, start_s: float, stop_s: float) -> "Waveform":
        """Return the samples between ``start_s`` and ``stop_s`` (seconds)."""
        if stop_s < start_s:
            raise SignalError("slice_time requires stop_s >= start_s")
        start = int(round(start_s * self.sample_rate_hz))
        stop = int(round(stop_s * self.sample_rate_hz))
        start = max(0, start)
        stop = min(len(self.samples), stop)
        return Waveform(self.samples[start:stop].copy(), self.sample_rate_hz)

    def slice_samples(self, start: int, stop: int) -> "Waveform":
        """Return the samples with indices in ``[start, stop)``."""
        return Waveform(self.samples[start:stop].copy(), self.sample_rate_hz)

    def concatenate(self, other: "Waveform") -> "Waveform":
        """Return this waveform followed by ``other`` (sample rates must match)."""
        if abs(other.sample_rate_hz - self.sample_rate_hz) > 1e-6:
            raise SignalError(
                "cannot concatenate waveforms with different sample rates: "
                f"{self.sample_rate_hz} vs {other.sample_rate_hz}")
        return Waveform(np.concatenate([self.samples, other.samples]),
                        self.sample_rate_hz)

    def repeated(self, times: int) -> "Waveform":
        """Return the waveform tiled ``times`` times back to back."""
        if times < 1:
            raise SignalError(f"repetition count must be >= 1, got {times}")
        return Waveform(np.tile(self.samples, times), self.sample_rate_hz)

    def upsampled(self, factor: int) -> "Waveform":
        """Return the waveform upsampled by an integer ``factor``.

        Sample-and-hold interpolation is used; for the preamble-detection
        purposes of this library the exact interpolation kernel is
        irrelevant (the detector correlates against the identically
        upsampled template).
        """
        if factor < 1:
            raise SignalError(f"upsampling factor must be >= 1, got {factor}")
        if factor == 1:
            return Waveform(self.samples.copy(), self.sample_rate_hz)
        samples = np.repeat(self.samples, factor)
        return Waveform(samples, self.sample_rate_hz * factor)

    def with_sample_rate(self, sample_rate_hz: float) -> "Waveform":
        """Return a copy re-tagged (not resampled) with a new sample rate."""
        return Waveform(self.samples.copy(), sample_rate_hz)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(num_samples: int, sample_rate_hz: float = SAMPLE_RATE_HZ) -> "Waveform":
        """Return an all-zero waveform of ``num_samples`` samples."""
        if num_samples < 0:
            raise SignalError(f"num_samples must be non-negative, got {num_samples}")
        # dtype-pinned: complex128 -- synthesized reference waveforms are full precision
        return Waveform(np.zeros(num_samples, dtype=np.complex128), sample_rate_hz)

    @staticmethod
    def from_samples(samples: Sequence[complex] | Iterable[complex],
                     sample_rate_hz: float = SAMPLE_RATE_HZ) -> "Waveform":
        """Return a waveform wrapping ``samples``."""
        return Waveform(as_complex_array(list(samples)), sample_rate_hz)

    @staticmethod
    def continuous_wave(frequency_hz: float, duration_s: float,
                        sample_rate_hz: float = SAMPLE_RATE_HZ,
                        amplitude: float = 1.0) -> "Waveform":
        """Return a complex exponential tone (used by the calibration source).

        The paper calibrates its array with a USRP2 generating a continuous
        wave tone (Section 3); this constructor provides the equivalent
        stimulus for the simulated calibration procedure.
        """
        if duration_s <= 0:
            raise SignalError(f"duration must be positive, got {duration_s}")
        num = int(round(duration_s * sample_rate_hz))
        t = np.arange(num) / sample_rate_hz
        samples = amplitude * np.exp(2j * np.pi * frequency_hz * t)
        return Waveform(samples, sample_rate_hz)
