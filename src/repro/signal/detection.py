"""Packet detection: Schmidl-Cox autocorrelation and matched-filter correlation.

Section 2.1 of the paper uses a modified Schmidl-Cox detector on the short
training symbols to sense incoming frames; Section 4.3.4 notes that by
correlating against *all* the known training symbols the AP can detect
packets at SNRs as low as -10 dB, well below what is needed to decode them.
Two detectors are provided:

* :class:`SchmidlCoxDetector` -- the classic delay-and-correlate metric
  ``M(d) = |P(d)|^2 / R(d)^2`` exploiting the periodicity of the short
  training symbols.  Robust to frequency offset, needs moderate SNR.
* :class:`MatchedFilterDetector` -- cross-correlation against the known
  training sequence ("complex conjugate with the known training symbol
  generate peaks which is very easy to be detected even at low SNR",
  Section 4.3).  This is the low-SNR workhorse used in Section 4.3.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SAMPLE_RATE_HZ
from repro.dtypes import as_complex_array
from repro.errors import DetectionError
from repro.signal.ofdm import generate_short_training_field, short_training_symbol
from repro.signal.waveform import Waveform

__all__ = [
    "DetectionResult",
    "SchmidlCoxDetector",
    "MatchedFilterDetector",
]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running a packet detector over a sample stream.

    Attributes
    ----------
    detected:
        True if at least one preamble was found.
    start_index:
        Sample index of the (first) detected preamble start; -1 if none.
    metric_peak:
        Peak value of the detection metric.
    all_starts:
        Start indices of every detected preamble, in time order (collisions
        produce more than one entry, Section 4.3.5).
    """

    detected: bool
    start_index: int
    metric_peak: float
    all_starts: tuple = ()

    def __bool__(self) -> bool:
        return self.detected


class SchmidlCoxDetector:
    """Delay-and-correlate detector over the 802.11 short training symbols.

    The short training field consists of identical 0.8 us symbols, so the
    received signal is periodic with period ``L`` samples.  The metric

    ``M(d) = |sum_k r[d+k] * conj(r[d+k+L])|^2 / (sum_k |r[d+k+L]|^2)^2``

    approaches 1 over the short training field and is near 0 elsewhere.
    """

    def __init__(self, sample_rate_hz: float = SAMPLE_RATE_HZ,
                 threshold: float = 0.6,
                 window_symbols: int = 4) -> None:
        if not 0.0 < threshold <= 1.0:
            raise DetectionError(
                f"threshold must be in (0, 1], got {threshold!r}")
        if window_symbols < 1:
            raise DetectionError(
                f"window_symbols must be >= 1, got {window_symbols}")
        self.sample_rate_hz = sample_rate_hz
        self.threshold = threshold
        self.symbol_length = len(short_training_symbol(sample_rate_hz))
        self.window = self.symbol_length * window_symbols

    def metric(self, samples: np.ndarray) -> np.ndarray:
        """Return the Schmidl-Cox timing metric ``M(d)`` for every offset d."""
        samples = as_complex_array(samples)
        L = self.symbol_length
        n = len(samples)
        if n < 2 * L + self.window:
            return np.zeros(max(n, 1))
        lagged = samples[L:]
        base = samples[:-L]
        products = base * np.conj(lagged)
        powers = np.abs(lagged) ** 2
        kernel = np.ones(self.window)
        p = np.convolve(products, kernel, mode="valid")
        r = np.convolve(powers, kernel, mode="valid")
        metric = np.abs(p) ** 2 / np.maximum(r, 1e-12) ** 2
        return metric

    def detect(self, waveform: Waveform) -> DetectionResult:
        """Detect the first preamble in ``waveform``."""
        metric = self.metric(waveform.samples)
        if metric.size == 0:
            return DetectionResult(False, -1, 0.0)
        peak_value = float(np.max(metric))
        if peak_value < self.threshold:
            return DetectionResult(False, -1, peak_value)
        above = metric >= self.threshold
        start = int(np.argmax(above))
        return DetectionResult(True, start, peak_value, (start,))


class MatchedFilterDetector:
    """Cross-correlation detector against the known short training field.

    Correlating against the entire known training sequence provides a
    processing gain of ``10 log10(N)`` dB over a single sample, which is how
    the paper detects frames at -10 dB SNR (Section 4.3.4).
    """

    def __init__(self, sample_rate_hz: float = SAMPLE_RATE_HZ,
                 threshold: float = 5.0,
                 min_separation_samples: int | None = None) -> None:
        if threshold <= 0:
            raise DetectionError(f"threshold must be positive, got {threshold!r}")
        self.sample_rate_hz = sample_rate_hz
        self.threshold = threshold
        template = generate_short_training_field(sample_rate_hz)
        self._template = template.samples
        self._template_energy = float(np.sum(np.abs(self._template) ** 2))
        self.min_separation = (min_separation_samples if min_separation_samples
                               is not None else len(self._template))

    def correlation(self, samples: np.ndarray) -> np.ndarray:
        """Return the normalized matched-filter output for every start offset.

        The output is the correlation magnitude divided by its own median, a
        simple constant-false-alarm-rate normalization that makes a fixed
        threshold meaningful across input power levels.
        """
        samples = as_complex_array(samples)
        if len(samples) < len(self._template):
            return np.zeros(max(len(samples), 1))
        matched = np.abs(np.correlate(samples, self._template, mode="valid"))
        floor = float(np.median(matched))
        if floor <= 0:
            floor = float(np.mean(matched)) or 1e-12
        return matched / floor

    def detect(self, waveform: Waveform) -> DetectionResult:
        """Detect every preamble present in ``waveform`` (supports collisions)."""
        correlation = self.correlation(waveform.samples)
        starts = self._find_peaks(correlation)
        if not starts:
            peak = float(np.max(correlation)) if correlation.size else 0.0
            return DetectionResult(False, -1, peak)
        peak = float(np.max(correlation[starts]))
        return DetectionResult(True, starts[0], peak, tuple(starts))

    def _find_peaks(self, correlation: np.ndarray) -> list[int]:
        """Return indices of local maxima above threshold, separated in time."""
        above = np.flatnonzero(correlation >= self.threshold)
        peaks: list[int] = []
        if above.size == 0:
            return peaks
        # Group contiguous above-threshold runs and take the max of each run,
        # then enforce a minimum separation between retained peaks.
        run_start = above[0]
        previous = above[0]
        runs = []
        for index in above[1:]:
            if index - previous > self.min_separation // 4:
                runs.append((run_start, previous))
                run_start = index
            previous = index
        runs.append((run_start, previous))
        for lo, hi in runs:
            segment = correlation[lo:hi + 1]
            peak_index = lo + int(np.argmax(segment))
            if peaks and peak_index - peaks[-1] < self.min_separation:
                # Keep the stronger of the two conflicting peaks.
                if correlation[peak_index] > correlation[peaks[-1]]:
                    peaks[-1] = peak_index
                continue
            peaks.append(peak_index)
        return peaks
