"""802.11a/g OFDM preamble generation (short and long training symbols).

Figure 2 of the paper shows the 802.11 OFDM preamble structure ArrayTrack
relies on: ten identical short training symbols (0.8 us each), a guard
interval, then two identical long training symbols (3.2 us each).  The short
symbols drive Schmidl-Cox packet detection (Section 2.1); the two long
symbols are what diversity synthesis records on the two antenna sets
(Section 2.2).

The frequency-domain definitions follow IEEE 802.11-2012 Table 18-6 /
Equation 18-8 (the standard L-STF and L-LTF sequences) generated at the
nominal 20 MHz rate; :func:`generate_preamble` can oversample the result to
the 40 Msps WARP capture rate used in the paper.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.constants import (
    NUM_LONG_TRAINING_SYMBOLS,
    NUM_SHORT_TRAINING_SYMBOLS,
    OFDM_BANDWIDTH_HZ,
    SAMPLE_RATE_HZ,
)
from repro.errors import SignalError
from repro.signal.waveform import Waveform

__all__ = [
    "short_training_symbol",
    "long_training_symbol",
    "generate_short_training_field",
    "generate_long_training_field",
    "generate_preamble",
    "PreambleLayout",
]

#: Number of OFDM subcarriers (FFT size) at 20 MHz.
FFT_SIZE = 64

#: Baseband sample period of the nominal 20 MHz OFDM signal.
BASE_SAMPLE_RATE_HZ = OFDM_BANDWIDTH_HZ

# Frequency-domain short training sequence, IEEE 802.11-2012 Eq. 18-7.
# Non-zero values on subcarriers +/- {4, 8, 12, 16, 20, 24}.
_STS_FREQ_VALUES = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j, -4: 1 + 1j,
    4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j, 20: 1 + 1j, 24: 1 + 1j,
}
_STS_SCALE = math.sqrt(13.0 / 6.0)

# Frequency-domain long training sequence, IEEE 802.11-2012 Eq. 18-10,
# covering subcarriers -26..-1 and +1..+26.
_LTS_FREQ_LEFT = [
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
]
_LTS_FREQ_RIGHT = [
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
]


def _subcarrier_spectrum(values: dict[int, complex]) -> np.ndarray:
    """Place subcarrier values into an FFT-shifted length-64 spectrum."""
    # dtype-pinned: complex128 -- IEEE 802.11 reference spectra are synthesized at full precision
    spectrum = np.zeros(FFT_SIZE, dtype=np.complex128)
    for subcarrier, value in values.items():
        spectrum[subcarrier % FFT_SIZE] = value
    return spectrum


@lru_cache(maxsize=1)
def _sts_time_domain() -> np.ndarray:
    """Return one 16-sample (0.8 us at 20 MHz) short training symbol."""
    spectrum = _subcarrier_spectrum(
        {k: _STS_SCALE * v for k, v in _STS_FREQ_VALUES.items()})
    time_signal = np.fft.ifft(spectrum) * FFT_SIZE / math.sqrt(FFT_SIZE)
    # The 64-sample IFFT output is periodic with period 16; one short
    # training symbol is the first 16 samples.
    return time_signal[:16].copy()


@lru_cache(maxsize=1)
def _lts_time_domain() -> np.ndarray:
    """Return one 64-sample (3.2 us at 20 MHz) long training symbol."""
    values: dict[int, complex] = {}
    for offset, value in zip(range(-26, 0), _LTS_FREQ_LEFT, strict=True):
        values[offset] = value
    for offset, value in zip(range(1, 27), _LTS_FREQ_RIGHT, strict=True):
        values[offset] = value
    spectrum = _subcarrier_spectrum(values)
    time_signal = np.fft.ifft(spectrum) * FFT_SIZE / math.sqrt(FFT_SIZE)
    return time_signal.copy()


def short_training_symbol(sample_rate_hz: float = BASE_SAMPLE_RATE_HZ) -> Waveform:
    """Return a single 0.8 us short training symbol.

    Parameters
    ----------
    sample_rate_hz:
        Output sample rate; must be an integer multiple of 20 MHz.
    """
    factor = _oversampling_factor(sample_rate_hz)
    base = Waveform(_sts_time_domain(), BASE_SAMPLE_RATE_HZ)
    return base.upsampled(factor)


def long_training_symbol(sample_rate_hz: float = BASE_SAMPLE_RATE_HZ) -> Waveform:
    """Return a single 3.2 us long training symbol."""
    factor = _oversampling_factor(sample_rate_hz)
    base = Waveform(_lts_time_domain(), BASE_SAMPLE_RATE_HZ)
    return base.upsampled(factor)


def generate_short_training_field(
        sample_rate_hz: float = BASE_SAMPLE_RATE_HZ,
        repetitions: int = NUM_SHORT_TRAINING_SYMBOLS) -> Waveform:
    """Return the short training field: ``repetitions`` identical STS copies."""
    if repetitions < 1:
        raise SignalError(f"repetitions must be >= 1, got {repetitions}")
    return short_training_symbol(sample_rate_hz).repeated(repetitions)


def generate_long_training_field(
        sample_rate_hz: float = BASE_SAMPLE_RATE_HZ,
        repetitions: int = NUM_LONG_TRAINING_SYMBOLS,
        include_guard: bool = True) -> Waveform:
    """Return the long training field, optionally preceded by its guard interval.

    The 802.11 long training field starts with a 1.6 us cyclic-prefix guard
    (the tail half of one LTS) followed by two full 3.2 us long training
    symbols.
    """
    if repetitions < 1:
        raise SignalError(f"repetitions must be >= 1, got {repetitions}")
    lts = long_training_symbol(sample_rate_hz)
    field = lts.repeated(repetitions)
    if include_guard:
        guard_len = len(lts) // 2
        guard = Waveform(lts.samples[-guard_len:].copy(), lts.sample_rate_hz)
        field = guard.concatenate(field)
    return field


class PreambleLayout:
    """Sample indices of preamble landmarks at a given sample rate.

    The diversity synthesis logic (Section 2.2) needs to know where the two
    long training symbols start so it can switch antenna sets between them;
    this helper centralizes that arithmetic.
    """

    def __init__(self, sample_rate_hz: float = SAMPLE_RATE_HZ) -> None:
        factor = _oversampling_factor(sample_rate_hz)
        self.sample_rate_hz = sample_rate_hz
        self.sts_length = 16 * factor
        self.lts_length = 64 * factor
        self.guard_length = 32 * factor
        self.num_sts = NUM_SHORT_TRAINING_SYMBOLS
        self.num_lts = NUM_LONG_TRAINING_SYMBOLS

    @property
    def short_field_end(self) -> int:
        """Index of the first sample after the short training field."""
        return self.sts_length * self.num_sts

    @property
    def first_lts_start(self) -> int:
        """Index of the first sample of long training symbol S0."""
        return self.short_field_end + self.guard_length

    @property
    def second_lts_start(self) -> int:
        """Index of the first sample of long training symbol S1."""
        return self.first_lts_start + self.lts_length

    @property
    def preamble_length(self) -> int:
        """Total preamble length in samples."""
        return self.first_lts_start + self.lts_length * self.num_lts


def generate_preamble(sample_rate_hz: float = SAMPLE_RATE_HZ) -> Waveform:
    """Return the full 16 us 802.11 OFDM preamble at ``sample_rate_hz``.

    Layout (Figure 2 of the paper): ten short training symbols, the long
    training field guard interval, then two long training symbols.
    """
    sts_field = generate_short_training_field(sample_rate_hz)
    lts_field = generate_long_training_field(sample_rate_hz, include_guard=True)
    return sts_field.concatenate(lts_field)


def _oversampling_factor(sample_rate_hz: float) -> int:
    """Return the integer oversampling factor relative to 20 MHz."""
    ratio = sample_rate_hz / BASE_SAMPLE_RATE_HZ
    factor = int(round(ratio))
    if factor < 1 or abs(ratio - factor) > 1e-9:
        raise SignalError(
            "sample rate must be an integer multiple of 20 MHz, got "
            f"{sample_rate_hz!r}")
    return factor
