"""Signal substrate: waveforms, the 802.11 OFDM preamble, noise and detection.

This package models the parts of the 802.11 physical layer ArrayTrack relies
on (Sections 2.1-2.2 of the paper): preamble structure, packet detection and
the raw I/Q sample streams captured by the AP.
"""

from repro.signal.waveform import Waveform
from repro.signal.ofdm import (
    PreambleLayout,
    generate_long_training_field,
    generate_preamble,
    generate_short_training_field,
    long_training_symbol,
    short_training_symbol,
)
from repro.signal.noise import (
    add_awgn,
    complex_awgn,
    db_to_linear,
    linear_to_db,
    measure_snr_db,
    noise_power_for_snr,
)
from repro.signal.packet import Frame, VALID_80211G_RATES_MBPS, air_time_s
from repro.signal.detection import (
    DetectionResult,
    MatchedFilterDetector,
    SchmidlCoxDetector,
)

__all__ = [
    "Waveform",
    "PreambleLayout",
    "generate_long_training_field",
    "generate_preamble",
    "generate_short_training_field",
    "long_training_symbol",
    "short_training_symbol",
    "add_awgn",
    "complex_awgn",
    "db_to_linear",
    "linear_to_db",
    "measure_snr_db",
    "noise_power_for_snr",
    "Frame",
    "VALID_80211G_RATES_MBPS",
    "air_time_s",
    "DetectionResult",
    "MatchedFilterDetector",
    "SchmidlCoxDetector",
]
