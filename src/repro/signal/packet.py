"""802.11 frame model: sizes, rates, air times and transmitted waveforms.

ArrayTrack only needs the preamble of a frame (Section 2.1), but the latency
analysis (Section 4.4) and the collision analysis (Section 4.3.5) depend on
whole-frame air times, so the frame model carries payload size and bitrate as
well.  Frame *content* is immaterial to the system -- acknowledgements and
encrypted frames work equally well -- so the payload is modelled as random
QPSK-like samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import PREAMBLE_DURATION_S, SAMPLE_RATE_HZ
from repro.errors import SignalError
from repro.signal.ofdm import generate_preamble
from repro.signal.waveform import Waveform

__all__ = ["Frame", "air_time_s", "VALID_80211G_RATES_MBPS"]

#: The 802.11g OFDM rate set plus the 802.11b base rates the paper quotes
#: (1 Mbit/s appears in the latency analysis).
VALID_80211G_RATES_MBPS = (1.0, 2.0, 5.5, 6.0, 9.0, 11.0, 12.0, 18.0, 24.0,
                           36.0, 48.0, 54.0)


def air_time_s(payload_bytes: int, bitrate_mbps: float,
               include_preamble: bool = True) -> float:
    """Return the on-air duration of a frame in seconds.

    Section 4.4 quotes roughly 222 us for a 1500-byte frame at 54 Mbit/s and
    12 ms at 1 Mbit/s; this helper reproduces those figures from payload
    size and bitrate plus the fixed 16 us preamble.
    """
    if payload_bytes <= 0:
        raise SignalError(f"payload must be positive, got {payload_bytes}")
    if bitrate_mbps <= 0:
        raise SignalError(f"bitrate must be positive, got {bitrate_mbps}")
    payload_s = payload_bytes * 8 / (bitrate_mbps * 1e6)
    return payload_s + (PREAMBLE_DURATION_S if include_preamble else 0.0)


@dataclass
class Frame:
    """A transmitted 802.11 frame.

    Attributes
    ----------
    client_id:
        Identifier of the transmitting client.
    timestamp_s:
        Transmission start time in seconds (used for grouping frames in the
        multipath suppression step, Section 2.4).
    payload_bytes:
        MPDU size in bytes.
    bitrate_mbps:
        Data rate used for the payload.
    transmit_power_dbm:
        Transmit power; the channel model converts this to received power.
    sequence_number:
        Monotonically increasing per-client counter.
    """

    client_id: str
    timestamp_s: float = 0.0
    payload_bytes: int = 1500
    bitrate_mbps: float = 54.0
    transmit_power_dbm: float = 15.0
    sequence_number: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise SignalError(
                f"payload_bytes must be positive, got {self.payload_bytes}")
        if self.bitrate_mbps <= 0:
            raise SignalError(
                f"bitrate_mbps must be positive, got {self.bitrate_mbps}")

    @property
    def air_time_s(self) -> float:
        """On-air duration of the whole frame, preamble included."""
        return air_time_s(self.payload_bytes, self.bitrate_mbps)

    @property
    def preamble_duration_s(self) -> float:
        """Duration of the frame preamble (16 us for 802.11 OFDM)."""
        return PREAMBLE_DURATION_S

    def baseband_waveform(self, sample_rate_hz: float = SAMPLE_RATE_HZ,
                          include_payload: bool = False,
                          payload_samples: int = 256,
                          rng: np.random.Generator | None = None) -> Waveform:
        """Return the transmitted complex-baseband waveform of this frame.

        Parameters
        ----------
        sample_rate_hz:
            Output sample rate (integer multiple of 20 MHz).
        include_payload:
            When True, append ``payload_samples`` of random QPSK symbols
            after the preamble so collision experiments have a frame body
            to collide with.  ArrayTrack itself never looks at the body.
        payload_samples:
            Number of body samples to append when ``include_payload``.
        rng:
            Random generator for the synthetic payload.
        """
        preamble = generate_preamble(sample_rate_hz)
        if not include_payload:
            return preamble
        rng = rng if rng is not None else np.random.default_rng(self.sequence_number)
        constellation = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2)
        body = rng.choice(constellation, size=payload_samples)
        return preamble.concatenate(Waveform(body, sample_rate_hz))
