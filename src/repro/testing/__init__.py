"""Test-support utilities shipped with the library.

The one public module here is :mod:`repro.testing.faults`, the
deterministic fault-injection harness behind the resilience test suite and
``benchmarks/test_bench_resilience.py``.  It lives in the installed package
(not under ``tests/``) because the injection points are compiled into the
production service/pool code and the spawned worker processes must be able
to import it.
"""

from repro.testing import faults

__all__ = ["faults"]
