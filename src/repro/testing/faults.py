"""Deterministic fault injection for the resilience layer.

Every failure path the service claims to survive must be *provable* on
demand: this module owns the injection points compiled into the production
code and fires them deterministically, so the fault-tolerance tests and the
degraded-mode benchmark replay bit-identical failure schedules.

Faults are described by :class:`FaultSpec` records and activated either
programmatically (:func:`activate` / :func:`injected_faults`) or through
the ``ARRAYTRACK_FAULTS`` environment variable, which carries the same
specs as a JSON list.  Activation always exports the environment variable
too, so worker processes spawned *after* activation inherit the plan --
that is how a fault can fire inside a ``ProcessPoolExecutor`` worker.

The supported kinds, and where their hooks live:

``kill-worker-mid-shard``
    ``os._exit`` inside a pool worker while it runs a shard
    (:func:`worker_shard`, called by ``repro.api._procpool`` at the
    ``before-attach`` / ``after-attach`` / ``before-return`` stages of
    every shard task).  Surfaces parent-side as ``BrokenProcessPool``.
``slow-worker``
    ``time.sleep(delay_s)`` at the same worker stages; exercises the
    ``resilience.shard_timeout_s`` deadline.
``shm-allocation-failure``
    :class:`~repro.errors.FaultInjectedError` from the parent-side
    shared-memory packer before the segment is created
    (:func:`shm_allocation`).
``thread-shard-failure``
    :class:`~repro.errors.FaultInjectedError` from the thread-backend fan
    out (:func:`thread_shard`); drives the thread -> serial rung of the
    degradation ladder.
``poison-frame``
    :func:`poison` corrupts an ingested spectrum with a NaN power value,
    exercising the service's poison-frame rejection.

Determinism: each spec owns a ``random.Random(seed)`` stream for its
``probability`` draws, and budgets (``times``) are enforced either
per-process or -- when ``token_dir`` is set -- across *all* processes via
atomically claimed token files, so "kill exactly one worker, then recover"
is an expressible, replayable schedule.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, replace
from collections.abc import Iterator, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, FaultInjectedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.spectrum import AoASpectrum

__all__ = ["ENV_VAR", "KINDS", "STAGES", "KILL_EXIT_CODE", "FaultSpec",
           "activate", "activate_json", "deactivate", "injected_faults",
           "active_specs", "fired_counts", "worker_shard", "shm_allocation",
           "thread_shard", "poison"]

#: Environment variable carrying the JSON fault plan into spawned workers.
ENV_VAR = "ARRAYTRACK_FAULTS"

#: Every fault kind this harness can fire.
KINDS = ("kill-worker-mid-shard", "slow-worker", "shm-allocation-failure",
         "thread-shard-failure", "poison-frame")

#: Worker-shard stages at which kill/slow faults can anchor.
STAGES = ("before-attach", "after-attach", "before-return")

#: Exit status of a worker killed by ``kill-worker-mid-shard`` (distinctive
#: on purpose, so an injected death is never mistaken for a real one).
KILL_EXIT_CODE = 87


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: what fires, where, how often, how long.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    stage:
        For worker-shard kinds: restrict firing to one of :data:`STAGES`
        (None fires at any stage).
    probability:
        Chance of firing per eligible hook call, drawn from this spec's
        own seeded stream (1.0 = always).
    times:
        Total firing budget (None = unlimited).  Without ``token_dir`` the
        budget is per process; with it, the budget is shared across every
        process that can reach the directory.
    delay_s:
        Sleep duration of ``slow-worker`` faults.
    seed:
        Seed of this spec's probability stream.
    token_dir:
        Directory for cross-process budget tokens (one ``O_EXCL`` file per
        firing).  Required for exactly-N semantics across pool workers.
    """

    kind: str
    stage: str | None = None
    probability: float = 1.0
    times: int | None = None
    delay_s: float = 0.05
    seed: int = 0
    token_dir: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.stage is not None and self.stage not in STAGES:
            raise ConfigurationError(
                f"unknown fault stage {self.stage!r}; "
                f"expected one of {STAGES} or None")
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability!r}")
        if self.times is not None and (not isinstance(self.times, int)
                                       or isinstance(self.times, bool)
                                       or self.times < 0):
            raise ConfigurationError(
                f"fault times must be a non-negative integer or None, "
                f"got {self.times!r}")
        if float(self.delay_s) < 0:
            raise ConfigurationError(
                f"fault delay_s must be non-negative, got {self.delay_s!r}")

    def to_dict(self) -> dict[str, object]:
        """Return the JSON-safe representation used by :data:`ENV_VAR`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        """Parse one spec, rejecting unknown keys with the offending name."""
        valid = {"kind", "stage", "probability", "times", "delay_s", "seed",
                 "token_dir"}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec key(s) {unknown}; valid: {sorted(valid)}")
        if "kind" not in data:
            raise ConfigurationError("a fault spec needs a 'kind'")
        return cls(**dict(data))  # type: ignore[arg-type]


class _ActiveFault:
    """One installed spec plus its process-local firing state."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.fired = 0
        self._rng = random.Random(spec.seed)

    def matches(self, kind: str, stage: str | None) -> bool:
        if self.spec.kind != kind:
            return False
        return self.spec.stage is None or stage is None \
            or self.spec.stage == stage

    def should_fire(self) -> bool:
        spec = self.spec
        if spec.times is not None and spec.token_dir is None \
                and self.fired >= spec.times:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        if spec.times is not None and spec.token_dir is not None \
                and not self._claim_token():
            return False
        self.fired += 1
        return True

    def _claim_token(self) -> bool:
        """Atomically claim one of the spec's cross-process budget tokens."""
        spec = self.spec
        assert spec.times is not None and spec.token_dir is not None
        for index in range(spec.times):
            path = os.path.join(spec.token_dir,
                                f"{spec.kind}.{index:04d}.token")
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False


#: Installed faults of this process; None = not yet resolved from the
#: environment (spawned workers resolve lazily on their first hook call).
_ACTIVE: list[_ActiveFault] | None = None


def _compile(specs: Sequence[FaultSpec]) -> list[_ActiveFault]:
    return [_ActiveFault(spec) for spec in specs]


def _parse_plan(text: str) -> list[FaultSpec]:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid fault plan JSON: {exc}") from exc
    if isinstance(data, Mapping):
        data = [data]
    if not isinstance(data, list):
        raise ConfigurationError(
            f"a fault plan must be a JSON list of specs, "
            f"got {type(data).__name__}")
    return [FaultSpec.from_dict(item) for item in data]


def _active() -> list[_ActiveFault]:
    """The installed faults, resolving the environment plan lazily."""
    global _ACTIVE
    if _ACTIVE is None:
        raw = os.environ.get(ENV_VAR)
        _ACTIVE = _compile(_parse_plan(raw)) if raw else []
    return _ACTIVE


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
def activate(specs: Sequence[FaultSpec] | FaultSpec) -> None:
    """Install a fault plan in this process and export it to the environment.

    The export makes the plan visible to worker processes spawned after
    this call; workers spawned before it keep running fault-free.
    Replaces any previously active plan.
    """
    global _ACTIVE
    if isinstance(specs, FaultSpec):
        specs = [specs]
    plan = list(specs)
    _ACTIVE = _compile(plan)
    os.environ[ENV_VAR] = json.dumps([spec.to_dict() for spec in plan])


def activate_json(text: str) -> None:
    """Install a plan from its JSON form (the ``fault_plan`` config knob)."""
    activate(_parse_plan(text))


def deactivate() -> None:
    """Remove the active plan and its environment export (idempotent)."""
    global _ACTIVE
    _ACTIVE = []
    os.environ.pop(ENV_VAR, None)


@contextmanager
def injected_faults(*specs: FaultSpec) -> Iterator[None]:
    """Activate ``specs`` for the duration of the block, then deactivate."""
    activate(list(specs))
    try:
        yield
    finally:
        deactivate()


def active_specs() -> tuple[FaultSpec, ...]:
    """The currently installed specs of this process (resolving the env)."""
    return tuple(fault.spec for fault in _active())


def fired_counts() -> dict[str, int]:
    """Process-local firing counts by kind (token claims included)."""
    counts: dict[str, int] = {}
    for fault in _active():
        counts[fault.spec.kind] = counts.get(fault.spec.kind, 0) + fault.fired
    return counts


# ----------------------------------------------------------------------
# Hooks (called from production code; near-free while no plan is active)
# ----------------------------------------------------------------------
def _fire(kind: str, stage: str | None = None) -> FaultSpec | None:
    for fault in _active():
        if fault.matches(kind, stage) and fault.should_fire():
            return fault.spec
    return None


def worker_shard(stage: str) -> None:
    """Worker-side hook at one shard stage: may kill or slow this worker."""
    if _fire("kill-worker-mid-shard", stage) is not None:
        # A hard, un-catchable death: no atexit, no finally -- exactly the
        # signature of a segfaulted or OOM-killed worker.
        os._exit(KILL_EXIT_CODE)
    spec = _fire("slow-worker", stage)
    if spec is not None:
        time.sleep(spec.delay_s)


def shm_allocation() -> None:
    """Parent-side hook before a shared-memory segment is created."""
    if _fire("shm-allocation-failure") is not None:
        raise FaultInjectedError(
            "injected shared-memory allocation failure (fault "
            "'shm-allocation-failure')")


def thread_shard() -> None:
    """Hook at the start of a thread-backend fan out."""
    if _fire("thread-shard-failure") is not None:
        raise FaultInjectedError(
            "injected thread-backend shard failure (fault "
            "'thread-shard-failure')")


def poison(spectrum: "AoASpectrum") -> "AoASpectrum":
    """Maybe corrupt one ingested spectrum with a NaN power value.

    Returns the input unchanged while the fault is cold; when it fires, a
    *copy* with ``power[0] = NaN`` is returned (the caller's array is
    never mutated), which the service's poison-frame rejection must catch.
    """
    if _fire("poison-frame") is None:
        return spectrum
    power = np.array(spectrum.power, copy=True)
    power[0] = np.nan
    return replace(spectrum, power=power)
