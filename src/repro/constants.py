"""Physical and protocol constants used throughout the ArrayTrack reproduction.

All constants follow the paper's experimental setup: 802.11g operation in the
2.4 GHz ISM band, WARP radios sampling at 40 Msamples/s, and half-wavelength
antenna spacing (6.13 cm at 2.4 GHz).
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Carrier frequency used by the testbed clients (Hz).  The paper operates
#: Atheros 802.11g radios in the 2.4 GHz band; channel 6 centre frequency.
CARRIER_FREQUENCY_HZ = 2.437e9

#: RF wavelength at the carrier frequency (m); approximately 12.3 cm.
WAVELENGTH_M = SPEED_OF_LIGHT / CARRIER_FREQUENCY_HZ

#: Antenna element spacing used by the prototype AP (m).  The paper spaces
#: antennas at half a wavelength (quoted as 6.13 cm) for maximum AoA
#: resolution.
ANTENNA_SPACING_M = WAVELENGTH_M / 2.0

#: 802.11 OFDM nominal channel bandwidth (Hz).
OFDM_BANDWIDTH_HZ = 20e6

#: WARP receiver sampling rate (samples/s).  The paper samples at 40 Msps,
#: i.e. 2x oversampling of the 20 MHz OFDM signal.
SAMPLE_RATE_HZ = 40e6

#: Duration of one 802.11 short training symbol (s).
SHORT_TRAINING_SYMBOL_DURATION_S = 0.8e-6

#: Duration of one 802.11 long training symbol (s).
LONG_TRAINING_SYMBOL_DURATION_S = 3.2e-6

#: Duration of the guard interval between short and long training symbols (s).
GUARD_INTERVAL_DURATION_S = 0.8e-6

#: Number of short training symbol repetitions in the 802.11 OFDM preamble.
NUM_SHORT_TRAINING_SYMBOLS = 10

#: Number of long training symbol repetitions in the 802.11 OFDM preamble.
NUM_LONG_TRAINING_SYMBOLS = 2

#: Total 802.11 OFDM preamble duration (s): 8 us of STS + 1.6 us guard
#: (two 0.8 us halves) + 6.4 us of LTS = 16 us.
PREAMBLE_DURATION_S = 16e-6

#: Number of raw time-domain samples ArrayTrack uses per AoA spectrum.
#: Section 2.1 / 4.3.3: ten samples (250 ns at 40 Msps) suffice.
DEFAULT_NUM_SNAPSHOTS = 10

#: Antenna switching dead time of the WARP radio platform (s).  Section 2.2
#: footnote: the received signal is distorted for 500 ns after toggling
#: the antenna-select line.
ANTENNA_SWITCH_DEAD_TIME_S = 500e-9

#: Default number of spatial-smoothing sub-array groups (Section 2.3.2).
DEFAULT_SMOOTHING_GROUPS = 2

#: Grid resolution used by the location search (m); Section 2.5 uses a
#: 10 cm x 10 cm grid.
DEFAULT_GRID_RESOLUTION_M = 0.10

#: Spectrum floor used by the service-level configuration tree
#: (:class:`repro.api.ArrayTrackConfig`).  The floor clamps each AP's
#: normalized spectrum from below inside the Equation 8 product so one
#: blind AP cannot veto the true location.  The plain
#: :class:`~repro.core.localizer.LocalizerConfig` default stays at the
#: paper-faithful 0.02; every end-to-end campaign (quickstart, examples,
#: eval sweeps) historically hardcoded 0.05, which is what this constant
#: records as the one documented default.
DEFAULT_SPECTRUM_FLOOR = 0.05

#: Maximum spacing in time between frames grouped for multipath suppression
#: (s); Section 2.4 groups frames spaced closer than 100 ms.
MULTIPATH_SUPPRESSION_WINDOW_S = 0.100

#: Angular tolerance used when matching AoA peaks across frames (degrees);
#: the Table 1 microbenchmark marks a peak "unchanged" if it moved < 5 deg.
PEAK_MATCH_TOLERANCE_DEG = 5.0

#: Angle grid resolution for AoA pseudospectra (degrees).
DEFAULT_ANGLE_RESOLUTION_DEG = 1.0

#: WARP-to-PC effective throughput (bit/s).  Section 4.4: the simple IP
#: stack on the WARP limits throughput to roughly 1 Mbit/s.
WARP_PC_THROUGHPUT_BPS = 1e6

#: WARP-to-PC bus/transfer latency (s); Section 4.4 estimates ~30 ms.
WARP_PC_BUS_LATENCY_S = 30e-3

#: Bits per recorded complex sample (16-bit I + 16-bit Q).
BITS_PER_SAMPLE = 32

#: Measured server-side synthesis (hill-climbing) processing time in the
#: paper (s), used by the latency model as the reference backend figure.
PAPER_SYNTHESIS_PROCESSING_S = 100e-3


def wavelength_for_frequency(frequency_hz: float) -> float:
    """Return the RF wavelength in metres for ``frequency_hz``.

    Parameters
    ----------
    frequency_hz:
        Carrier frequency in hertz; must be positive.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def phase_constant(wavelength_m: float = WAVELENGTH_M) -> float:
    """Return the free-space phase constant ``2 * pi / wavelength`` (rad/m)."""
    if wavelength_m <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m!r}")
    return 2.0 * math.pi / wavelength_m
