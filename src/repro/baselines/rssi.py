"""RSSI-based localization baselines (the related-work comparison points).

The paper positions ArrayTrack against two families of RSS systems
(Section 5):

* *map-building* approaches (RADAR, Horus): record an RSS fingerprint at
  many survey points during an offline phase, then locate a client by
  finding the nearest fingerprint(s) in signal space -- metre-level accuracy
  and heavy calibration effort;
* *model-based* approaches (TIX, Lim et al.): invert a propagation model to
  turn RSS into distances and trilaterate -- typically several metres of
  error, no calibration.

Both are implemented here against the same simulated testbed so the
benchmark suite can reproduce the qualitative comparison: ArrayTrack in the
tens of centimetres, RSS systems in the metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.cache import grid_axes
from repro.errors import EstimationError
from repro.channel.propagation import log_distance_path_loss_db
from repro.geometry.vector import Point2D

__all__ = [
    "RssFingerprint",
    "FingerprintLocalizer",
    "ModelBasedRssLocalizer",
    "WeightedCentroidLocalizer",
]


@dataclass(frozen=True)
class RssFingerprint:
    """One survey point of the offline calibration map.

    Attributes
    ----------
    position:
        Survey location.
    rssi_dbm:
        Mapping of AP id to the RSSI (dBm) observed from that AP.
    """

    position: Point2D
    rssi_dbm: Mapping[str, float]


class FingerprintLocalizer:
    """RADAR-style k-nearest-neighbour localization in signal space.

    Parameters
    ----------
    k:
        Number of nearest fingerprints averaged into the location estimate
        (RADAR uses small k; 3 is a common choice).
    """

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise EstimationError("k must be >= 1")
        self.k = k
        self._fingerprints: list[RssFingerprint] = []

    @property
    def num_fingerprints(self) -> int:
        """Number of survey points in the radio map."""
        return len(self._fingerprints)

    def train(self, fingerprints: Sequence[RssFingerprint]) -> None:
        """Load the offline radio map (the expensive war-driving phase)."""
        if not fingerprints:
            raise EstimationError("the radio map needs at least one fingerprint")
        self._fingerprints = list(fingerprints)

    def locate(self, rssi_dbm: Mapping[str, float]) -> Point2D:
        """Return the position estimate for an online RSSI observation."""
        if not self._fingerprints:
            raise EstimationError("localizer has not been trained with a radio map")
        distances: list[tuple[float, RssFingerprint]] = []
        for fingerprint in self._fingerprints:
            distance = self._signal_distance(rssi_dbm, fingerprint.rssi_dbm)
            distances.append((distance, fingerprint))
        distances.sort(key=lambda item: item[0])
        nearest = distances[:min(self.k, len(distances))]
        # Inverse-distance weighting of the k nearest neighbours.
        weights = np.array([1.0 / (d + 1e-3) for d, _ in nearest])
        weights = weights / np.sum(weights)
        x = float(sum(w * fp.position.x for w, (_, fp) in zip(weights, nearest, strict=True)))
        y = float(sum(w * fp.position.y for w, (_, fp) in zip(weights, nearest, strict=True)))
        return Point2D(x, y)

    @staticmethod
    def _signal_distance(a: Mapping[str, float], b: Mapping[str, float]) -> float:
        """Euclidean distance in signal space over the APs common to both."""
        common = set(a) & set(b)
        if not common:
            return float("inf")
        return math.sqrt(sum((a[ap] - b[ap]) ** 2 for ap in common) / len(common))


class ModelBasedRssLocalizer:
    """TIX-style localization: invert a log-distance model and trilaterate.

    Parameters
    ----------
    ap_positions:
        Mapping of AP id to AP position.
    transmit_power_dbm:
        Assumed client transmit power.
    path_loss_exponent:
        Exponent of the assumed log-distance model (the model error relative
        to the true environment is exactly what limits these systems).
    """

    def __init__(self, ap_positions: Mapping[str, Point2D],
                 transmit_power_dbm: float = 15.0,
                 path_loss_exponent: float = 3.0,
                 grid_resolution_m: float = 0.5) -> None:
        if not ap_positions:
            raise EstimationError("need at least one AP position")
        self.ap_positions = dict(ap_positions)
        self.transmit_power_dbm = transmit_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.grid_resolution_m = grid_resolution_m

    def estimate_distance_m(self, rssi_dbm: float) -> float:
        """Invert the log-distance model to get a distance estimate."""
        path_loss = self.transmit_power_dbm - rssi_dbm
        reference = log_distance_path_loss_db(1.0, path_loss_exponent=self.path_loss_exponent)
        exponent_term = (path_loss - reference) / (10.0 * self.path_loss_exponent)
        return float(max(10.0 ** exponent_term, 0.1))

    def locate(self, rssi_dbm: Mapping[str, float],
               bounds: tuple[float, float, float, float]) -> Point2D:
        """Return the position minimizing the squared range residuals."""
        usable = {ap: rssi for ap, rssi in rssi_dbm.items() if ap in self.ap_positions}
        if len(usable) < 3:
            raise EstimationError("model-based RSS localization needs >= 3 APs")
        ranges = {ap: self.estimate_distance_m(rssi) for ap, rssi in usable.items()}
        # One grid-layout definition repo-wide (repro-lint RPR001): the
        # exact-count axes come from the same helper the likelihood
        # synthesis uses, so baseline and ArrayTrack grids cannot drift.
        xs, ys = grid_axes(bounds, self.grid_resolution_m)
        grid_x, grid_y = np.meshgrid(xs, ys)
        cost = np.zeros_like(grid_x)
        for ap, estimated_range in ranges.items():
            position = self.ap_positions[ap]
            distance = np.hypot(grid_x - position.x, grid_y - position.y)
            cost += (distance - estimated_range) ** 2
        row, column = np.unravel_index(int(np.argmin(cost)), cost.shape)
        return Point2D(float(xs[column]), float(ys[row]))


class WeightedCentroidLocalizer:
    """Simplest baseline: RSSI-weighted centroid of the overhearing APs."""

    def __init__(self, ap_positions: Mapping[str, Point2D],
                 weight_exponent: float = 2.0) -> None:
        if not ap_positions:
            raise EstimationError("need at least one AP position")
        self.ap_positions = dict(ap_positions)
        self.weight_exponent = weight_exponent

    def locate(self, rssi_dbm: Mapping[str, float]) -> Point2D:
        """Return the weighted centroid of the APs that heard the client."""
        usable = {ap: rssi for ap, rssi in rssi_dbm.items() if ap in self.ap_positions}
        if not usable:
            raise EstimationError("no overheard APs with known positions")
        # Convert dBm to linear power and use it (raised to an exponent) as
        # the weight: stronger APs pull the centroid towards themselves.
        weights = {ap: (10.0 ** (rssi / 10.0)) ** (self.weight_exponent / 2.0)
                   for ap, rssi in usable.items()}
        total = sum(weights.values())
        x = sum(weights[ap] * self.ap_positions[ap].x for ap in usable) / total
        y = sum(weights[ap] * self.ap_positions[ap].y for ap in usable) / total
        return Point2D(float(x), float(y))
