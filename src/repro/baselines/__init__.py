"""Baseline localization systems ArrayTrack is compared against.

RSSI fingerprinting (RADAR/Horus style), model-based RSS trilateration
(TIX style) and a weighted-centroid heuristic, all runnable against the same
simulated testbed as ArrayTrack itself.  Classical DoA estimators (Bartlett,
Capon) live in :mod:`repro.core.music` and are selected through
:class:`repro.core.SpectrumConfig`.
"""

from repro.baselines.rssi import (
    FingerprintLocalizer,
    ModelBasedRssLocalizer,
    RssFingerprint,
    WeightedCentroidLocalizer,
)

__all__ = [
    "FingerprintLocalizer",
    "ModelBasedRssLocalizer",
    "RssFingerprint",
    "WeightedCentroidLocalizer",
]
