"""Repo-level pytest options.

Defined at the rootdir so the flag is recognized both by the full tier-1
run (``python -m pytest``) and by targeted benchmark invocations
(``pytest benchmarks/test_bench_tracking.py``).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--bench-smoke", action="store_true", default=False,
        help="run benchmarks as an untimed single-repetition smoke job "
             "with reduced problem sizes (CI pipeline canary)")


def pytest_configure(config):
    if config.getoption("--bench-smoke"):
        # One untimed repetition: pytest-benchmark's disabled mode calls the
        # benchmarked function exactly once without calibration loops.
        config.option.benchmark_disable = True
