"""Repo-level pytest options: the bench-smoke mode and the test watchdog.

Defined at the rootdir so the flags are recognized both by the full tier-1
run (``python -m pytest``) and by targeted benchmark invocations
(``pytest benchmarks/test_bench_tracking.py``).

The watchdog exists because the service now owns *process* worker pools: a
deadlocked or wedged pool (lost worker, stuck pipe) would otherwise stall a
CI job until the job-level timeout kills it with no Python-side diagnostics.
Every test phase (setup/call/teardown) is armed with a ``SIGALRM`` timer;
on expiry the tracebacks of all threads are dumped to stderr and the test
fails with a ``WatchdogTimeout`` naming the phase.  ``pytest-timeout`` is
not a dependency of this repo, so the hook is self-contained.
"""

from __future__ import annotations

import contextlib
import faulthandler
import signal
import sys
import threading

import pytest

#: Generous per-test ceiling: the slowest legitimate test (a full-size
#: benchmark repetition on a loaded single-core runner) stays well under
#: this, while a deadlocked worker pool trips it instead of stalling CI.
DEFAULT_WATCHDOG_S = 900.0


class WatchdogTimeout(Exception):
    """A test phase exceeded the per-phase watchdog timeout."""


def pytest_addoption(parser):
    parser.addoption(
        "--bench-smoke", action="store_true", default=False,
        help="run benchmarks as an untimed single-repetition smoke job "
             "with reduced problem sizes (CI pipeline canary)")
    parser.addoption(
        "--watchdog-timeout", type=float, default=DEFAULT_WATCHDOG_S,
        metavar="SECONDS",
        help="per-phase (setup/call/teardown) SIGALRM watchdog so a "
             "deadlocked worker pool fails fast with thread tracebacks "
             "instead of stalling the job (0 disables)")


def pytest_configure(config):
    if config.getoption("--bench-smoke"):
        # One untimed repetition: pytest-benchmark's disabled mode calls the
        # benchmarked function exactly once without calibration loops.
        config.option.benchmark_disable = True


@contextlib.contextmanager
def _watchdog(item, phase):
    timeout = item.config.getoption("--watchdog-timeout")
    if (timeout <= 0 or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def on_timeout(signum, frame):
        faulthandler.dump_traceback(all_threads=True, file=sys.stderr)
        raise WatchdogTimeout(
            f"watchdog: {item.nodeid} {phase} exceeded {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    with _watchdog(item, "setup"):
        yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    with _watchdog(item, "call"):
        yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item):
    with _watchdog(item, "teardown"):
        yield
