"""Tests for package-level constants, errors and the quickstart helpers."""

import math

import pytest

import repro
from repro import constants, errors
from repro.constants import phase_constant, wavelength_for_frequency


class TestConstants:
    def test_wavelength_matches_carrier(self):
        # 2.437 GHz -> roughly 12.3 cm.
        assert constants.WAVELENGTH_M == pytest.approx(0.123, abs=0.002)

    def test_antenna_spacing_is_half_wavelength(self):
        assert constants.ANTENNA_SPACING_M == pytest.approx(
            constants.WAVELENGTH_M / 2.0)
        # The paper quotes 6.13 cm.
        assert constants.ANTENNA_SPACING_M == pytest.approx(0.0613, abs=0.001)

    def test_preamble_duration(self):
        sts = (constants.NUM_SHORT_TRAINING_SYMBOLS
               * constants.SHORT_TRAINING_SYMBOL_DURATION_S)
        lts = (constants.NUM_LONG_TRAINING_SYMBOLS
               * constants.LONG_TRAINING_SYMBOL_DURATION_S)
        guard = 2 * constants.GUARD_INTERVAL_DURATION_S
        assert sts + lts + guard == pytest.approx(constants.PREAMBLE_DURATION_S)

    def test_ten_samples_are_250_nanoseconds(self):
        # Section 2.1: ten samples at 40 Msps span 250 ns.
        assert (constants.DEFAULT_NUM_SNAPSHOTS
                / constants.SAMPLE_RATE_HZ) == pytest.approx(250e-9)

    def test_wavelength_helper(self):
        assert wavelength_for_frequency(constants.CARRIER_FREQUENCY_HZ) == \
            pytest.approx(constants.WAVELENGTH_M)
        with pytest.raises(ValueError):
            wavelength_for_frequency(0.0)

    def test_phase_constant(self):
        assert phase_constant(1.0) == pytest.approx(2 * math.pi)
        with pytest.raises(ValueError):
            phase_constant(-1.0)

    def test_version_exposed(self):
        assert repro.__version__


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in ("GeometryError", "SignalError", "ChannelError", "ArrayError",
                     "DetectionError", "EstimationError", "ConfigurationError"):
            error_class = getattr(errors, name)
            assert issubclass(error_class, errors.ArrayTrackError)
            assert issubclass(error_class, Exception)


class TestQuickstart:
    def test_localize_one_client_returns_estimate_and_truth(self):
        from repro import quickstart  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal

        estimate, truth = quickstart.localize_one_client(num_aps=4,
                                                         grid_resolution_m=0.5)
        assert estimate.num_aps == 4
        assert estimate.error_to(truth) < 5.0

    def test_localize_all_clients_returns_per_client_errors(self):
        from repro import quickstart  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal

        errors_cm = quickstart.localize_all_clients(num_clients=2,
                                                    grid_resolution_m=0.5)
        assert len(errors_cm) == 2
        assert all(value >= 0.0 for value in errors_cm.values())
