"""Tests for the repro-lint static-analysis pass (``tools/repro_lint``).

Every rule is exercised against a good/bad fixture pair under
``tests/tools/fixtures/`` (the directory is excluded from the linter's own
directory walk and from ruff, precisely because the bad fixtures violate on
purpose).  The JSON reporter's payload is asserted key-for-key: it is a
machine interface and must stay schema-stable.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.repro_lint import RULES, check_source, iter_python_files, run_paths
from tools.repro_lint.cli import main
from tools.repro_lint.engine import DEFAULT_EXCLUDED_DIRS, ENGINE_RULE_ID
from tools.repro_lint.reporting import (SCHEMA_VERSION, render_text,
                                        to_json_payload)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

RULE_IDS = [rule.id for rule in RULES]

#: rule id -> (bad fixture, good fixture, expected finding count in bad).
FIXTURE_PAIRS = {
    "RPR001": ("rpr001_bad.py", "rpr001_good.py", 3),
    "RPR002": ("rpr002_bad.py", "rpr002_good.py", 2),
    # RPR003 is retired: RPR009 (tests/tools/test_flow_rules.py) subsumes it.
    "RPR004": ("rpr004_bad.py", "rpr004_good.py", 1),
    "RPR005": ("rpr005_bad.py", "rpr005_good.py", 2),
    "RPR006": ("rpr006_bad.py", "rpr006_good.py", 2),
    "RPR007": ("eval/rpr007_bad.py", "eval/rpr007_good.py", 2),
    "RPR008": ("rpr008_bad.py", "rpr008_good.py", 2),
    "RPR018": ("rpr018_bad.py", "rpr018_good.py", 2),
}


def lint_fixture(name):
    path = FIXTURES / name
    return check_source(path.as_posix(), path.read_text(encoding="utf-8"))


class TestRuleFixtures:
    def test_every_rule_has_a_fixture_pair(self):
        assert sorted(FIXTURE_PAIRS) == sorted(RULE_IDS)

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_PAIRS))
    def test_bad_fixture_fires(self, rule_id):
        bad, _good, expected_count = FIXTURE_PAIRS[rule_id]
        violations = lint_fixture(bad)
        fired = [v for v in violations if v.rule == rule_id]
        assert len(fired) == expected_count, (
            f"{bad} should trip {rule_id} x{expected_count}, got: "
            f"{[(v.rule, v.line) for v in violations]}")
        # Findings must carry an actionable message, not just a rule id.
        assert all(len(v.message) > 40 for v in fired)

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_PAIRS))
    def test_good_fixture_stays_quiet(self, rule_id):
        _bad, good, _count = FIXTURE_PAIRS[rule_id]
        violations = lint_fixture(good)
        assert violations == [], (
            f"{good} should be clean, got: "
            f"{[(v.rule, v.line, v.message) for v in violations]}")

    def test_clean_file_reports_nothing(self):
        assert lint_fixture("clean.py") == []

    def test_rule_metadata_is_complete(self):
        for rule in RULES:
            assert rule.id.startswith("RPR") and len(rule.id) == 6
            assert rule.name and rule.summary and rule.motivation


class TestSuppressions:
    def test_reasoned_suppression_is_honored(self):
        assert lint_fixture("suppressed.py") == []

    def test_suppression_without_reason_is_rejected(self):
        violations = lint_fixture("suppression_missing_reason.py")
        rules = sorted(v.rule for v in violations)
        # The unexplained waiver is itself a finding AND does not silence
        # the original violation.
        assert rules == [ENGINE_RULE_ID, "RPR001"]
        engine_finding = next(v for v in violations if v.rule == ENGINE_RULE_ID)
        assert "reason" in engine_finding.message

    def test_suppression_of_unknown_rule_is_reported(self):
        violations = lint_fixture("suppression_unknown_rule.py")
        assert [v.rule for v in violations] == [ENGINE_RULE_ID]
        assert "RPR999" in violations[0].message

    def test_syntax_error_is_reported_not_raised(self):
        violations = check_source("broken.py", "def broken(:\n")
        assert [v.rule for v in violations] == [ENGINE_RULE_ID]
        assert "syntax error" in violations[0].message


class TestEngine:
    def test_fixtures_are_excluded_from_directory_walk(self):
        walked = iter_python_files([str(Path(__file__).parent)])
        assert all("fixtures" not in path.parts for path in walked)
        assert "fixtures" in DEFAULT_EXCLUDED_DIRS

    def test_explicit_fixture_path_is_always_linted(self):
        walked = iter_python_files([str(FIXTURES / "rpr001_bad.py")])
        assert [path.name for path in walked] == ["rpr001_bad.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files([str(FIXTURES / "does_not_exist.py")])

    def test_merged_src_tree_is_clean(self):
        # The acceptance gate CI enforces, kept close to the rules so a
        # rule change that trips src/ fails here first.
        result = run_paths([str(REPO_ROOT / "src")])
        assert result.violations == []
        assert result.exit_code == 0


class TestReporters:
    def _result(self):
        return run_paths([str(FIXTURES / "rpr001_bad.py"),
                          str(FIXTURES / "clean.py")])

    def test_json_payload_schema_is_stable(self):
        payload = to_json_payload(self._result())
        # Machine interface: keys are asserted exactly.  Add keys when
        # extending; renaming/removal requires a schema_version bump.
        assert sorted(payload) == ["counts_by_rule", "dtype_surface",
                                   "exit_code", "files_checked", "flow",
                                   "parse_failures", "schema_version",
                                   "suppression_counts",
                                   "suppression_counts_by_rule",
                                   "tool", "violations"]
        assert payload["schema_version"] == SCHEMA_VERSION == 1
        assert payload["tool"] == "repro-lint"
        assert payload["files_checked"] == 2
        assert payload["exit_code"] == 1
        assert payload["counts_by_rule"] == {"RPR001": 3}
        for violation in payload["violations"]:
            assert sorted(violation) == ["col", "line", "message", "path",
                                         "rule"]
            assert isinstance(violation["line"], int)
        assert json.loads(json.dumps(payload)) == payload

    def test_text_report_lists_location_and_summary(self):
        text = render_text(self._result())
        assert "rpr001_bad.py:" in text
        assert "RPR001" in text
        assert "3 violation(s) in 2 file(s)" in text

    def test_clean_text_report(self):
        text = render_text(run_paths([str(FIXTURES / "clean.py")]))
        assert "clean" in text


class TestCli:
    def test_exit_one_on_violations(self, capsys):
        code = main([str(FIXTURES / "rpr001_bad.py")])
        assert code == 1
        assert "RPR001" in capsys.readouterr().out

    def test_exit_zero_on_clean(self, capsys):
        code = main([str(FIXTURES / "clean.py")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, capsys):
        code = main([str(FIXTURES / "nope.py")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_json_format(self, capsys):
        code = main(["--format=json", str(FIXTURES / "rpr001_bad.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in [*RULE_IDS, "RPR009", "RPR010", "RPR011", "RPR012"]:
            assert rule_id in out

    def test_module_entry_point(self):
        # ``python -m tools.repro_lint`` is the documented CI invocation.
        process = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint",
             str(FIXTURES / "clean.py")],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=60)
        assert process.returncode == 0, process.stderr
        assert "clean" in process.stdout
